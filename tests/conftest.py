"""Shared fixtures: hand-built universes and a tiny synthetic project."""

from __future__ import annotations

import pytest

from repro import Context, CompletionEngine, TypeSystem
from repro.corpus import SynthesisSpec, synthesize_project
from repro.corpus.frameworks import (
    build_geometry,
    build_paintdotnet,
    build_system_core,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current engine output "
             "instead of asserting against it",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True)
def _fresh_deprecation_memo():
    """Each test sees deprecation warnings afresh.

    Shims warn once per call site per process; without the reset, the
    first test hitting a shim would consume the warning for every later
    test asserting on it.
    """
    from repro.deprecation import reset_deprecation_memo

    reset_deprecation_memo()
    yield


@pytest.fixture(autouse=True)
def _stream_sanitizer():
    """Run every test with the stream-invariant sanitizer enabled.

    Any combinator emitting a score below a previous one raises
    ``StreamInvariantViolation`` instead of silently mis-ordering results,
    so ordering bugs fail loudly anywhere in the suite.
    """
    from repro.engine.streams import sanitize_streams

    with sanitize_streams():
        yield


@pytest.fixture(scope="session")
def paint():
    """The Paint.NET universe of Sec. 2 / Figure 2."""
    ts = TypeSystem()
    return build_paintdotnet(ts)


@pytest.fixture(scope="session")
def paint_engine(paint):
    return CompletionEngine(paint.ts)


@pytest.fixture
def paint_context(paint):
    return Context(
        paint.ts, locals={"img": paint.document, "size": paint.size}
    )


@pytest.fixture(scope="session")
def geometry():
    """The DynamicGeometry universe of Figures 3 and 4."""
    ts = TypeSystem()
    return build_geometry(ts)


@pytest.fixture(scope="session")
def geometry_engine(geometry):
    return CompletionEngine(geometry.ts)


@pytest.fixture
def geometry_context(geometry):
    return Context(
        geometry.ts,
        locals={"point": geometry.point, "shapeStyle": geometry.shape_style},
        this_type=geometry.ellipse_arc,
    )


@pytest.fixture(scope="session")
def core_ts():
    """A plain mini-BCL universe."""
    ts = TypeSystem()
    build_system_core(ts)
    return ts


TINY_SPEC = SynthesisSpec(
    name="Tiny",
    seed=99,
    namespace_root="Tiny",
    nouns=["Widget", "Gadget", "Gizmo"],
    num_namespaces=3,
    num_enums=1,
    num_interfaces=1,
    num_classes=8,
    num_helper_classes=2,
    num_client_classes=3,
)


@pytest.fixture(scope="session")
def tiny_project():
    """A small deterministic synthetic project for end-to-end tests."""
    return synthesize_project(TINY_SPEC)
