"""Whole-universe dependency analysis: graph, footprints, impact, RA1xx.

Covers the two static edge families of :class:`DependencyGraph`
(supertype, member-signature), the three-way footprint split of
:func:`footprint_seeds` (direct reads / chain seeds / accepting), the
method-aware mutation log behind the accepting drop test, the
``impact`` reverse query, and the RA101-RA104 lints.
"""

from __future__ import annotations

import pytest

from repro.analysis.deps import (
    DependencyGraph,
    QueryFootprint,
    expand_mutations,
    footprint_seeds,
    lint_dependencies,
    method_param_types,
)
from repro.codemodel import Field, LibraryBuilder, Method, Parameter
from repro.codemodel.types import TypeDef
from repro.codemodel.typesystem import TypeSystem
from repro.ide.workspace import Workspace
from repro.lang.ast import Unfilled
from repro.lang.parser import parse
from repro.lang.partial import Hole, KnownCall, UnknownCall


@pytest.fixture
def world():
    """A small universe with a member-signature chain
    (Doc -> LayerList -> Layer -> string), a subtype (SpecialDoc <: Doc),
    and an unrelated island (Unrelated)."""
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    size = lib.cls("N.Size")
    lib.field(size, "width", ts.primitive("int"))
    layer = lib.cls("N.Layer")
    lib.field(layer, "name", ts.string_type)
    layers = lib.cls("N.LayerList")
    lib.method(layers, "Add", params=[("item", layer)])
    doc = lib.cls("N.Doc")
    lib.field(doc, "layers", layers)
    lib.method(doc, "Resize", params=[("size", size)])
    special = lib.cls("N.SpecialDoc", base=doc)
    unrelated = lib.cls("N.Unrelated")
    lib.field(unrelated, "tag", ts.string_type)
    return ts, {
        "size": size, "layer": layer, "layers": layers,
        "doc": doc, "special": special, "unrelated": unrelated,
    }


def names(typedefs):
    return {t.full_name for t in typedefs}


class TestGraphEdges:
    def test_member_signature_edges(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        assert {"N.LayerList", "N.Size"} <= graph.forward("N.Doc")
        assert "N.LayerList" in graph.reverse("N.Layer")

    def test_supertype_edges(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        assert "N.Doc" in graph.forward("N.SpecialDoc")

    def test_forward_closure_follows_chains(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        closure = graph.closure("N.Doc")
        assert {"N.Doc", "N.LayerList", "N.Layer", "System.String"} <= closure
        assert "N.Unrelated" not in closure

    def test_reverse_closure_finds_dependents(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        dependents = graph.reverse_closure("N.Layer")
        assert {"N.Layer", "N.LayerList", "N.Doc", "N.SpecialDoc"} <= dependents
        assert "N.Unrelated" not in dependents

    def test_footprint_is_union_of_closures(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        assert graph.footprint(["N.Doc"]) == graph.closure("N.Doc")
        both = graph.footprint(["N.Doc", "N.Unrelated"])
        assert both == graph.closure("N.Doc") | graph.closure("N.Unrelated")

    def test_stats(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        stats = graph.stats()
        assert stats["types"] == float(len(ts.all_types()))
        assert stats["edges"] > 0
        assert stats["built_version"] == float(ts.version)


class TestMethodParamTypes:
    def test_collects_current_method_params(self, world):
        ts, t = world
        assert method_param_types(ts, ["N.Doc"]) == frozenset({"N.Size"})
        assert method_param_types(ts, ["N.LayerList"]) == frozenset({"N.Layer"})
        assert method_param_types(ts, ["N.Layer"]) == frozenset()

    def test_unknown_names_are_skipped(self, world):
        ts, t = world
        assert method_param_types(ts, ["N.NoSuch"]) == frozenset()

    def test_expand_mutations_widens_with_params(self, world):
        ts, t = world
        assert expand_mutations(ts, ["N.Doc"]) == frozenset({"N.Doc", "N.Size"})


class TestDependentsOf:
    def test_reverse_closure_half(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        dependents = graph.dependents_of(["N.Layer"])
        assert {"N.LayerList", "N.Doc", "N.SpecialDoc"} <= dependents

    def test_accepting_half_subtypes_of_param_types(self, world):
        ts, t = world
        # a method taking Object makes every type a potential dependent:
        # any unknown-call argument converts to Object
        lib = LibraryBuilder(ts)
        lib.method(t["unrelated"], "Take", params=[("o", ts.object_type)])
        graph = DependencyGraph(ts)
        dependents = graph.dependents_of(["N.Unrelated"])
        # every class converts to Object (primitives do not)
        assert {"N.Doc", "N.Layer", "N.Size", "N.SpecialDoc"} <= dependents

    def test_island_without_methods_stays_local(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        dependents = graph.dependents_of(["N.Unrelated"])
        assert "N.Doc" not in dependents


class TestFootprintSeeds:
    @pytest.fixture
    def ctx(self, world):
        ts, t = world
        workspace = Workspace(ts)
        return t, workspace.context(locals={"d": t["doc"]})

    def test_var_is_a_direct_read_not_a_chain(self, ctx):
        t, context = ctx
        reads, chains, accepting = footprint_seeds(parse("?({d})", context))
        assert "N.Doc" in reads
        assert chains == frozenset()
        assert accepting == frozenset({"N.Doc"})

    def test_suffix_hole_seeds_a_chain(self, ctx):
        t, context = ctx
        reads, chains, accepting = footprint_seeds(parse("d.?*m", context))
        assert chains == frozenset({"N.Doc"})
        assert accepting == frozenset()

    def test_field_access_receiver_chains_from_member_type(self, ctx):
        t, context = ctx
        reads, chains, accepting = footprint_seeds(
            parse("d.layers.?m", context))
        assert chains == frozenset({"N.LayerList"})
        assert "N.Doc" in reads

    def test_bare_hole_is_universe_wide(self, ctx):
        t, context = ctx
        assert footprint_seeds(parse("?", context)) is None
        assert footprint_seeds(Hole()) is None

    def test_all_wildcard_unknown_call_is_universe_wide(self):
        assert footprint_seeds(UnknownCall((Unfilled(),))) is None

    def test_known_call_has_no_accepting_sensitivity(self, world):
        ts, t = world
        resize = t["doc"].methods[0]
        pe = KnownCall((resize,), (Unfilled(),))
        reads, chains, accepting = footprint_seeds(pe)
        assert {"N.Doc", "N.Size"} <= reads
        assert accepting == frozenset()


class TestQueryFootprint:
    def test_reads_intersection_drops(self):
        fp = QueryFootprint(reads=frozenset({"A", "B"}))
        assert fp.affected_by(frozenset({"B"}), frozenset())
        assert not fp.affected_by(frozenset({"C"}), frozenset())

    def test_accepting_matches_method_params_not_raw_names(self):
        fp = QueryFootprint(
            reads=frozenset({"A"}), accepting=frozenset({"P"}))
        # the mutated type is never named, but its new method takes P
        assert fp.affected_by(frozenset({"Z"}), frozenset({"P"}))
        assert not fp.affected_by(frozenset({"Z"}), frozenset({"Q"}))


class TestMethodAwareMutationLog:
    def test_field_edit_is_not_a_method_mutation(self, world):
        ts, t = world
        version = ts.version
        t["doc"].add_field(Field("zz", ts.string_type))
        assert ts.mutations_since(version) == frozenset({"N.Doc"})
        assert ts.method_mutations_since(version) == frozenset()

    def test_add_method_is_a_method_mutation(self, world):
        ts, t = world
        version = ts.version
        t["doc"].add_method(Method("zzM", return_type=ts.string_type))
        assert ts.method_mutations_since(version) == frozenset({"N.Doc"})

    def test_method_reorder_is_a_method_mutation(self, world):
        ts, t = world
        lib = LibraryBuilder(ts)
        lib.method(t["doc"], "Second")
        version = ts.version
        t["doc"].set_member_order(methods=list(reversed(t["doc"].methods)))
        assert ts.method_mutations_since(version) == frozenset({"N.Doc"})

    def test_field_reorder_is_not_a_method_mutation(self, world):
        ts, t = world
        lib = LibraryBuilder(ts)
        lib.field(t["doc"], "zzOther", ts.string_type)
        version = ts.version
        t["doc"].set_member_order(fields=list(reversed(t["doc"].fields)))
        assert ts.mutations_since(version) == frozenset({"N.Doc"})
        assert ts.method_mutations_since(version) == frozenset()

    def test_structural_edit_answers_none(self, world):
        ts, t = world
        version = ts.version
        ts.register(TypeDef("Late", "N"))
        assert ts.mutations_since(version) is None
        assert ts.method_mutations_since(version) is None

    def test_truncated_log_answers_none(self, world):
        ts, t = world
        version = ts.version
        for index in range(TypeSystem.MUTATION_LOG_LIMIT + 1):
            t["doc"].add_field(Field("zz{}".format(index), ts.string_type))
        assert ts.mutations_since(version) is None
        assert ts.method_mutations_since(version) is None


class TestImpact:
    def test_affected_types_cover_reverse_closure(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        report = graph.impact(["N.Layer"])
        assert report.seeds == ("N.Layer",)
        assert report.unknown == ()
        assert {"N.Doc", "N.LayerList"} <= set(report.affected_types)
        assert report.universe_size == len(ts.all_types())
        assert 0.0 < report.fraction <= 1.0

    def test_unknown_names_are_reported_not_resolved(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        report = graph.impact(["N.NoSuch"])
        assert report.unknown == ("N.NoSuch",)
        assert report.affected_types == ()

    def test_live_cache_counts_use_the_drop_test(self, world):
        ts, t = world
        graph = DependencyGraph(ts)

        class FakeCache:
            def entry_footprints(self):
                return [
                    None,  # footprint-less: always dropped
                    QueryFootprint(reads=frozenset({"N.Doc"})),
                    QueryFootprint(reads=frozenset({"N.Unrelated"})),
                    QueryFootprint(
                        reads=frozenset(),
                        accepting=frozenset({"N.Size"})),
                ]

        report = graph.impact(["N.Doc"], cache=FakeCache())
        assert report.cache_entries == 4
        # dropped: the None entry, the N.Doc reader, and the accepting
        # entry (Doc's Resize takes N.Size); preserved: N.Unrelated
        assert report.cache_invalidated == 3

    def test_render_and_to_dict(self, world):
        ts, t = world
        graph = DependencyGraph(ts)
        report = graph.impact(["N.Layer", "N.NoSuch"])
        data = report.to_dict()
        assert data["seeds"] == ["N.Layer"]
        assert data["unknown"] == ["N.NoSuch"]
        assert "cache_entries" not in data
        lines = report.render()
        assert any("impact of N.Layer" in line for line in lines)
        assert any("unknown type: N.NoSuch" in line for line in lines)

    def test_workspace_impact_resolves_simple_names(self):
        workspace = Workspace.builtin("paint")
        full_name = workspace.resolve_type("Document").full_name
        report = workspace.impact([full_name])
        assert full_name in report.seeds
        assert report.fraction < 1.0


def lint_codes(diagnostics):
    return [d.code for d in diagnostics]


class TestLintGodTypes:
    def test_hub_type_is_flagged(self):
        ts = TypeSystem()
        lib = LibraryBuilder(ts)
        core = lib.cls("G.Core")
        lib.field(core, "marker", ts.primitive("int"))
        for index in range(10):
            client = lib.cls("G.Client{}".format(index))
            lib.field(client, "core", core)
        diagnostics = lint_dependencies(ts)
        flagged = [d for d in diagnostics if d.code == "RA101"]
        assert any(d.location == "G.Core" for d in flagged)

    def test_builtin_universes_are_mostly_quiet(self):
        workspace = Workspace.builtin("paint")
        diagnostics = lint_dependencies(workspace.ts)
        assert len([d for d in diagnostics if d.code == "RA101"]) <= 3


class TestLintCycles:
    def test_mutual_member_coupling_is_flagged(self, world):
        ts, t = world
        lib = LibraryBuilder(ts)
        a = lib.cls("N.CycleA")
        b = lib.cls("N.CycleB")
        lib.field(a, "other", b)
        lib.field(b, "other", a)
        diagnostics = lint_dependencies(ts)
        [cycle] = [d for d in diagnostics if d.code == "RA102"]
        assert "N.CycleA" in cycle.message and "N.CycleB" in cycle.message

    def test_subtype_related_edges_are_exempt(self, world):
        ts, t = world
        # Doc already references its subtype's chain; add the classic
        # parent-holds-child shape, which subtyping exempts
        lib = LibraryBuilder(ts)
        lib.field(t["doc"], "favourite", t["special"])
        diagnostics = lint_dependencies(ts)
        assert "RA102" not in lint_codes(diagnostics)


class TestLintBlastRadius:
    def test_dominant_reads_footprint_is_flagged(self, world):
        ts, t = world

        class FakeCache:
            def entry_footprints(self):
                return [
                    QueryFootprint(reads=frozenset({"N.Doc"}))
                    for _ in range(8)
                ]

        diagnostics = lint_dependencies(ts, cache=FakeCache())
        flagged = [d for d in diagnostics if d.code == "RA103"]
        assert any(d.location == "N.Doc" for d in flagged)

    def test_accepting_entries_count_against_param_owners(self, world):
        ts, t = world

        class FakeCache:
            def entry_footprints(self):
                # all entries accept through N.Size — editing N.Doc
                # (whose Resize takes N.Size) would gut the cache
                return [
                    QueryFootprint(
                        reads=frozenset(), accepting=frozenset({"N.Size"}))
                    for _ in range(8)
                ]

        diagnostics = lint_dependencies(ts, cache=FakeCache())
        flagged = [d for d in diagnostics if d.code == "RA103"]
        assert any(d.location == "N.Doc" for d in flagged)

    def test_small_caches_are_ignored(self, world):
        ts, t = world

        class FakeCache:
            def entry_footprints(self):
                return [QueryFootprint(reads=frozenset({"N.Doc"}))]

        diagnostics = lint_dependencies(ts, cache=FakeCache())
        assert "RA103" not in lint_codes(diagnostics)


class TestLintFingerprintDrift:
    def test_bypassing_invalidate_is_reported_once(self, world):
        ts, t = world
        ts.fingerprint()  # stamp the baseline digest at this version
        t["doc"].fields.append(Field("zzSneaky", ts.string_type))
        diagnostics = lint_dependencies(ts)
        [drift] = [d for d in diagnostics if d.code == "RA104"]
        assert "drifted" in drift.message
        # the check re-stamps, so the same drift is not re-reported
        assert "RA104" not in lint_codes(lint_dependencies(ts))

    def test_proper_mutations_do_not_drift(self, world):
        ts, t = world
        ts.fingerprint()
        t["doc"].add_field(Field("zzProper", ts.string_type))
        assert "RA104" not in lint_codes(lint_dependencies(ts))
