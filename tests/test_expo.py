"""Prometheus exposition: render/parse round trip and the validator.

The scrape contract of ``GET /v1/metrics`` (docs/OBSERVABILITY.md): a
``Metrics.to_dict()`` snapshot rendered by ``render_prometheus`` must
parse back sample-for-sample with ``parse_exposition``, survive
``validate_exposition`` with zero problems, and obey the format's
histogram invariants (cumulative buckets, ``+Inf`` == ``_count``).
"""

import math

import pytest

from repro.obs.expo import (
    EXPOSITION_CONTENT_TYPE,
    LATENCY_BOUNDS_MS,
    parse_exposition,
    render_metrics_table,
    render_prometheus,
    sanitize_metric_name,
    table_from_samples,
    validate_exposition,
)
from repro.obs.metrics import Metrics


@pytest.fixture()
def snapshot():
    metrics = Metrics()
    metrics.incr("server_requests", 3)
    metrics.incr("server_ok", 2)
    metrics.incr("phase:index_lookup", 5)  # needs sanitising
    for value in (0.5, 3.0, 700.0):
        metrics.observe("latency_ms", value, bounds=LATENCY_BOUNDS_MS)
    return metrics.to_dict()


class TestRender:
    def test_counter_names_and_values(self, snapshot):
        text = render_prometheus([({"workspace": "bcl"}, snapshot)])
        assert '# TYPE repro_server_requests_total counter' in text
        assert 'repro_server_requests_total{workspace="bcl"} 3' in text
        # ':' is outside the Prometheus charset
        assert 'repro_phase_index_lookup_total{workspace="bcl"} 5' in text
        assert ":" not in text.replace("version", "")

    def test_histogram_is_cumulative_with_inf_bucket(self, snapshot):
        text = render_prometheus([({}, snapshot)])
        parsed = parse_exposition(text)
        samples = parsed["samples"]
        buckets = sorted(
            ((dict(labels)["le"], value)
             for (name, labels), value in samples.items()
             if name == "repro_latency_ms_bucket"),
            key=lambda kv: math.inf if kv[0] == "+Inf" else float(kv[0]))
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == samples[("repro_latency_ms_count", ())] == 3
        assert samples[("repro_latency_ms_sum", ())] == pytest.approx(703.5)

    def test_gauges_render_with_labels(self):
        text = render_prometheus(
            [], gauges=[("slo_burn", {"objective": "errors",
                                      "window_s": "60"}, 1.5),
                        ("uptime_seconds", {}, 12.0)])
        parsed = parse_exposition(text)
        assert parsed["types"]["repro_slo_burn"] == "gauge"
        key = ("repro_slo_burn",
               (("objective", "errors"), ("window_s", "60")))
        assert parsed["samples"][key] == 1.5

    def test_multiple_sections_share_one_type_line(self, snapshot):
        text = render_prometheus(
            [({"workspace": "a"}, snapshot), ({"workspace": "b"}, snapshot)])
        assert text.count("# TYPE repro_server_requests_total counter") == 1
        parsed = parse_exposition(text)
        for workspace in ("a", "b"):
            key = ("repro_server_requests_total",
                   (("workspace", workspace),))
            assert parsed["samples"][key] == 3

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("phase:walk/expand") == \
            "phase_walk_expand"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("") == "_"

    def test_content_type_is_prometheus_004(self):
        assert "version=0.0.4" in EXPOSITION_CONTENT_TYPE


class TestRoundTrip:
    def test_render_parse_validate(self, snapshot):
        text = render_prometheus(
            [({}, snapshot), ({"workspace": "bcl"}, snapshot)],
            gauges=[("in_flight", {}, 0.0)])
        assert validate_exposition(text) == []
        parsed = parse_exposition(text)
        assert parsed["samples"]
        # every sample family has a declared type
        for name, _labels in parsed["samples"]:
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    family = name[: -len(suffix)]
            assert family in parsed["types"]

    def test_label_escaping_round_trips(self):
        metrics = Metrics()
        metrics.incr("hits")
        tricky = 'quo"te\\slash\nline'
        text = render_prometheus([({"path": tricky}, metrics.to_dict())])
        parsed = parse_exposition(text)
        key = ("repro_hits_total", (("path", tricky),))
        assert parsed["samples"][key] == 1


class TestValidator:
    def test_flags_unparsable_line(self):
        problems = validate_exposition("this is { not exposition\n")
        assert problems
        assert "line 1" in problems[0]

    def test_flags_missing_type_declaration(self):
        problems = validate_exposition("repro_lost_total 3\n")
        assert any("no # TYPE" in p for p in problems)

    def test_flags_non_cumulative_histogram(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 9\n"
            "repro_h_count 3\n"
        )
        problems = validate_exposition(text)
        assert any("not cumulative" in p for p in problems)

    def test_flags_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 9\n"
            "repro_h_count 4\n"
        )
        problems = validate_exposition(text)
        assert any("_count" in p for p in problems)

    def test_flags_duplicate_sample(self):
        text = (
            "# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
            "repro_x_total 2\n"
        )
        problems = validate_exposition(text)
        assert any("duplicate" in p for p in problems)

    def test_flags_negative_counter(self):
        text = "# TYPE repro_x_total counter\nrepro_x_total -1\n"
        problems = validate_exposition(text)
        assert any("negative" in p for p in problems)

    def test_empty_exposition_is_a_problem(self):
        assert validate_exposition("") == ["no samples in exposition"]


class TestTables:
    def test_metrics_table_aligns_and_titles(self, snapshot):
        lines = render_metrics_table(snapshot, title="bcl")
        assert lines[0] == "bcl"
        assert any("server_requests" in line for line in lines)
        assert any("latency_ms" in line and "count=3" in line
                   for line in lines)

    def test_empty_snapshot_says_so(self):
        assert render_metrics_table({}) == ["  (no metrics recorded)"]

    def test_table_from_samples_folds_buckets(self, snapshot):
        parsed = parse_exposition(render_prometheus([({}, snapshot)]))
        lines = table_from_samples(parsed)
        assert any("repro_latency_ms_count" in line for line in lines)
        assert not any("_bucket" in line for line in lines)
