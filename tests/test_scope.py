"""Tests for the query Context."""

import pytest

from repro import Context, TypeSystem
from repro.codemodel import LibraryBuilder
from repro.lang import Call, FieldAccess, Var


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    widget = lib.cls("App.Widget")
    helper = lib.cls("App.Helper")
    lib.field(helper, "Default", widget, static=True)
    lib.static_method(helper, "Make", returns=widget)
    lib.static_method(helper, "MakeWith", returns=widget,
                      params=[("name", ts.string_type)])
    lib.static_method(widget, "Create", returns=widget)
    lib.method(widget, "Clone", returns=widget)
    return ts, widget, helper


class TestLocals:
    def test_this_added_automatically(self, world):
        ts, widget, _helper = world
        ctx = Context(ts, this_type=widget)
        assert ctx.has_local("this")
        assert ctx.local_var("this").type is widget

    def test_local_vars_order(self, world):
        ts, widget, _helper = world
        ctx = Context(ts, locals={"a": widget, "b": ts.string_type})
        assert [v.name for v in ctx.local_vars()] == ["a", "b"]

    def test_with_locals_copies(self, world):
        ts, widget, _helper = world
        ctx = Context(ts, this_type=widget)
        ctx2 = ctx.with_locals({"x": widget})
        assert ctx2.has_local("x") and ctx2.has_local("this")
        assert not ctx.has_local("x")


class TestGlobals:
    def test_static_fields_are_roots(self, world):
        ts, _widget, helper = world
        ctx = Context(ts)
        roots = ctx.global_roots()
        assert any(
            isinstance(r, FieldAccess) and r.member.name == "Default"
            for r in roots
        )

    def test_zero_arg_static_methods_are_roots(self, world):
        ts, *_ = world
        ctx = Context(ts)
        names = [
            r.method.name for r in ctx.global_roots() if isinstance(r, Call)
        ]
        assert "Make" in names and "Create" in names
        assert "MakeWith" not in names  # takes a parameter

    def test_chain_roots_are_locals_then_globals(self, world):
        ts, widget, _helper = world
        ctx = Context(ts, locals={"w": widget})
        roots = ctx.chain_roots()
        assert roots[0] == Var("w", widget)
        assert len(roots) > 1


class TestMethodsNamed:
    def test_finds_all_overloads(self, world):
        ts, *_ = world
        ctx = Context(ts)
        assert len(ctx.methods_named("Make")) == 1
        assert ctx.methods_named("Nothing") == []

    def test_includes_instance_methods(self, world):
        ts, *_ = world
        ctx = Context(ts)
        assert len(ctx.methods_named("Clone")) == 1


class TestInScopeStatic:
    def test_enclosing_type_statics_in_scope(self, world):
        ts, widget, helper = world
        make = helper.declared_methods_named("Make")[0]
        ctx = Context(ts, this_type=helper)
        assert ctx.is_in_scope_static(make)

    def test_other_statics_not_in_scope(self, world):
        ts, widget, helper = world
        make = helper.declared_methods_named("Make")[0]
        ctx = Context(ts, this_type=widget)
        assert not ctx.is_in_scope_static(make)

    def test_instance_methods_never_in_scope_static(self, world):
        ts, widget, _helper = world
        clone = widget.declared_methods_named("Clone")[0]
        ctx = Context(ts, this_type=widget)
        assert not ctx.is_in_scope_static(clone)

    def test_base_class_statics_in_scope(self, world):
        ts, widget, helper = world
        lib = LibraryBuilder(ts)
        sub = lib.cls("App.SubHelper", base=helper)
        make = helper.declared_methods_named("Make")[0]
        ctx = Context(ts, this_type=sub)
        assert ctx.is_in_scope_static(make)
