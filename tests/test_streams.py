"""Tests (incl. property-based) for the score-ordered stream combinators."""

from itertools import islice

import pytest
from hypothesis import given, strategies as st

from repro.engine.streams import (
    Materialized,
    best_first,
    merge,
    merge_nested,
    ordered_product,
    reorder_with_slack,
    take,
)


def scored(values):
    """Tag values with themselves as scores."""
    return [(v, v) for v in values]


def is_sorted(scores):
    return all(a <= b for a, b in zip(scores, scores[1:]))


sorted_lists = st.lists(
    st.integers(min_value=0, max_value=50), max_size=20
).map(sorted)


class TestMerge:
    def test_empty(self):
        assert list(merge([])) == []

    def test_single(self):
        assert list(merge([scored([1, 2, 3])])) == scored([1, 2, 3])

    def test_interleaves(self):
        result = list(merge([scored([1, 4]), scored([2, 3])]))
        assert [s for s, _ in result] == [1, 2, 3, 4]

    def test_is_lazy(self):
        def boom():
            yield (0, "ok")
            raise RuntimeError("pulled too far")

        stream = merge([boom()])
        assert next(stream) == (0, "ok")

    @given(st.lists(sorted_lists, max_size=5))
    def test_merge_sorted_property(self, lists):
        result = list(merge([scored(lst) for lst in lists]))
        assert is_sorted([s for s, _ in result])
        assert sorted(v for _s, v in result) == sorted(
            v for lst in lists for v in lst
        )


class TestMaterialized:
    def test_random_access(self):
        m = Materialized(scored([1, 2, 3]))
        assert m.get(2) == (3, 3)
        assert m.get(0) == (1, 1)
        assert m.get(3) is None

    def test_iter_replays(self):
        m = Materialized(scored([1, 2]))
        assert list(m) == scored([1, 2])
        assert list(m) == scored([1, 2])

    def test_pulls_lazily(self):
        pulled = []

        def gen():
            for v in [1, 2, 3]:
                pulled.append(v)
                yield (v, v)

        m = Materialized(gen())
        m.get(0)
        assert pulled == [1]


class TestOrderedProduct:
    def test_zero_streams(self):
        assert list(ordered_product([])) == [(0, ())]

    def test_empty_stream_kills_product(self):
        m1 = Materialized(scored([1]))
        m2 = Materialized(scored([]))
        assert list(ordered_product([m1, m2])) == []

    def test_pairs_in_score_order(self):
        m1 = Materialized(scored([0, 5]))
        m2 = Materialized(scored([0, 1]))
        result = list(ordered_product([m1, m2]))
        scores = [s for s, _ in result]
        assert scores == [0, 1, 5, 6]

    @given(sorted_lists, sorted_lists)
    def test_product_property(self, a, b):
        result = list(
            ordered_product([Materialized(scored(a)), Materialized(scored(b))])
        )
        assert is_sorted([s for s, _ in result])
        assert len(result) == len(a) * len(b)
        assert sorted(s for s, _ in result) == sorted(x + y for x in a for y in b)


class TestMergeNested:
    def test_expansion_order(self):
        outer = scored([0, 2])

        def expand(base, value):
            return [(base + 1, (value, "a")), (base + 3, (value, "b"))]

        result = list(merge_nested(iter(outer), expand))
        assert [s for s, _ in result] == [1, 3, 3, 5]

    def test_cheaper_expansion_asserts(self):
        def expand(base, value):
            return [(base - 1, value)]

        with pytest.raises(AssertionError):
            list(merge_nested(iter(scored([5])), expand))

    @given(sorted_lists, st.lists(st.integers(0, 7), min_size=1, max_size=4))
    def test_nested_property(self, outer, offsets):
        def expand(base, value):
            return sorted((base + off, (value, off)) for off in offsets)

        result = list(merge_nested(iter(scored(outer)), expand))
        assert is_sorted([s for s, _ in result])
        assert len(result) == len(outer) * len(offsets)


class TestReorderWithSlack:
    def test_reorders_within_slack(self):
        items = [(0, 3, "a"), (1, 1, "b"), (2, 2, "c")]
        result = list(reorder_with_slack(iter(items), slack=3))
        assert [s for s, _ in result] == [1, 2, 3]

    def test_violating_slack_asserts(self):
        with pytest.raises(AssertionError):
            list(reorder_with_slack(iter([(0, 10, "x")]), slack=3))

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5)), max_size=20))
    def test_reorder_property(self, pairs):
        slack = 5
        bases = sorted(b for b, _ in pairs)
        items = [(b, b + extra, i) for i, (b, (_b2, extra)) in
                 enumerate(zip(bases, pairs))]
        result = list(reorder_with_slack(iter(items), slack))
        assert is_sorted([s for s, _ in result])
        assert len(result) == len(items)


class TestBestFirst:
    def test_dijkstra_order(self):
        # root 0 expands to 4; root 1 expands to 2
        def expand(score, value):
            if value == "r0":
                return [(4, "r0x")]
            if value == "r1":
                return [(2, "r1x")]
            return []

        result = list(best_first([(0, "r0"), (1, "r1")], expand))
        assert [s for s, _ in result] == [0, 1, 2, 4]

    def test_infinite_closure_is_lazy(self):
        def expand(score, value):
            yield (score + 1, value + 1)

        first_five = take(best_first([(0, 0)], expand), 5)
        assert [s for s, _ in first_five] == [0, 1, 2, 3, 4]

    def test_cheaper_successor_asserts(self):
        def expand(score, value):
            return [(score - 1, value)]

        with pytest.raises(AssertionError):
            list(islice(best_first([(5, "x")], expand), 3))

    def test_tie_break_is_fifo(self):
        result = list(best_first([(0, "first"), (0, "second")], lambda s, v: []))
        assert [v for _s, v in result] == ["first", "second"]
