"""Observability under concurrency: no lost counts, no torn records.

``complete_many`` with ``parallelism > 1`` shards queries over a thread
pool while sharing one Metrics registry and one RunLog.  These tests
pin the thread-safety contract: counter increments are never lost,
every run-log record serialises as exactly one well-formed NDJSON
line, and each traced query keeps a clean private span tree (unique
ids, parents inside the same tree, exactly one ``query`` root).
"""

import json
import threading

import pytest

from repro.ide.session import CompletionSession
from repro.ide.workspace import Workspace
from repro.obs import Metrics, read_run_log, validate_runlog_text

PARALLELISM = 4

SOURCES = [
    "now.?m",
    "now.?f",
    "span.?m",
    "?({now, span})",
    "now.?*m >= now.?*m",
    "span := ?",
] * 3  # repeats exercise the cross-query cache under contention


def _run_batch(trace=True):
    workspace = Workspace.builtin("bcl")
    run_log = workspace.start_run_log(seed=11)
    session = CompletionSession(workspace, n=10)
    session.declare("now", "System.DateTime")
    session.declare("span", "System.TimeSpan")
    session.trace = trace
    records = session.complete_many(SOURCES, parallelism=PARALLELISM)
    return workspace, run_log, records


class TestConcurrentCompleteMany:
    @pytest.fixture(scope="class")
    def batch(self):
        return _run_batch()

    def test_no_lost_counter_increments(self, batch):
        workspace, _, records = batch
        counters = workspace.metrics()["counters"]
        assert counters["queries"] == len(SOURCES)
        assert counters["batches"] == 1
        histograms = workspace.metrics()["histograms"]
        assert histograms["steps_per_query"]["count"] == len(SOURCES)
        assert histograms["elapsed_ms_per_query"]["count"] == len(SOURCES)
        assert all(record.error is None for record in records)

    def test_run_log_lines_are_atomic_ndjson(self, batch):
        _, run_log, _ = batch
        text = run_log.to_ndjson()
        lines = text.strip().split("\n")
        for line in lines:
            json.loads(line)  # every line is exactly one JSON object
        assert validate_runlog_text(text) == []
        parsed = read_run_log(text)
        queries = [r for r in parsed if r["kind"] == "query"]
        assert len(queries) == len(SOURCES)

    def test_span_trees_do_not_interleave(self, batch):
        _, run_log, _ = batch
        parsed = read_run_log(run_log.to_ndjson())
        for record in parsed:
            if record["kind"] != "query":
                continue
            spans = record.get("spans")
            assert spans, "traced batch must embed span trees"
            ids = [span["span"] for span in spans]
            assert len(ids) == len(set(ids)), "span ids collide"
            id_set = set(ids)
            roots = [span for span in spans if span["parent"] is None]
            assert [root["name"] for root in roots] == ["query"]
            for span in spans:
                if span["parent"] is not None:
                    assert span["parent"] in id_set, \
                        "parent from another query's tree leaked in"

    def test_parallel_results_match_serial(self):
        _, _, parallel_records = _run_batch(trace=False)
        workspace = Workspace.builtin("bcl")
        session = CompletionSession(workspace, n=10)
        session.declare("now", "System.DateTime")
        session.declare("span", "System.TimeSpan")
        serial_records = session.complete_many(SOURCES)
        for parallel, serial in zip(parallel_records, serial_records):
            assert [s.text for s in parallel.suggestions] == \
                [s.text for s in serial.suggestions]


class TestMetricsThreadSafety:
    def test_hammered_counters_and_histograms_lose_nothing(self):
        metrics = Metrics()
        threads, per_thread = 8, 500

        def hammer():
            for i in range(per_thread):
                metrics.incr("queries")
                metrics.observe("steps_per_query", float(i))

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert metrics.counter("queries") == threads * per_thread
        histogram = metrics.histogram("steps_per_query")
        assert histogram is not None
        assert histogram.to_dict()["count"] == threads * per_thread
