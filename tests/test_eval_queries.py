"""Tests for evaluation query extraction."""

import pytest

from repro import Context, CompletionEngine, TypeSystem
from repro.codemodel import LibraryBuilder
from repro.engine.completer import EngineConfig
from repro.eval import queries
from repro.lang import (
    Assign,
    Call,
    Compare,
    FieldAccess,
    Hole,
    KnownCall,
    Literal,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
    Var,
)


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    point = lib.struct("G.Point")
    x = lib.prop(point, "X", ts.primitive("double"))
    y = lib.prop(point, "Y", ts.primitive("double"))
    seg = lib.cls("G.Segment")
    p1 = lib.prop(seg, "P1", point)
    dist = lib.static_method("G.Math", "Distance", returns=ts.primitive("double"),
                             params=[("a", point), ("b", point)])
    ctx = Context(ts, locals={"p": point, "q": point, "seg": seg})
    return ts, ctx, point, x, y, seg, p1, dist


class TestMethodSubsets:
    def test_singles_and_pairs(self, world):
        ts, _ctx, point, _x, _y, _s, _p1, dist = world
        call = Call(dist, (Var("p", point), Var("q", point)))
        subsets = queries.method_query_subsets(call)
        assert (Var("p", point),) in subsets
        assert (Var("q", point),) in subsets
        assert (Var("p", point), Var("q", point)) in subsets

    def test_duplicate_args_not_paired(self, world):
        ts, _ctx, point, _x, _y, _s, _p1, dist = world
        call = Call(dist, (Var("p", point), Var("p", point)))
        subsets = queries.method_query_subsets(call)
        assert all(len({e.key() for e in s}) == len(s) for s in subsets)

    def test_unknown_call_query(self, world):
        ts, _ctx, point, *_ = world
        pe = queries.unknown_call_query((Var("p", point),))
        assert isinstance(pe, UnknownCall)


class TestArgumentQueries:
    def test_position_replaced_by_hole(self, world):
        ts, _ctx, point, _x, _y, _s, _p1, dist = world
        call = Call(dist, (Var("p", point), Var("q", point)))
        pe = queries.argument_query(call, 1)
        assert isinstance(pe, KnownCall)
        assert pe.args[0] == Var("p", point)
        assert isinstance(pe.args[1], Hole)

    def test_guessable_local(self, world):
        ts, ctx, point, *_ = world
        assert queries.is_guessable_argument(
            Var("p", point), ctx, EngineConfig()
        )

    def test_literal_not_guessable(self, world):
        ts, ctx, *_ = world
        assert not queries.is_guessable_argument(
            Literal(3, ts.primitive("int")), ctx, EngineConfig()
        )

    def test_chain_guessable_within_depth(self, world):
        ts, ctx, point, x, _y, seg, p1, _d = world
        chain = FieldAccess(FieldAccess(Var("seg", seg), p1), x)
        assert queries.is_guessable_argument(chain, ctx, EngineConfig())
        assert not queries.is_guessable_argument(
            chain, ctx, EngineConfig(max_chain_depth=1)
        )

    def test_chain_length(self, world):
        ts, _ctx, point, x, _y, seg, p1, _d = world
        assert queries.chain_length(Var("s", seg)) == 0
        assert queries.chain_length(FieldAccess(Var("s", seg), p1)) == 1
        two = FieldAccess(FieldAccess(Var("s", seg), p1), x)
        assert queries.chain_length(two) == 2


class TestLookupQueries:
    def test_strip_lookups(self, world):
        ts, _ctx, point, x, _y, seg, p1, _d = world
        two = FieldAccess(FieldAccess(Var("seg", seg), p1), x)
        assert queries.strip_lookups(two, 1) == FieldAccess(Var("seg", seg), p1)
        assert queries.strip_lookups(two, 2) == Var("seg", seg)
        assert queries.strip_lookups(two, 3) is None
        assert queries.strip_lookups(Var("seg", seg), 1) is None

    def test_assignment_query_target(self, world):
        ts, _ctx, point, x, y, *_ = world
        assign = Assign(
            FieldAccess(Var("p", point), x), FieldAccess(Var("q", point), x)
        )
        pe = queries.assignment_query(assign, strip_target=True, strip_source=False)
        assert isinstance(pe, PartialAssign)
        assert isinstance(pe.lhs, SuffixHole)
        assert pe.lhs.base == Var("p", point)
        # the untouched side also gets .?m (which may complete to nothing)
        assert isinstance(pe.rhs, SuffixHole)

    def test_assignment_query_ineligible(self, world):
        ts, _ctx, point, x, *_ = world
        assign = Assign(Var("p", point), Var("q", point))
        assert queries.assignment_query(assign, True, False) is None

    def test_comparison_query_double_suffix(self, world):
        ts, _ctx, point, x, y, *_ = world
        cmp = Compare(
            FieldAccess(Var("p", point), x), FieldAccess(Var("q", point), x), "<"
        )
        pe = queries.comparison_query(cmp, 1, 0)
        assert isinstance(pe, PartialCompare)
        assert isinstance(pe.lhs, SuffixHole)
        assert isinstance(pe.lhs.base, SuffixHole)
        assert pe.lhs.base.base == Var("p", point)

    def test_comparison_2x_needs_two_lookups(self, world):
        ts, _ctx, point, x, _y, seg, p1, _d = world
        cmp = Compare(
            FieldAccess(Var("p", point), x), FieldAccess(Var("q", point), x), "<"
        )
        assert queries.comparison_query(cmp, 2, 0) is None

    def test_variant_tables(self):
        assert [v[0] for v in queries.ASSIGNMENT_VARIANTS] == [
            "Target", "Source", "Both"]
        assert [v[0] for v in queries.COMPARISON_VARIANTS] == [
            "Left", "Right", "Both", "2xLeft", "2xRight"]


class TestQueryTruthDerivability:
    """The ground truth is always a valid completion of its query."""

    def test_assignment_truth_derivable(self, world):
        from repro.lang import derivable

        ts, ctx, point, x, *_ = world
        assign = Assign(
            FieldAccess(Var("p", point), x), FieldAccess(Var("q", point), x)
        )
        for name, st, ss in queries.ASSIGNMENT_VARIANTS:
            pe = queries.assignment_query(assign, st, ss)
            if pe is not None:
                assert derivable(pe, assign, ctx), name

    def test_comparison_truth_derivable(self, world):
        from repro.lang import derivable

        ts, ctx, point, x, _y, seg, p1, _d = world
        cmp = Compare(
            FieldAccess(FieldAccess(Var("seg", seg), p1), x),
            FieldAccess(Var("q", point), x),
            "<",
        )
        for name, sl, sr in queries.COMPARISON_VARIANTS:
            pe = queries.comparison_query(cmp, sl, sr)
            if pe is not None:
                assert derivable(pe, cmp, ctx), name
