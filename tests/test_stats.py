"""Tests for the corpus census."""

import pytest

from repro.eval import corpus_census, format_census, project_census


class TestProjectCensus:
    def test_counts_match_iterators(self, tiny_project):
        census = project_census(tiny_project)
        assert census.calls == sum(1 for _ in tiny_project.iter_calls())
        assert census.assignments == sum(
            1 for _ in tiny_project.iter_assignments())
        assert census.comparisons == sum(
            1 for _ in tiny_project.iter_comparisons())
        assert census.impls == len(tiny_project.impls)

    def test_arity_histogram_sums_to_calls(self, tiny_project):
        census = project_census(tiny_project)
        assert sum(census.arity_histogram.values()) == census.calls

    def test_argument_kinds_sum_to_arguments(self, tiny_project):
        census = project_census(tiny_project)
        assert sum(census.argument_kinds.values()) == census.arguments

    def test_methods_and_types_positive(self, tiny_project):
        census = project_census(tiny_project)
        assert census.types > 0
        assert census.methods > 0


class TestCorpusCensus:
    def test_totals_row(self, tiny_project):
        rows = corpus_census([tiny_project, tiny_project])
        assert rows[-1].name == "Totals"
        assert rows[-1].calls == 2 * rows[0].calls

    def test_format_contains_projects_and_histogram(self, tiny_project):
        text = format_census(corpus_census([tiny_project]))
        assert "Tiny" in text
        assert "Totals" in text
        assert "arity histogram" in text
        assert "argument kinds" in text
