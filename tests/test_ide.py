"""Tests for the interactive layer: workspace, session, REPL, CLI."""

import pytest

from repro.__main__ import main as cli_main
from repro.ide import (
    AutoCompleteStatus,
    CompletionSession,
    Workspace,
    holes_for_unfilled,
    run_repl,
)
from repro.lang import Assign, Call, Compare, FieldAccess, Hole, Unfilled, Var


class TestWorkspace:
    def test_builtin_universes(self):
        for key in ("paint", "geometry", "bcl"):
            workspace = Workspace.builtin(key)
            assert workspace.ts.all_types()

    def test_unknown_universe(self):
        with pytest.raises(ValueError):
            Workspace.builtin("nope")

    def test_resolve_type_full_name(self):
        workspace = Workspace.builtin("paint")
        assert workspace.resolve_type("PaintDotNet.Document").name == "Document"

    def test_resolve_type_simple_name(self):
        workspace = Workspace.builtin("paint")
        assert workspace.resolve_type("Document").name == "Document"

    def test_resolve_primitive(self):
        workspace = Workspace.builtin("bcl")
        assert workspace.resolve_type("int").name == "int"

    def test_resolve_unknown_raises(self):
        workspace = Workspace.builtin("bcl")
        with pytest.raises(ValueError):
            workspace.resolve_type("Flux.Capacitor")

    def test_corpus_workspace_has_oracle(self, tiny_project):
        workspace = Workspace.corpus_project(tiny_project)
        impl = tiny_project.impls[0]
        assert workspace.oracle_for(impl) is not None
        assert workspace.impls()


class TestSession:
    @pytest.fixture
    def session(self):
        workspace = Workspace.builtin("paint")
        session = CompletionSession(workspace)
        session.declare("img", "Document")
        session.declare("size", "System.Drawing.Size")
        return session

    def test_query_returns_ranked_suggestions(self, session):
        record = session.query("?({img, size})")
        assert record.error is None
        assert record.suggestions[0].rank == 1
        assert "ResizeDocument" in record.suggestions[0].text

    def test_parse_error_is_captured(self, session):
        record = session.query("img @@@")
        assert record.error is not None
        assert record.suggestions == []

    def test_history_accumulates(self, session):
        session.query("?({img})")
        session.query("img.?m")
        assert len(session.history) == 2
        assert session.last().source == "img.?m"

    def test_accept_turns_zeros_into_holes(self, session):
        session.query("?({img, size})")
        refined = session.accept(1)
        assert refined is not None
        assert "0" not in refined
        assert "?" in refined
        # the refined source must itself be a valid query
        record = session.query(refined)
        assert record.error is None
        assert record.suggestions

    def test_accept_out_of_range(self, session):
        session.query("?({img})")
        assert session.accept(999) is None

    def test_accept_with_empty_history(self, session):
        assert session.accept(1) is None

    def test_accept_nonpositive_rank(self, session):
        session.query("?({img})")
        assert session.accept(0) is None
        assert session.accept(-3) is None

    def test_accept_after_errored_query(self, session):
        session.query("?({img})")
        session.query("img @@@")  # the *last* query has no suggestions
        assert session.accept(1) is None

    def test_expected_type_filter(self, session):
        session.set_expected("Document")
        record = session.query("?({img, size})")
        workspace = session.workspace
        doc = workspace.resolve_type("Document")
        for suggestion in record.suggestions:
            assert workspace.ts.implicitly_converts(suggestion.expr.type, doc)

    def test_keyword_filter(self, session):
        session.keyword = "resize"
        record = session.query("?({img, size})")
        assert record.suggestions
        assert all("Resize" in s.text for s in record.suggestions)


class TestAutoComplete:
    @pytest.fixture
    def session(self):
        workspace = Workspace.builtin("paint")
        session = CompletionSession(workspace)
        session.declare("img", "Document")
        session.declare("size", "System.Drawing.Size")
        return session

    def test_converges_to_concrete_expression(self, session):
        final = session.auto_complete("?({img, size})")
        assert final is not None
        assert "0" not in final and "?" not in final
        # the final text is itself parseable and complete
        record = session.query(final)
        assert record.error is None

    def test_already_concrete_query(self, session):
        final = session.auto_complete("img.Flatten()")
        assert final == "img.Flatten()"

    def test_unparseable_returns_none(self, session):
        assert session.auto_complete("@@@") is None

    def test_iteration_budget(self, session):
        assert session.auto_complete("?({img, size})", max_iterations=0) is None

    def test_status_converged(self, session):
        assert session.auto_complete("?({img, size})") is not None
        assert session.auto_status is AutoCompleteStatus.CONVERGED

    def test_status_parse_error(self, session):
        assert session.auto_complete("@@@") is None
        assert session.auto_status is AutoCompleteStatus.PARSE_ERROR

    def test_status_no_suggestions(self, session):
        session.keyword = "zzz_nothing_matches"
        assert session.auto_complete("?({img, size})") is None
        assert session.auto_status is AutoCompleteStatus.NO_SUGGESTIONS

    def test_status_no_convergence(self, session):
        result = session.auto_complete("?({img, size})", max_iterations=0)
        assert result is None
        assert session.auto_status is AutoCompleteStatus.NO_CONVERGENCE


class TestHolesForUnfilled:
    def test_rewrites_nested_zeros(self, paint):
        resize = paint.resize_document
        call = Call(
            resize,
            (Var("img", paint.document), Var("size", paint.size),
             Unfilled(), Unfilled()),
        )
        refined = holes_for_unfilled(call)
        assert isinstance(refined.args[2], Hole)
        assert isinstance(refined.args[3], Hole)
        assert refined.args[0] == call.args[0]

    def test_rewrites_inside_assignment(self, paint):
        resize = paint.resize_document
        inner = Call(resize, (Unfilled(),) * resize.arity)
        assign = Assign(Var("img", paint.document), inner)
        refined = holes_for_unfilled(assign)
        assert isinstance(refined, Assign)
        assert refined.lhs == assign.lhs
        assert all(isinstance(arg, Hole) for arg in refined.rhs.args)

    def test_rewrites_both_sides_of_comparison(self, paint):
        width = next(
            member
            for member in paint.ts.instance_lookups(paint.document)
            if member.name == "Width"
        )
        lhs = FieldAccess(Unfilled(), width)
        compare = Compare(lhs, Unfilled(), "==")
        refined = holes_for_unfilled(compare)
        assert isinstance(refined, Compare)
        assert isinstance(refined.lhs.base, Hole)
        assert refined.lhs.member is width
        assert isinstance(refined.rhs, Hole)
        assert refined.op == "=="

    def test_leaves_concrete_nodes_alone(self, paint):
        expr = Var("img", paint.document)
        assert holes_for_unfilled(expr) is expr


class TestRepl:
    def drive(self, lines, universe="paint"):
        output = []
        workspace = Workspace.builtin(universe)
        session = run_repl(workspace, lines, output.append)
        return session, "\n".join(output)

    def test_full_session(self):
        session, out = self.drive([
            ":let img Document",
            ":let size Size",
            "?({img, size})",
            ":quit",
        ])
        assert "ResizeDocument" in out
        assert "bye" in out

    def test_help_and_locals(self):
        _session, out = self.drive([
            ":help",
            ":let img Document",
            ":locals",
        ])
        assert ":let <name> <Type>" in out
        assert "img: PaintDotNet.Document" in out

    def test_bad_command_is_reported(self):
        _session, out = self.drive([":frobnicate"])
        assert "unrecognised" in out

    def test_bad_type_is_reported(self):
        _session, out = self.drive([":let x Bogus.Type"])
        assert "error:" in out

    def test_accept_flow(self):
        _session, out = self.drive([
            ":let img Document",
            ":let size Size",
            "?({img, size})",
            ":accept 1",
        ])
        assert "next query:" in out

    def test_explain(self):
        _session, out = self.drive([
            ":let img Document",
            ":let size Size",
            "?({img, size})",
            ":explain 1",
        ])
        assert "total score" in out
        assert "type_distance" in out or "depth" in out

    def test_explain_without_query(self):
        _session, out = self.drive([":explain 1"])
        assert "nothing to explain" in out

    def test_explain_bad_rank(self):
        _session, out = self.drive([
            ":let img Document",
            "?({img})",
            ":explain 999",
        ])
        assert "no suggestion at rank" in out

    def test_n_and_expect(self):
        session, out = self.drive([
            ":let img Document",
            ":n 3",
            ":expect void",
            "?({img})",
        ])
        assert session.n == 3
        assert "expect: void" in out

    def test_cache_stats_after_repeat_query(self):
        _session, out = self.drive([
            ":let img Document",
            "?({img})",
            "?({img})",
            ":cache",
        ])
        assert "cross-query cache:" in out
        assert "hit rate" in out

    def test_cache_clear_and_toggle(self):
        session, out = self.drive([
            ":let img Document",
            "?({img})",
            ":cache clear",
            ":cache off",
            ":cache",
            ":cache on",
        ])
        assert "cache cleared" in out
        assert "cache off" in out
        assert "cache on" in out
        assert session.workspace.engine.config.enable_cache

    def test_cache_bad_action(self):
        _session, out = self.drive([":cache purge"])
        assert "usage: :cache" in out

    def test_bench_reports_cold_and_warm(self):
        _session, out = self.drive([
            ":let img Document",
            ":bench ?({img})",
        ])
        assert "cold" in out
        assert "warm best" in out
        assert "hit rate" in out

    def test_bench_parse_error(self):
        _session, out = self.drive([":bench (("])
        assert "parse error" in out


class TestReplLoadEnter:
    SOURCE = """
    namespace Shop {
        class Item {
            string Sku;
            int Price;
        }
        class Cart {
            Item Newest;
            static int Rate(Item item);
            void Scan(Item item) {
                int total = Shop.Cart.Rate(item);
                this.Newest = item;
            }
        }
    }
    """

    def drive(self, lines):
        output = []
        workspace = Workspace.builtin("bcl")
        session = run_repl(workspace, lines, output.append)
        return session, "\n".join(output)

    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "shop.cs"
        path.write_text(self.SOURCE)
        return str(path)

    def test_load_reports_shape(self, source_file):
        _session, out = self.drive([":load " + source_file])
        assert "method bodies" in out
        assert "loaded" in out

    def test_impls_lists_bodies(self, source_file):
        _session, out = self.drive([":load " + source_file, ":impls"])
        assert "Shop.Cart.Scan" in out

    def test_enter_sets_scope_and_queries_work(self, source_file):
        session, out = self.drive([
            ":load " + source_file,
            ":enter Scan",
            "?({item})",
        ])
        assert "entered Shop.Cart.Scan" in out
        assert "Rate" in out
        assert session.this_type.full_name == "Shop.Cart"

    def test_enter_unknown_method(self, source_file):
        _session, out = self.drive([":load " + source_file, ":enter Nope"])
        assert "no method body" in out

    def test_load_missing_file_reports_error(self):
        _session, out = self.drive([":load /does/not/exist.cs"])
        assert "error:" in out

    def test_impls_empty_universe(self):
        _session, out = self.drive([":impls"])
        assert "no method bodies" in out


class TestCli:
    def test_complete_subcommand(self):
        output = []
        code = cli_main(
            [
                "complete",
                "--universe", "paint",
                "--let", "img=Document",
                "--let", "size=System.Drawing.Size",
                "-n", "5",
                "?({img, size})",
            ],
            write=output.append,
        )
        assert code == 0
        assert any("ResizeDocument" in line for line in output)

    def test_complete_parse_error(self):
        output = []
        code = cli_main(
            ["complete", "--universe", "paint", "@@@"], write=output.append
        )
        assert code == 1

    def test_complete_bad_let(self):
        output = []
        code = cli_main(
            ["complete", "--let", "oops", "x"], write=output.append
        )
        assert code == 2

    def test_census_subcommand(self):
        output = []
        code = cli_main(["census", "--scale", "0.1"], write=output.append)
        assert code == 0
        text = "\n".join(output)
        assert "WiX" in text and "Totals" in text

    def test_complete_with_expect_and_keyword(self):
        output = []
        code = cli_main(
            [
                "complete", "--universe", "paint",
                "--let", "img=Document",
                "--expect", "Document",
                "--keyword", "flip",
                "?({img})",
            ],
            write=output.append,
        )
        assert code == 0
        assert any("FlipDocument" in line for line in output)
