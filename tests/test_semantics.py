"""Tests for the Figure 6 semantics: well-typedness and derivability."""

import pytest

from repro import Context, TypeSystem, parse
from repro.codemodel import LibraryBuilder
from repro.lang import (
    Assign,
    Call,
    Compare,
    FieldAccess,
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    TypeLiteral,
    Unfilled,
    UnknownCall,
    Var,
    derivable,
    well_typed,
)
from repro.lang.semantics import chain_prefixes, is_chain_root, is_hole_completion


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    point = lib.struct("Geo.Point")
    x = lib.prop(point, "X", ts.primitive("double"))
    origin = lib.field(point, "Origin", point, static=True)
    length = lib.method(point, "Length", returns=ts.primitive("double"))
    seg = lib.cls("Geo.Segment")
    p1 = lib.prop(seg, "P1", point)
    math = lib.cls("Geo.Math")
    dist = lib.static_method(math, "Distance", returns=ts.primitive("double"),
                             params=[("a", point), ("b", point)])
    ctx = Context(ts, locals={"p": point, "seg": seg})
    return ts, ctx, point, x, origin, length, seg, p1, dist


class TestWellTyped:
    def test_var_and_literals(self, world):
        ts, ctx, point, *_ = world
        assert well_typed(Var("p", point), ts)
        assert well_typed(Unfilled(), ts)

    def test_field_access(self, world):
        ts, _ctx, point, x, *_ = world
        assert well_typed(FieldAccess(Var("p", point), x), ts)

    def test_field_access_wrong_base(self, world):
        ts, _ctx, point, x, _o, _l, seg, *_ = world
        assert not well_typed(FieldAccess(Var("s", seg), x), ts)

    def test_call_checks_argument_types(self, world):
        ts, _ctx, point, _x, _o, _l, seg, _p1, dist = world
        good = Call(dist, (Var("p", point), Var("q", point)))
        bad = Call(dist, (Var("p", point), Var("s", seg)))
        assert well_typed(good, ts)
        assert not well_typed(bad, ts)

    def test_unfilled_arg_is_wildcard(self, world):
        ts, _ctx, point, _x, _o, _l, _seg, _p1, dist = world
        assert well_typed(Call(dist, (Var("p", point), Unfilled())), ts)

    def test_assign_needs_conversion(self, world):
        ts, _ctx, point, x, *_ = world
        lhs = FieldAccess(Var("p", point), x)  # double
        int_lit = parse("3", Context(ts))
        assert well_typed(Assign(lhs, int_lit), ts)  # int -> double widens
        assert not well_typed(Assign(int_lit, Var("p", point)), ts)

    def test_compare_needs_comparability(self, world):
        ts, _ctx, point, x, *_ = world
        xs = FieldAccess(Var("p", point), x)
        assert well_typed(Compare(xs, xs, "<"), ts)
        assert not well_typed(Compare(Var("p", point), xs, "<"), ts)


class TestChains:
    def test_chain_root_local(self, world):
        _ts, ctx, point, *_ = world
        assert is_chain_root(Var("p", point), ctx)
        assert not is_chain_root(Var("zz", point), ctx)

    def test_chain_root_static_field(self, world):
        _ts, ctx, point, _x, origin, *_ = world
        assert is_chain_root(FieldAccess(TypeLiteral(point), origin), ctx)

    def test_chain_prefixes(self, world):
        _ts, _ctx, point, x, _o, length, *_ = world
        expr = FieldAccess(Call(length, (Var("p", point),)), x) \
            if False else FieldAccess(Var("p", point), x)
        prefixes = list(chain_prefixes(expr, allow_methods=True))
        assert prefixes[0] == expr
        assert prefixes[-1] == Var("p", point)

    def test_hole_completion_through_lookups(self, world):
        _ts, ctx, point, x, _o, _l, seg, p1, _d = world
        expr = FieldAccess(FieldAccess(Var("seg", seg), p1), x)
        assert is_hole_completion(expr, ctx)

    def test_hole_completion_rejects_unknown_root(self, world):
        _ts, ctx, point, x, *_ = world
        assert not is_hole_completion(FieldAccess(Var("nope", point), x), ctx)


class TestDerivable:
    def test_complete_derives_itself_only(self, world):
        _ts, ctx, point, *_ = world
        p = Var("p", point)
        q = Var("q", point)
        assert derivable(p, p, ctx)
        assert not derivable(p, q, ctx)

    def test_hole_derives_chains(self, world):
        _ts, ctx, point, x, origin, length, seg, p1, _d = world
        hole = Hole()
        assert derivable(hole, Var("p", point), ctx)
        assert derivable(hole, FieldAccess(Var("seg", seg), p1), ctx)
        assert derivable(hole, Call(length, (Var("p", point),)), ctx)
        assert derivable(hole, FieldAccess(TypeLiteral(point), origin), ctx)

    def test_suffix_f_one_lookup(self, world):
        _ts, ctx, point, x, *_ = world
        pe = SuffixHole(Var("p", point), methods=False, star=False)
        assert derivable(pe, Var("p", point), ctx)  # suffix omitted
        assert derivable(pe, FieldAccess(Var("p", point), x), ctx)

    def test_suffix_f_rejects_method(self, world):
        _ts, ctx, point, _x, _o, length, *_ = world
        pe = SuffixHole(Var("p", point), methods=False, star=False)
        assert not derivable(pe, Call(length, (Var("p", point),)), ctx)

    def test_suffix_m_accepts_method(self, world):
        _ts, ctx, point, _x, _o, length, *_ = world
        pe = SuffixHole(Var("p", point), methods=True, star=False)
        assert derivable(pe, Call(length, (Var("p", point),)), ctx)

    def test_suffix_one_step_rejects_two(self, world):
        _ts, ctx, point, x, _o, _l, seg, p1, _d = world
        pe = SuffixHole(Var("seg", seg), methods=False, star=False)
        two = FieldAccess(FieldAccess(Var("seg", seg), p1), x)
        assert not derivable(pe, two, ctx)

    def test_star_suffix_accepts_many(self, world):
        _ts, ctx, point, x, _o, _l, seg, p1, _d = world
        pe = SuffixHole(Var("seg", seg), methods=False, star=True)
        two = FieldAccess(FieldAccess(Var("seg", seg), p1), x)
        assert derivable(pe, two, ctx)
        assert derivable(pe, Var("seg", seg), ctx)

    def test_unknown_call_any_order(self, world):
        _ts, ctx, point, _x, _o, _l, _seg, _p1, dist = world
        p, q = Var("p", point), Var("p", point)
        pe = UnknownCall((p,))
        call = Call(dist, (Unfilled(), Var("p", point)))
        assert derivable(pe, call, ctx)

    def test_unknown_call_requires_rest_unfilled(self, world):
        _ts, ctx, point, _x, _o, _l, _seg, _p1, dist = world
        pe = UnknownCall((Var("p", point),))
        call = Call(dist, (Var("p", point), Var("p", point)))
        assert not derivable(pe, call, ctx)

    def test_unknown_call_with_partial_arg(self, world):
        _ts, ctx, point, x, _o, _l, seg, p1, dist = world
        pe = UnknownCall((SuffixHole(Var("seg", seg), True, True), Var("p", point)))
        call = Call(dist, (FieldAccess(Var("seg", seg), p1), Var("p", point)))
        assert derivable(pe, call, ctx)

    def test_known_call(self, world):
        _ts, ctx, point, _x, _o, _l, _seg, _p1, dist = world
        pe = KnownCall((dist,), (Var("p", point), Hole()))
        good = Call(dist, (Var("p", point), Var("p", point)))
        assert derivable(pe, good, ctx)

    def test_known_call_rejects_other_method(self, world):
        _ts, ctx, point, _x, _o, length, _seg, _p1, dist = world
        pe = KnownCall((dist,), (Var("p", point), Hole()))
        other = Call(length, (Var("p", point),))
        assert not derivable(pe, other, ctx)

    def test_partial_assign(self, world):
        _ts, ctx, point, x, *_ = world
        pe = PartialAssign(
            SuffixHole(Var("p", point), True, False), Hole()
        )
        truth = Assign(FieldAccess(Var("p", point), x),
                       FieldAccess(Var("p", point), x))
        assert derivable(pe, truth, ctx)

    def test_partial_compare_op_must_match(self, world):
        _ts, ctx, point, x, *_ = world
        xs = FieldAccess(Var("p", point), x)
        pe = PartialCompare(Hole(), Hole(), op=">=")
        assert derivable(pe, Compare(xs, xs, ">="), ctx)
        assert not derivable(pe, Compare(xs, xs, "<"), ctx)

    def test_partial_is_never_a_valid_completion(self, world):
        _ts, ctx, *_ = world
        assert not derivable(Hole(), Hole(), ctx)
