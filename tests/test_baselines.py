"""Tests for the Intellisense and Prospector baselines."""

import pytest

from repro import Context, TypeSystem
from repro.baselines import ProspectorSearch, intellisense_rank, member_names
from repro.codemodel import LibraryBuilder
from repro.lang import Call, FieldAccess, Var, to_source


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    doc = lib.cls("App.Document")
    lib.method(doc, "Close")
    lib.method(doc, "Append", params=[("s", ts.string_type)])
    lib.method(doc, "Zoom")
    lib.prop(doc, "Title", ts.string_type)
    lib.static_method(doc, "Open", returns=doc, params=[("p", ts.string_type)])
    lib.static_method(doc, "Blank", returns=doc)
    return ts, doc


class TestIntellisense:
    def test_instance_members_alphabetical(self, world):
        ts, doc = world
        append = doc.declared_methods_named("Append")[0]
        call = Call(append, (Var("d", doc), Var("s", ts.string_type)))
        names = member_names(ts, append)
        assert names == sorted(names)
        assert "Open" not in names  # statics are not listed for instances
        assert "Title" in names  # fields count as members

    def test_rank_is_alphabetic_position(self, world):
        ts, doc = world
        append = doc.declared_methods_named("Append")[0]
        call = Call(append, (Var("d", doc), Var("s", ts.string_type)))
        rank = intellisense_rank(ts, call)
        names = member_names(ts, append)
        assert names[rank - 1] == "Append"

    def test_static_receiver_lists_statics_only(self, world):
        ts, doc = world
        open_m = doc.declared_methods_named("Open")[0]
        call = Call(open_m, (Var("p", ts.string_type),))
        names = member_names(ts, open_m)
        assert set(names) == {"Open", "Blank"}

    def test_inherited_members_listed(self, world):
        ts, doc = world
        lib = LibraryBuilder(ts)
        sub = lib.cls("App.SubDocument", base=doc)
        zoom = doc.declared_methods_named("Zoom")[0]
        # a call through the subtype still lists base members
        call = Call(zoom, (Var("d", sub),))
        assert "Zoom" in member_names(ts, zoom)


class TestProspector:
    @pytest.fixture
    def jungle(self):
        """The paper's motivating Prospector example: IFile -> ASTNode via
        ICompilationUnit."""
        ts = TypeSystem()
        lib = LibraryBuilder(ts)
        ifile = lib.cls("Eclipse.IFile")
        cu = lib.cls("Eclipse.ICompilationUnit")
        ast = lib.cls("Eclipse.ASTNode")
        lib.static_method("Eclipse.JavaCore", "createCompilationUnitFrom",
                          returns=cu, params=[("file", ifile)])
        lib.static_method("Eclipse.AST", "parseCompilationUnit",
                          returns=ast, params=[("cu", cu)])
        return ts, ifile, cu, ast

    def test_finds_two_step_jungloid(self, jungle):
        ts, ifile, _cu, ast = jungle
        search = ProspectorSearch(ts)
        results = search.query("file", ifile, ast, n=5)
        assert results
        text = to_source(results[0])
        assert "createCompilationUnitFrom" in text
        assert "parseCompilationUnit" in text

    def test_identity_chain_first(self, jungle):
        ts, ifile, *_ = jungle
        search = ProspectorSearch(ts)
        results = search.query("file", ifile, ifile, n=3)
        assert to_source(results[0]) == "file"

    def test_shorter_chains_rank_first(self, jungle):
        ts, ifile, cu, _ast = jungle
        search = ProspectorSearch(ts)
        results = search.query("file", ifile, cu, n=5)
        lengths = [to_source(r).count("(") for r in results]
        assert lengths == sorted(lengths)

    def test_unreachable_target_is_empty(self, jungle):
        ts, ifile, *_ = jungle
        lib = LibraryBuilder(ts)
        isolated = lib.cls("Far.Isolated")
        search = ProspectorSearch(ts)
        assert search.query("file", ifile, isolated, n=5) == []

    def test_field_steps(self):
        ts = TypeSystem()
        lib = LibraryBuilder(ts)
        a = lib.cls("N.A")
        b = lib.cls("N.B")
        lib.prop(a, "Buddy", b)
        search = ProspectorSearch(ts)
        results = search.query("a", a, b, n=3)
        assert to_source(results[0]) == "a.Buddy"
