"""Tests for the bundled evaluation runner and its CLI wiring."""

import pytest

from repro.eval import EvalConfig
from repro.eval.persistence import compare_runs
from repro.eval.runner import ResultBundle, run_all


@pytest.fixture(scope="module")
def bundle(request):
    tiny = request.getfixturevalue("tiny_project")
    cfg = EvalConfig(
        limit=25,
        max_calls_per_project=6,
        max_arguments_per_project=8,
        max_assignments_per_project=4,
        max_comparisons_per_project=3,
        with_return_type=False,
        with_intellisense=False,
    )
    return run_all([tiny], cfg)


class TestRunAll:
    def test_all_families_populated(self, bundle):
        assert bundle.methods
        assert bundle.arguments
        assert bundle.assignments
        # comparisons may be sparse but the family list exists
        assert isinstance(bundle.comparisons, list)

    def test_save_load_round_trip(self, bundle, tmp_path):
        path = tmp_path / "bundle.json"
        bundle.save(str(path))
        loaded = ResultBundle.load(str(path))
        assert len(loaded.methods) == len(bundle.methods)
        assert loaded.methods[0].best_rank == bundle.methods[0].best_rank

    def test_self_comparison_is_stable(self, bundle):
        report = compare_runs(bundle.families(), bundle.families())
        assert all(
            not deltas.get("regressed") for deltas in report.values()
        )

    def test_cli_save_and_compare(self, bundle, tmp_path, monkeypatch):
        from repro.__main__ import main as cli_main
        import repro.eval.experiments as exp

        real_init = exp.EvalConfig.__init__

        def tiny_init(self, **kwargs):
            kwargs["max_calls_per_project"] = 3
            kwargs["max_arguments_per_project"] = 3
            kwargs["max_assignments_per_project"] = 2
            kwargs["max_comparisons_per_project"] = 1
            kwargs.setdefault("limit", 15)
            real_init(self, **kwargs)

        monkeypatch.setattr(exp.EvalConfig, "__init__", tiny_init)
        baseline = tmp_path / "baseline.json"
        output = []
        assert cli_main(["eval", "--save", str(baseline)],
                        write=output.append) == 0
        assert baseline.exists()
        output.clear()
        assert cli_main(["eval", "--compare", str(baseline)],
                        write=output.append) == 0
        text = "\n".join(output)
        assert "family" in text and "stable" in text
