"""Pinned regression tests for the cache's clear-on-mutation contract.

Today the ``CompletionCache`` invalidates coarsely: any ``TypeSystem``
version bump between queries clears everything.  A future fine-grained
invalidation PR may narrow *what* is cleared, but it must preserve the
observable contract pinned here: a mutation landing between ``warm()``
and a batched ``complete_many`` never lets the batch see pre-mutation
answers.
"""

import pytest

from repro.codemodel.members import Field, Method, Parameter
from repro.engine.completer import CompletionRequest, EngineConfig
from repro.fuzz.oracles import check_mutation_outcomes
from repro.ide.workspace import Workspace
from repro.lang.parser import parse


def _requests(workspace, context, sources, n=10):
    return [
        CompletionRequest(pe=parse(source, context), context=context, n=n)
        for source in sources
    ]


def _cached_entries(workspace):
    stats = workspace.cache_stats()
    return stats["streams"] + stats["root_pools"] + stats["placements"]


@pytest.fixture
def warm_paint():
    workspace = Workspace.builtin("paint")
    assert workspace.cache_enabled
    document = workspace.ts.get("PaintDotNet.Document")
    context = workspace.context(locals={"img": document})
    return workspace, context, document


QUERIES = ["img.?f", "img.?m", "?({img})"]


class TestMutationBetweenWarmAndBatch:
    def test_field_added_after_warm_is_visible_to_the_batch(self, warm_paint):
        workspace, context, document = warm_paint
        # prime: warm indexes AND populate the cross-query cache
        workspace.complete_many(_requests(workspace, context, QUERIES))
        assert _cached_entries(workspace) > 0

        # the mutation lands between warm() and the next batch
        workspace.engine.warm()
        version = workspace.ts.version
        document.add_field(Field("zzAddedBetween", workspace.ts.string_type))
        assert workspace.ts.version > version

        outcomes = workspace.complete_many(
            _requests(workspace, context, ["img.?f"], n=50))
        texts = {c.expr.member.name if hasattr(c.expr, "member") else ""
                 for c in outcomes[0].completions}
        assert "zzAddedBetween" in texts

    def test_batch_after_mutation_equals_cold_engine(self, warm_paint):
        from repro.engine.completer import CompletionEngine

        workspace, context, document = warm_paint
        workspace.complete_many(_requests(workspace, context, QUERIES))
        workspace.engine.warm()
        document.add_method(Method(
            "zzMutM", return_type=workspace.ts.string_type,
            params=[Parameter("x", workspace.ts.string_type)]))
        document.set_member_order(fields=list(reversed(document.fields)))

        warm_outcomes = workspace.complete_many(
            _requests(workspace, context, QUERIES))
        cold_engine = CompletionEngine(
            workspace.ts, EngineConfig(enable_cache=False))
        for source, warm_outcome in zip(QUERIES, warm_outcomes):
            cold_outcome = cold_engine.complete_query(
                parse(source, context), context, n=10)
            check_mutation_outcomes(warm_outcome, cold_outcome, n=10)

    def test_mutation_clears_cache_and_counts_invalidation(self, warm_paint):
        workspace, context, document = warm_paint
        workspace.complete_many(_requests(workspace, context, QUERIES))
        assert _cached_entries(workspace) > 0
        document.add_field(Field("zzBump", workspace.ts.string_type))
        workspace.complete_many(_requests(workspace, context, ["img.?f"]))
        stats = workspace.cache_stats()
        assert stats["invalidations"] >= 1


class TestSetMemberOrder:
    def _two_field_type(self):
        from repro.codemodel.types import TypeDef
        from repro.codemodel.typesystem import TypeSystem

        ts = TypeSystem()
        typedef = ts.register(TypeDef("Bag", "Demo"))
        typedef.add_field(Field("first", ts.string_type))
        typedef.add_field(Field("second", ts.string_type))
        return ts, typedef

    def test_rejects_non_permutations(self):
        ts, typedef = self._two_field_type()
        with pytest.raises(ValueError, match="not a permutation"):
            typedef.set_member_order(fields=typedef.fields[1:])
        with pytest.raises(ValueError, match="not a permutation"):
            typedef.set_member_order(fields=[typedef.fields[0]] * 2)

    def test_reorder_bumps_version(self):
        ts, typedef = self._two_field_type()
        version = ts.version
        typedef.set_member_order(fields=list(reversed(typedef.fields)))
        assert ts.version > version
        assert [f.name for f in typedef.fields] == ["second", "first"]
