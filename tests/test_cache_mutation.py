"""Pinned regression tests for the cache's invalidation contract.

The ``CompletionCache`` invalidates in two tiers: member-level mutation
windows drop only the entries whose recorded
:class:`~repro.analysis.deps.QueryFootprint` the edit intersects
(fine-grained), while structural edits and truncated mutation logs
clear everything (coarse).  Whichever tier fires, the observable
contract pinned here holds: a mutation landing between ``warm()`` and a
batched ``complete_many`` never lets the batch see pre-mutation
answers — and a single-type member edit must *preserve* the unrelated
entries, attributed in ``CacheStats``.
"""

import random

import pytest

from repro.codemodel.members import Field, Method, Parameter
from repro.engine.completer import (
    CompletionEngine,
    CompletionRequest,
    EngineConfig,
)
from repro.fuzz.oracles import check_mutation_outcomes
from repro.ide.workspace import Workspace
from repro.lang.parser import parse


def _requests(workspace, context, sources, n=10):
    return [
        CompletionRequest(pe=parse(source, context), context=context, n=n)
        for source in sources
    ]


def _cached_entries(workspace):
    stats = workspace.cache_stats()
    return stats["streams"] + stats["root_pools"] + stats["placements"]


@pytest.fixture
def warm_paint():
    workspace = Workspace.builtin("paint")
    assert workspace.cache_enabled
    document = workspace.ts.get("PaintDotNet.Document")
    context = workspace.context(locals={"img": document})
    return workspace, context, document


QUERIES = ["img.?f", "img.?m", "?({img})"]


class TestMutationBetweenWarmAndBatch:
    def test_field_added_after_warm_is_visible_to_the_batch(self, warm_paint):
        workspace, context, document = warm_paint
        # prime: warm indexes AND populate the cross-query cache
        workspace.complete_many(_requests(workspace, context, QUERIES))
        assert _cached_entries(workspace) > 0

        # the mutation lands between warm() and the next batch
        workspace.engine.warm()
        version = workspace.ts.version
        document.add_field(Field("zzAddedBetween", workspace.ts.string_type))
        assert workspace.ts.version > version

        outcomes = workspace.complete_many(
            _requests(workspace, context, ["img.?f"], n=50))
        texts = {c.expr.member.name if hasattr(c.expr, "member") else ""
                 for c in outcomes[0].completions}
        assert "zzAddedBetween" in texts

    def test_batch_after_mutation_equals_cold_engine(self, warm_paint):
        from repro.engine.completer import CompletionEngine

        workspace, context, document = warm_paint
        workspace.complete_many(_requests(workspace, context, QUERIES))
        workspace.engine.warm()
        document.add_method(Method(
            "zzMutM", return_type=workspace.ts.string_type,
            params=[Parameter("x", workspace.ts.string_type)]))
        document.set_member_order(fields=list(reversed(document.fields)))

        warm_outcomes = workspace.complete_many(
            _requests(workspace, context, QUERIES))
        cold_engine = CompletionEngine(
            workspace.ts, EngineConfig(enable_cache=False))
        for source, warm_outcome in zip(QUERIES, warm_outcomes):
            cold_outcome = cold_engine.complete_query(
                parse(source, context), context, n=10)
            check_mutation_outcomes(warm_outcome, cold_outcome, n=10)

    def test_mutation_clears_cache_and_counts_invalidation(self, warm_paint):
        workspace, context, document = warm_paint
        workspace.complete_many(_requests(workspace, context, QUERIES))
        assert _cached_entries(workspace) > 0
        document.add_field(Field("zzBump", workspace.ts.string_type))
        workspace.complete_many(_requests(workspace, context, ["img.?f"]))
        stats = workspace.cache_stats()
        assert stats["invalidations"] >= 1


class TestFineInvalidation:
    def test_unrelated_field_edit_preserves_most_entries(self, warm_paint):
        workspace, context, document = warm_paint
        workspace.complete_many(_requests(workspace, context, QUERIES))
        assert _cached_entries(workspace) > 0

        unrelated = workspace.ts.get("PaintDotNet.HistoryStack")
        unrelated.add_field(Field("zzElsewhere", workspace.ts.string_type))

        workspace.complete_many(_requests(workspace, context, QUERIES))
        stats = workspace.cache_stats()
        assert stats["invalidations_fine"] == 1
        assert stats["invalidations_coarse"] == 0
        preserved = stats["entries_preserved"]
        dropped = stats["entries_dropped"]
        assert preserved / (preserved + dropped) >= 0.8

    def test_unrelated_edit_keeps_streams_warm(self, warm_paint):
        workspace, context, document = warm_paint
        workspace.complete_many(_requests(workspace, context, QUERIES))
        before = workspace.cache_stats()

        unrelated = workspace.ts.get("PaintDotNet.HistoryStack")
        unrelated.add_field(Field("zzWarm", workspace.ts.string_type))

        workspace.complete_many(_requests(workspace, context, QUERIES))
        stats = workspace.cache_stats()
        # the replayed batch hits the preserved entries instead of
        # recomputing them from scratch
        assert stats["hits"] > before["hits"]

    def test_structural_edit_still_clears_coarsely(self, warm_paint):
        from repro.codemodel.types import TypeDef

        workspace, context, document = warm_paint
        workspace.complete_many(_requests(workspace, context, QUERIES))
        workspace.ts.register(TypeDef("zzLate", "PaintDotNet"))
        workspace.complete_many(_requests(workspace, context, ["img.?f"]))
        stats = workspace.cache_stats()
        assert stats["invalidations_coarse"] == 1
        assert stats["invalidations_fine"] == 0

    def test_single_type_edit_preserves_unrelated_root_pools(self, warm_paint):
        workspace, context, document = warm_paint
        # a bare hole populates the global root pool, grouped by
        # declaring type
        workspace.complete_many(_requests(workspace, context, ["?"]))
        before = workspace.cache_stats()
        assert before["root_pool_groups"] > 1

        unrelated = workspace.ts.get("PaintDotNet.HistoryStack")
        unrelated.add_field(Field("zzRoots", workspace.ts.string_type))

        workspace.complete_many(_requests(workspace, context, ["?"]))
        stats = workspace.cache_stats()
        assert stats["invalidations_fine"] == 1
        # the pool itself survived (served warm), only the edited
        # type's group was regenerated
        assert stats["roots_hits"] > before["roots_hits"]
        assert stats["entries_preserved"] >= before["root_pool_groups"] - 1

    def test_fine_disabled_config_restores_coarse_clearing(self):
        workspace = Workspace.builtin(
            "paint", config=EngineConfig(fine_invalidation=False))
        document = workspace.ts.get("PaintDotNet.Document")
        context = workspace.context(locals={"img": document})
        workspace.complete_many(_requests(workspace, context, QUERIES))
        document.add_field(Field("zzCoarse", workspace.ts.string_type))
        workspace.complete_many(_requests(workspace, context, ["img.?f"]))
        stats = workspace.cache_stats()
        assert stats["invalidations_coarse"] == 1
        assert stats["invalidations_fine"] == 0


class TestScalingPreservation:
    def test_single_type_edit_preserves_80_percent_on_scale90(self):
        from repro.corpus import synthesize_project
        from repro.eval.bench import _mutation_target, _scaling_spec

        project = synthesize_project(_scaling_spec(90))
        ts = project.ts
        engine = CompletionEngine(ts)
        context = project.impls[0].context(ts)
        locals_list = list(context.locals.items())[:2]
        query = "?({{{}}})".format(", ".join(n for n, _ in locals_list))
        engine.complete_query(parse(query, context), context)

        target = _mutation_target(ts, context)
        target.add_field(Field("zzScale", ts.string_type))
        engine.complete_query(parse(query, context), context)

        stats = engine.cache_stats()
        assert stats["invalidations_fine"] == 1
        preserved = stats["entries_preserved"]
        dropped = stats["entries_dropped"]
        assert preserved / (preserved + dropped) >= 0.8


class TestWarmFineMatchesColdEngine:
    """The PR 6 mutation oracle replayed against the fine-grained cache:
    after deterministic member edits, a warm engine (footprint-preserved
    entries and all) must answer exactly like a cold one, across every
    builtin universe and three seeds."""

    SOURCES = ["a.?f", "a.?*m", "b.?m", "?({a, b})"]

    @pytest.mark.parametrize("universe", sorted(Workspace.BUILTIN))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_warm_equals_cold_after_mutations(self, universe, seed):
        workspace = Workspace.builtin(universe)
        ts = workspace.ts
        rng = random.Random(seed)
        types = [
            t for t in ts.all_types()
            if not t.is_primitive
            and (t.fields or t.properties or t.methods)
        ]
        first, second = rng.sample(types, 2)
        context = workspace.context(locals={"a": first, "b": second})
        requests = _requests(workspace, context, self.SOURCES)
        workspace.complete_many(requests)

        for index in range(3):
            target = rng.choice(types)
            kind = rng.randrange(3)
            if kind == 0:
                target.add_field(
                    Field("zzF{}_{}".format(seed, index), ts.string_type))
            elif kind == 1:
                target.add_method(Method(
                    "zzM{}_{}".format(seed, index),
                    return_type=ts.string_type,
                    params=[Parameter("x", rng.choice(types))]))
            elif target.methods:
                target.set_member_order(
                    methods=list(reversed(target.methods)))

        warm_outcomes = workspace.complete_many(
            _requests(workspace, context, self.SOURCES))
        cold_engine = CompletionEngine(ts, EngineConfig(enable_cache=False))
        for source, warm_outcome in zip(self.SOURCES, warm_outcomes):
            cold_outcome = cold_engine.complete_query(
                parse(source, context), context, n=10)
            check_mutation_outcomes(warm_outcome, cold_outcome, n=10)


class TestSetMemberOrder:
    def _two_field_type(self):
        from repro.codemodel.types import TypeDef
        from repro.codemodel.typesystem import TypeSystem

        ts = TypeSystem()
        typedef = ts.register(TypeDef("Bag", "Demo"))
        typedef.add_field(Field("first", ts.string_type))
        typedef.add_field(Field("second", ts.string_type))
        return ts, typedef

    def test_rejects_non_permutations(self):
        ts, typedef = self._two_field_type()
        with pytest.raises(ValueError, match="not a permutation"):
            typedef.set_member_order(fields=typedef.fields[1:])
        with pytest.raises(ValueError, match="not a permutation"):
            typedef.set_member_order(fields=[typedef.fields[0]] * 2)

    def test_reorder_bumps_version(self):
        ts, typedef = self._two_field_type()
        version = ts.version
        typedef.set_member_order(fields=list(reversed(typedef.fields)))
        assert ts.version > version
        assert [f.name for f in typedef.fields] == ["second", "first"]
