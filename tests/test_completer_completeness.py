"""Completeness: the engine against a brute-force enumerator.

On a small universe we can enumerate *every* legal completion of an
unknown-call query by brute force and score it with the standalone ranker.
The engine's ranked stream must contain exactly that set, in score order.
"""

from itertools import permutations

import pytest

from repro import Context, CompletionEngine, Ranker, TypeSystem
from repro.codemodel import LibraryBuilder
from repro.lang import Call, Unfilled, UnknownCall, Var, well_typed


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    cat = lib.cls("Pets.Cat")
    toy = lib.cls("Pets.Toy")
    lib.method(cat, "Play", params=[("t", toy)])
    lib.method(cat, "Nap")
    lib.static_method("Pets.Vet", "Check", returns=None,
                      params=[("c", cat), ("t", toy)])
    lib.static_method("Pets.Vet", "Weigh", returns=ts.primitive("double"),
                      params=[("c", cat)])
    lib.static_method("Pets.Store", "Wrap", returns=toy,
                      params=[("t", toy), ("ribbon", ts.string_type)])
    return ts, cat, toy


def brute_force_unknown_call(ts, context, args, ranker):
    """Every (method, injective placement) completion, scored."""
    results = {}
    for method in ts.all_methods():
        arity = method.arity
        if arity < len(args):
            continue
        for positions in permutations(range(arity), len(args)):
            full = [Unfilled()] * arity
            for position, arg in zip(positions, args):
                full[position] = arg
            call = Call(method, tuple(full))
            if not well_typed(call, ts):
                continue
            if (
                method.is_zero_arg_instance
                and isinstance(call.args[0], Unfilled)
            ):
                continue  # `0.Method()` is never emitted
            score = ranker.score(call)
            key = call.key()
            if key not in results or score < results[key][0]:
                results[key] = (score, call)
    return results


def test_engine_matches_brute_force(world):
    ts, cat, toy = world
    context = Context(ts, locals={"felix": cat, "ball": toy})
    engine = CompletionEngine(ts)
    ranker = Ranker(context)
    args = (Var("felix", cat), Var("ball", toy))
    pe = UnknownCall(args)

    expected = brute_force_unknown_call(ts, context, list(args), ranker)
    # the engine emits the best placement per (method, arg tuple); collect
    # everything it produces
    emitted = {}
    for completion in engine.all_completions(pe, context):
        emitted.setdefault(completion.expr.key(), completion.score)

    # every engine completion is a legal brute-force completion w/ equal score
    for key, score in emitted.items():
        assert key in expected
        assert score == expected[key][0]

    # every *method* the brute force finds, the engine also surfaces
    expected_methods = {c.method.full_name for _s, c in expected.values()}
    emitted_methods = set()
    for completion in engine.all_completions(pe, context):
        emitted_methods.add(completion.expr.method.full_name)
    assert emitted_methods == expected_methods

    # and the cheapest brute-force score per method matches the engine's
    best_by_method = {}
    for score, call in expected.values():
        name = call.method.full_name
        if name not in best_by_method or score < best_by_method[name]:
            best_by_method[name] = score
    engine_best = {}
    for completion in engine.all_completions(pe, context):
        name = completion.expr.method.full_name
        engine_best.setdefault(name, completion.score)
    assert engine_best == best_by_method


def test_single_arg_query_matches_brute_force(world):
    ts, cat, toy = world
    context = Context(ts, locals={"felix": cat})
    engine = CompletionEngine(ts)
    ranker = Ranker(context)
    args = (Var("felix", cat),)
    expected = brute_force_unknown_call(ts, context, list(args), ranker)
    expected_methods = {c.method.full_name for _s, c in expected.values()}

    emitted = list(engine.all_completions(UnknownCall(args), context))
    emitted_methods = {c.expr.method.full_name for c in emitted}
    assert emitted_methods == expected_methods
    scores = [c.score for c in emitted]
    assert scores == sorted(scores)


def test_keyword_filter_extension(world):
    ts, cat, toy = world
    context = Context(ts, locals={"felix": cat, "ball": toy})
    engine = CompletionEngine(ts)
    pe = UnknownCall((Var("felix", cat),))
    filtered = engine.complete(pe, context, n=20, keyword="check")
    assert filtered
    assert all("Check" in c.expr.method.name for c in filtered)
    unfiltered = engine.complete(pe, context, n=20)
    assert len(unfiltered) > len(filtered)
