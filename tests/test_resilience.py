"""Resilient query execution: budgets, cancellation, degradation, faults.

Covers the contracts in ``docs/RESILIENCE.md``:

* a tripped budget (deadline, steps, cancellation) ends every stream
  after a best-so-far prefix — never an exception, never a hang;
* a failing optional feature (abstract-type oracle, namespace term,
  same-name term, method index, reachability index, target type check)
  degrades the ranking and is recorded per query, never aborting it;
* corpus building skips broken projects/programs with diagnostics;
* the CLI surfaces truncation through distinct exit codes;
* the fault-injection harness itself (Nth-call triggering, raise/delay
  modes, nesting).
"""

import pytest

from repro import (
    BudgetExhausted,
    CancellationToken,
    CompletionEngine,
    Context,
    QueryBudget,
    QueryCancelled,
    QueryTimeout,
    TypeSystem,
    parse,
)
from repro.__main__ import main as cli_main
from repro.engine.algorithm1 import Algorithm1
from repro.engine.budget import (
    TRUNCATED_BUDGET,
    TRUNCATED_CANCELLED,
    TRUNCATED_TIMEOUT,
)
from repro.engine.streams import best_first
from repro.ide import CompletionSession, Workspace
from repro.testing import FaultError, FaultPlan, faults


class FakeClock:
    """A manually-advanced monotonic clock (seconds)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# QueryBudget / CancellationToken units
# ----------------------------------------------------------------------
class TestQueryBudget:
    def test_unlimited_budget_never_trips(self):
        budget = QueryBudget()
        for _ in range(10_000):
            assert budget.tick()
        assert budget.tripped is None

    def test_step_budget_trips_and_stays_tripped(self):
        budget = QueryBudget(max_steps=3)
        assert budget.tick() and budget.tick() and budget.tick()
        assert not budget.tick()
        assert budget.tripped == TRUNCATED_BUDGET
        assert not budget.tick()  # sticky

    def test_deadline_trips_via_fake_clock(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=100, clock=clock)
        assert budget.tick()
        clock.advance(0.2)  # 200 ms
        assert not all(budget.tick() for _ in range(64))
        assert budget.tripped == TRUNCATED_TIMEOUT

    def test_first_tick_checks_the_clock(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=1, clock=clock)
        clock.advance(1.0)  # expired before any work happened
        assert not budget.tick()
        assert budget.tripped == TRUNCATED_TIMEOUT

    def test_cancellation_token(self):
        token = CancellationToken()
        budget = QueryBudget(token=token)
        assert budget.tick()
        token.cancel()
        assert not budget.tick()
        assert budget.tripped == TRUNCATED_CANCELLED

    def test_ok_rechecks_without_charging(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=100, clock=clock)
        assert budget.ok()
        assert budget.steps == 0
        clock.advance(1.0)
        assert not budget.ok()
        assert budget.tripped == TRUNCATED_TIMEOUT

    def test_raise_if_tripped_maps_to_taxonomy(self):
        budget = QueryBudget(max_steps=0)
        budget.tick()
        with pytest.raises(BudgetExhausted):
            budget.raise_if_tripped()

        clock = FakeClock()
        budget = QueryBudget(deadline_ms=1, clock=clock)
        clock.advance(1.0)
        budget.tick()
        with pytest.raises(QueryTimeout):
            budget.raise_if_tripped()

        token = CancellationToken()
        token.cancel()
        budget = QueryBudget(token=token)
        budget.tick()
        with pytest.raises(QueryCancelled):
            budget.raise_if_tripped()

    def test_untripped_budget_raises_nothing(self):
        budget = QueryBudget(max_steps=10)
        budget.tick()
        budget.raise_if_tripped()


# ----------------------------------------------------------------------
# stream combinators under budget
# ----------------------------------------------------------------------
class TestStreamTruncation:
    def test_best_first_stops_on_tripped_budget(self):
        def expand(score, value):
            # an infinite closure: every node has one successor
            yield score + 1, value + 1

        budget = QueryBudget(max_steps=5)
        items = list(best_first([(0, 0)], expand, budget))
        assert 0 < len(items) <= 5
        assert budget.tripped == TRUNCATED_BUDGET
        # the emitted prefix is still sorted
        scores = [score for score, _ in items]
        assert scores == sorted(scores)

    def test_best_first_unbudgeted_prefix_agrees(self):
        def expand(score, value):
            yield score + 1, value + 1

        budget = QueryBudget(max_steps=4)
        budgeted = list(best_first([(0, 0)], expand, budget))
        from itertools import islice

        free = list(islice(best_first([(0, 0)], expand), len(budgeted)))
        assert budgeted == free


# ----------------------------------------------------------------------
# the engine end to end
# ----------------------------------------------------------------------
class TestEngineBudget:
    def test_expired_deadline_returns_best_so_far_not_raise(
        self, paint_engine, paint_context
    ):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=1, clock=clock)
        clock.advance(1.0)  # the paper's unbounded generator, zero time left
        pe = parse("img.?*m", paint_context)
        outcome = paint_engine.complete_query(
            pe, paint_context, n=10, budget=budget
        )
        assert outcome.truncated == TRUNCATED_TIMEOUT
        assert isinstance(outcome.completions, list)  # possibly empty

    def test_step_budget_yields_prefix_of_full_results(
        self, paint_engine, paint_context
    ):
        pe = parse("img.?*m", paint_context)
        full = paint_engine.complete(pe, paint_context, n=10)
        # fewer steps than requested results, so the budget trips while
        # the caller is still pulling
        budget = QueryBudget(max_steps=6)
        outcome = paint_engine.complete_query(
            pe, paint_context, n=10, budget=budget
        )
        assert outcome.truncated == TRUNCATED_BUDGET
        assert outcome.completions == full[: len(outcome.completions)]
        assert outcome.steps > 0

    def test_generous_budget_changes_nothing(self, paint_engine, paint_context):
        pe = parse("?({img, size})", paint_context)
        full = paint_engine.complete(pe, paint_context, n=10)
        outcome = paint_engine.complete_query(
            pe, paint_context, n=10, budget=QueryBudget(max_steps=10_000_000)
        )
        assert outcome.truncated is None
        assert outcome.completions == full
        assert outcome.degraded == set()

    def test_cancellation_mid_stream(self, paint_engine, paint_context):
        token = CancellationToken()
        budget = QueryBudget(token=token)
        pe = parse("img.?*m", paint_context)
        stream = paint_engine.all_completions(
            pe, paint_context, budget=budget
        )
        first = next(stream)
        assert first is not None
        token.cancel()
        rest = list(stream)
        assert len(rest) <= 1  # at most one in-flight item
        assert budget.tripped == TRUNCATED_CANCELLED

    def test_strict_mode_raises_taxonomy_error(
        self, paint_engine, paint_context
    ):
        pe = parse("img.?*m", paint_context)
        with pytest.raises(BudgetExhausted):
            paint_engine.complete_query(
                pe, paint_context, n=10,
                budget=QueryBudget(max_steps=5), strict=True,
            )

    def test_budgeted_query_on_pairs(self, paint_engine, paint_context):
        # assignment/comparison paths run through reorder_with_slack
        pe = parse("? == ?", paint_context)
        outcome = paint_engine.complete_query(
            pe, paint_context, n=5, budget=QueryBudget(max_steps=25)
        )
        assert outcome.truncated == TRUNCATED_BUDGET

    def test_algorithm1_respects_budget(self, paint_context):
        algo = Algorithm1(paint_context, budget=QueryBudget(max_steps=20))
        results = list(algo.all_completions(parse("?", paint_context)))
        assert algo.budget.tripped == TRUNCATED_BUDGET
        assert len(results) <= 20


# ----------------------------------------------------------------------
# graceful degradation of optional features
# ----------------------------------------------------------------------
class BrokenOracle:
    """An abstract-type oracle whose backend is down."""

    def of_expr(self, expr):
        raise RuntimeError("oracle backend unreachable")

    def of_param(self, method, index, receiver_type):
        raise RuntimeError("oracle backend unreachable")


class TestDegradation:
    def test_broken_oracle_degrades_to_null_oracle(
        self, paint_engine, paint_context
    ):
        pe = parse("?({img, size})", paint_context)
        baseline = paint_engine.complete_query(
            pe, paint_context, n=10, abstypes=None
        )
        outcome = paint_engine.complete_query(
            pe, paint_context, n=10, abstypes=BrokenOracle()
        )
        assert outcome.degraded == {"abstract_types"}
        assert outcome.completions == baseline.completions

    def test_oracle_fault_injection_degrades(
        self, paint_engine, paint_context
    ):
        pe = parse("?({img, size})", paint_context)
        baseline = paint_engine.complete_query(pe, paint_context, n=10)
        with faults.inject("oracle", times=None):
            outcome = paint_engine.complete_query(pe, paint_context, n=10)
        assert outcome.degraded == {"abstract_types"}
        assert outcome.completions == baseline.completions

    def test_pair_oracle_degrades_on_comparisons(
        self, paint_engine, paint_context
    ):
        pe = parse("img.Width == ?", paint_context)
        baseline = paint_engine.complete_query(pe, paint_context, n=5)
        outcome = paint_engine.complete_query(
            pe, paint_context, n=5, abstypes=BrokenOracle()
        )
        assert "abstract_types" in outcome.degraded
        assert outcome.completions == baseline.completions

    def test_namespace_fault_degrades(self, paint_engine, paint_context):
        pe = parse("?({img, size})", paint_context)
        with faults.inject("namespaces", times=None):
            outcome = paint_engine.complete_query(pe, paint_context, n=10)
        assert "namespaces" in outcome.degraded
        assert outcome.completions  # the query still answers

    def test_matching_name_fault_degrades(self, paint_engine, paint_context):
        pe = parse("img.Width == ?", paint_context)
        with faults.inject("matching_name", times=None):
            outcome = paint_engine.complete_query(pe, paint_context, n=5)
        assert "matching_name" in outcome.degraded
        assert outcome.completions

    def test_index_fault_degrades_to_full_scan(
        self, paint_engine, paint_context
    ):
        pe = parse("?({img, size})", paint_context)
        baseline = paint_engine.complete_query(pe, paint_context, n=10)
        with faults.inject("index_lookup", times=None):
            outcome = paint_engine.complete_query(pe, paint_context, n=10)
        assert "method_index" in outcome.degraded
        # a full scan finds the same top completions, just slower
        assert outcome.completions == baseline.completions

    def test_reachability_fault_disables_pruning(self, paint, paint_engine):
        context = Context(paint.ts, locals={"img": paint.document})
        pe = parse("img.?*f", context)
        baseline = paint_engine.complete_query(
            pe, context, n=5, expected_type=paint.size
        )
        with faults.inject("index_lookup", times=None):
            outcome = paint_engine.complete_query(
                pe, context, n=5, expected_type=paint.size
            )
        assert "reachability" in outcome.degraded
        assert outcome.completions == baseline.completions

    def test_type_check_fault_is_conservative(self, paint, paint_engine):
        context = Context(paint.ts, locals={"img": paint.document})
        pe = parse("img.?*f", context)
        with faults.inject("type_check", times=None):
            outcome = paint_engine.complete_query(
                pe, context, n=5, expected_type=paint.size
            )
        assert "type_check" in outcome.degraded
        assert outcome.completions == []  # dropped, never wrong

    def test_single_shot_fault_degrades_but_query_survives(
        self, paint_engine, paint_context
    ):
        # only the first oracle call fails; the rest answer normally
        pe = parse("?({img, size})", paint_context)
        with faults.inject("oracle", on_call=1, times=1):
            outcome = paint_engine.complete_query(pe, paint_context, n=10)
        assert "abstract_types" in outcome.degraded
        assert outcome.completions


# ----------------------------------------------------------------------
# the session and CLI surface
# ----------------------------------------------------------------------
class TestSessionResilience:
    @pytest.fixture
    def session(self):
        workspace = Workspace.builtin("paint")
        session = CompletionSession(workspace)
        session.declare("img", "Document")
        session.declare("size", "System.Drawing.Size")
        return session

    def test_record_carries_elapsed_ms(self, session):
        record = session.query("?({img})")
        assert record.elapsed_ms is not None
        assert record.elapsed_ms >= 0.0
        assert record.truncated is None
        assert record.degraded == set()

    def test_step_budget_truncates_with_reason(self, session):
        session.step_budget = 5
        record = session.query("img.?*m")
        assert record.truncated == TRUNCATED_BUDGET

    def test_precancelled_session_truncates(self, session):
        token = CancellationToken()
        token.cancel()
        session.cancellation = token
        record = session.query("img.?*m")
        assert record.truncated == TRUNCATED_CANCELLED
        assert record.suggestions == []

    def test_degraded_features_recorded_on_record(self, session):
        with faults.inject("oracle", times=None):
            record = session.query("?({img, size})")
        assert record.degraded == {"abstract_types"}
        assert record.suggestions


class TestCliResilience:
    def run(self, argv):
        output = []
        code = cli_main(argv, write=output.append)
        return code, "\n".join(output)

    def test_budget_flag_truncates_with_exit_4(self):
        code, out = self.run([
            "complete", "--universe", "paint",
            "--let", "img=Document",
            "--budget", "5",
            "img.?*m",
        ])
        assert code == 4
        assert "truncated: budget" in out

    def test_timeout_flag_truncates_with_exit_3(self):
        # Disable reachability pruning (huge chain frontier) and make
        # every target-type check sleep 2 ms: the stream is guaranteed to
        # tick past the clock-check interval with milliseconds already
        # burnt, so a 1 ms deadline must trip.
        plan = FaultPlan()
        plan.add("index_lookup", times=None)
        plan.add("type_check", times=None, delay_ms=2)
        faults.install(plan)
        try:
            code, out = self.run([
                "complete", "--universe", "paint",
                "--let", "img=Document",
                "--expect", "System.Drawing.Size",
                "--timeout-ms", "1",
                "img.?*m",
            ])
        finally:
            faults.uninstall()
        assert code == 3
        assert "truncated: timeout" in out

    def test_timeout_flag_fast_query_exits_zero(self):
        code, out = self.run([
            "complete", "--universe", "paint",
            "--let", "img=Document",
            "--timeout-ms", "60000",
            "img.?f",
        ])
        assert code == 0
        assert "truncated" not in out

    def test_nonpositive_timeout_is_usage_error(self):
        code, _out = self.run([
            "complete", "--universe", "paint", "--timeout-ms", "0", "?",
        ])
        assert code == 2

    def test_nonpositive_budget_is_usage_error(self):
        code, _out = self.run([
            "complete", "--universe", "paint", "--budget", "-1", "?",
        ])
        assert code == 2

    def test_bad_this_type_is_reported_not_traceback(self):
        code, out = self.run([
            "complete", "--universe", "paint", "--this", "BadType", "?",
        ])
        assert code == 2
        assert "error:" in out

    def test_bad_expect_type_is_reported_not_traceback(self):
        code, out = self.run([
            "complete", "--universe", "paint", "--expect", "BadType", "?",
        ])
        assert code == 2
        assert "error:" in out

    def test_degraded_note_is_printed(self):
        with faults.inject("oracle", times=None):
            code, out = self.run([
                "complete", "--universe", "paint",
                "--let", "img=Document",
                "--let", "size=System.Drawing.Size",
                "?({img, size})",
            ])
        assert code == 0
        assert "degraded features: abstract_types" in out


# ----------------------------------------------------------------------
# corpus-building resilience
# ----------------------------------------------------------------------
class TestCorpusResilience:
    SCALE = 0.013  # distinct scale so the memo never collides with others

    def test_faulted_project_is_skipped_with_diagnostic(self):
        from repro.corpus import build_all_projects, last_build_diagnostics
        from repro.corpus.projects import PROJECT_BUILDERS, _cache

        _cache.pop(self.SCALE, None)
        with faults.inject("corpus_load", on_call=2):
            projects = build_all_projects(self.SCALE)
        assert len(projects) == len(PROJECT_BUILDERS) - 1
        diagnostics = last_build_diagnostics()
        assert len(diagnostics) == 1
        assert diagnostics[0].project == "WiX"  # the second builder
        assert diagnostics[0].stage == "build"
        # a degraded build is not memoised
        assert self.SCALE not in _cache

    def test_strict_mode_raises_corpus_error(self):
        from repro import CorpusError
        from repro.corpus import build_all_projects
        from repro.corpus.projects import _cache

        _cache.pop(self.SCALE, None)
        with faults.inject("corpus_load", on_call=1):
            with pytest.raises(CorpusError):
                build_all_projects(self.SCALE, strict=True)

    def test_malformed_program_is_dropped_with_diagnostic(self, paint):
        from repro.corpus.program import ExprStatement, MethodImpl, Project
        from repro.corpus.projects import CorpusDiagnostic, _validate_impls
        from repro.lang import Call, Var

        project = Project("Broken", paint.ts)
        good = MethodImpl(paint.resize_document)
        # a Size is not a Document: the first argument is ill-typed
        size_var = Var("sz", paint.size)
        bad = MethodImpl(paint.resize_document)
        bad.body.append(
            ExprStatement(
                Call(
                    paint.resize_document,
                    (size_var,) * paint.resize_document.arity,
                )
            )
        )
        project.add_impl(good)
        project.add_impl(bad)
        diagnostics = []
        _validate_impls(project, diagnostics)
        assert project.impls == [good]
        assert len(diagnostics) == 1
        assert isinstance(diagnostics[0], CorpusDiagnostic)
        assert diagnostics[0].stage == "program"
        assert "not well-typed" in diagnostics[0].detail


# ----------------------------------------------------------------------
# the fault harness itself
# ----------------------------------------------------------------------
class TestFaultHarness:
    def test_fire_is_noop_without_plan(self):
        faults.fire("oracle")  # must not raise

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().add("warp_core")

    def test_nth_call_trigger(self):
        with faults.inject("oracle", on_call=3) as plan:
            faults.fire("oracle")
            faults.fire("oracle")
            with pytest.raises(FaultError):
                faults.fire("oracle")
            faults.fire("oracle")  # times=1: only the 3rd call fails
        assert plan.calls_to("oracle") == 4
        assert plan.triggered == [("oracle", 3)]

    def test_times_none_means_every_call_from_nth(self):
        with faults.inject("oracle", on_call=2, times=None):
            faults.fire("oracle")
            for _ in range(3):
                with pytest.raises(FaultError):
                    faults.fire("oracle")

    def test_custom_error_instance(self):
        from repro import FeatureUnavailable

        boom = FeatureUnavailable("abstract_types", "backend down")
        with faults.inject("oracle", error=boom):
            with pytest.raises(FeatureUnavailable):
                faults.fire("oracle")

    def test_delay_mode_sleeps_then_continues(self):
        import time

        with faults.inject("type_check", delay_ms=5, times=None):
            start = time.monotonic()
            faults.fire("type_check")
            assert time.monotonic() - start >= 0.004

    def test_plans_nest_and_restore(self):
        assert faults.active_plan() is None
        with faults.inject("oracle"):
            outer = faults.active_plan()
            with faults.inject("type_check"):
                assert faults.active_plan() is not outer
                faults.fire("oracle")  # inner plan: oracle is clean here
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_deterministic_across_runs(self):
        def run():
            triggered = []
            with faults.inject("oracle", on_call=2, times=2) as plan:
                for _ in range(5):
                    try:
                        faults.fire("oracle")
                    except FaultError:
                        pass
                triggered = list(plan.triggered)
            return triggered

        assert run() == run() == [("oracle", 2), ("oracle", 3)]


class TestFaultSiteValidation:
    """The canonical site list is enforced everywhere a site name enters
    the system, and chaos-mode fuzzing enumerates it programmatically."""

    def test_plan_add_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan().add("not_a_site")

    def test_fault_constructor_rejects_unknown_site(self):
        # direct Fault(...) construction bypasses FaultPlan.add — the
        # dataclass itself validates, so a typo'd site can never install
        # a fault that silently never fires
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.Fault("orakle")

    def test_query_sites_is_sites_minus_corpus_load(self):
        assert set(faults.QUERY_SITES) == set(faults.SITES) - {"corpus_load"}
        assert "corpus_load" in faults.SITES

    @pytest.mark.parametrize("site, query, expected", [
        ("type_check", "?", "DynamicGeometry.Point"),
        ("index_lookup", "?({point})", None),
        ("namespaces", "?({point, shapeStyle})", None),
        ("matching_name", "point.?*m >= point.?*m", None),
    ])
    def test_query_path_sites_actually_fire(self, site, query, expected):
        # wiring proof: a no-op (0 ms delay) fault at each query-path
        # site records calls while a site-exercising query runs
        session = CompletionSession(Workspace.builtin("geometry"))
        session.declare("point", "DynamicGeometry.Point")
        session.declare("shapeStyle", "DynamicGeometry.ShapeStyle")
        if expected is not None:
            session.set_expected(expected)
        with faults.inject(site, delay_ms=0, times=None) as plan:
            session.complete(query)
        assert plan.calls_to(site) > 0

    def test_chaos_mode_draws_from_query_sites(self):
        from repro.fuzz.harness import FuzzConfig, synthesize_scenario

        config = FuzzConfig(seed=0, iterations=40, chaos=True)
        sites = {
            synthesize_scenario(config, i)["fault"]["site"]
            for i in range(40)
            if synthesize_scenario(config, i)["mode"] == "chaos"
        }
        assert sites  # chaos iterations exist
        assert sites <= set(faults.QUERY_SITES)
