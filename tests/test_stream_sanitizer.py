"""Seeded randomized property tests for the stream-ordering invariant.

Every combinator in ``repro.engine.streams`` promises nondecreasing scores;
these tests drive each one with seeded-random inputs — with and without
``QueryBudget`` truncation — under the opt-in sanitizer, which turns any
ordering violation into a ``StreamInvariantViolation``.  The tests also
assert the ordering directly, so they stand alone even if the autouse
sanitizer fixture is removed.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.budget import QueryBudget
from repro.engine.streams import (
    Materialized,
    best_first,
    check_stream,
    merge,
    merge_nested,
    ordered_product,
    reorder_with_slack,
    sanitize_streams,
    sanitizer_active,
)
from repro.errors import StreamInvariantViolation

SEEDS = [0, 1, 7, 42, 20260806]

BUDGETS = [None, 5, 40]


def sorted_stream(rng: random.Random, length: int, tag: str):
    """A random sorted scored stream [(score, value), ...]."""
    score = rng.randint(0, 3)
    items = []
    for index in range(length):
        items.append((score, "{}{}".format(tag, index)))
        score += rng.randint(0, 4)
    return items


def assert_nondecreasing(items):
    scores = [score for score, _value in items]
    assert scores == sorted(scores)


def make_budget(steps):
    return None if steps is None else QueryBudget(max_steps=steps)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("steps", BUDGETS)
class TestCombinatorOrdering:
    def test_merge(self, seed, steps):
        rng = random.Random(seed)
        streams = [
            sorted_stream(rng, rng.randint(0, 12), "s{}-".format(i))
            for i in range(rng.randint(1, 6))
        ]
        result = list(merge(streams, make_budget(steps)))
        assert_nondecreasing(result)
        if steps is None:
            assert len(result) == sum(len(s) for s in streams)

    def test_ordered_product(self, seed, steps):
        rng = random.Random(seed)
        streams = [
            Materialized(sorted_stream(rng, rng.randint(1, 6), "p"))
            for _ in range(rng.randint(1, 3))
        ]
        result = list(ordered_product(streams, make_budget(steps)))
        assert_nondecreasing(result)

    def test_merge_nested(self, seed, steps):
        rng = random.Random(seed)
        outer = sorted_stream(rng, rng.randint(0, 10), "o")
        extras = {value: rng.randint(0, 7) for _score, value in outer}

        def expand(base, value):
            return [(base + extras[value], value + "!")]

        result = list(merge_nested(iter(outer), expand, make_budget(steps)))
        assert_nondecreasing(result)

    def test_reorder_with_slack(self, seed, steps):
        rng = random.Random(seed)
        slack = 6
        base = 0
        triples = []
        for index in range(rng.randint(0, 15)):
            base += rng.randint(0, 3)
            triples.append((base, base + rng.randint(0, slack), index))
        result = list(
            reorder_with_slack(iter(triples), slack, make_budget(steps))
        )
        assert_nondecreasing(result)

    def test_best_first(self, seed, steps):
        rng = random.Random(seed)
        roots = [(rng.randint(0, 5), "r{}".format(i)) for i in range(3)]

        def expand(score, value):
            if value.count("x") >= 3:
                return []
            spread = (len(value) * 7919) % 5  # deterministic pseudo-noise
            return [(score + spread, value + "x"),
                    (score + spread + 1, value + "xx")]

        result = list(best_first(roots, expand, make_budget(steps)))
        assert_nondecreasing(result)


class TestSanitizer:
    def test_check_stream_raises_on_regression(self):
        bad = [(3, "a"), (1, "b")]
        with pytest.raises(StreamInvariantViolation) as info:
            list(check_stream("demo", iter(bad)))
        assert info.value.combinator == "demo"
        assert info.value.previous == 3
        assert info.value.current == 1

    def test_merge_detects_unsorted_input(self):
        # one stream with decreasing scores: merge's output goes backwards
        broken = [[(5, "late"), (0, "early")]]
        with sanitize_streams():
            with pytest.raises(StreamInvariantViolation) as info:
                list(merge(broken))
        assert info.value.combinator == "merge"

    def test_disabled_sanitizer_is_silent(self):
        broken = [[(5, "late"), (0, "early")]]
        with sanitize_streams(False):
            assert not sanitizer_active()
            result = list(merge(broken))
        assert [score for score, _ in result] == [5, 0]

    def test_flag_restored_after_exception(self):
        before = sanitizer_active()
        with pytest.raises(StreamInvariantViolation):
            with sanitize_streams():
                list(check_stream("merge", iter([(2, "a"), (0, "b")])))
        assert sanitizer_active() == before

    def test_violation_survives_budget_truncation(self):
        # the regression sits inside the budgeted prefix: still caught
        broken = [[(5, "late"), (0, "early"), (9, "never")]]
        with sanitize_streams():
            with pytest.raises(StreamInvariantViolation):
                list(merge(broken, QueryBudget(max_steps=2)))


class TestEngineUnderSanitizer:
    def test_paint_queries_emit_ordered_streams(self, paint, paint_engine,
                                                paint_context):
        from repro.lang.parser import parse

        assert sanitizer_active()  # the autouse fixture is live
        for source in ("?", "img.?*m", "?({img, size})", "? := ?"):
            pe = parse(source, paint_context)
            completions = paint_engine.complete(pe, paint_context, n=15)
            assert_nondecreasing(
                [(c.score, c.expr) for c in completions]
            )

    def test_probes_clean_on_builtin_universes(self, paint_engine,
                                               geometry_engine):
        from repro.analysis import run_sanitizer_probes

        assert run_sanitizer_probes(paint_engine) == []
        assert run_sanitizer_probes(geometry_engine) == []
