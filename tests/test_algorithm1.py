"""The naive Algorithm 1 transcription must agree with the lazy engine."""

import pytest

from repro import Context, CompletionEngine, EngineConfig, TypeSystem, parse
from repro.codemodel import LibraryBuilder
from repro.engine.algorithm1 import Algorithm1

MAX_SCORE = 10
DEPTH = 2


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    disc = lib.struct("Play.Disc")
    lib.prop(disc, "Radius", ts.primitive("double"))
    lib.prop(disc, "Label", ts.string_type)
    player = lib.cls("Play.Player")
    lib.prop(player, "Current", disc)
    lib.method(player, "Spin", params=[("d", disc)])
    lib.static_method("Play.Rack", "Store", returns=None,
                      params=[("d", disc), ("slot", ts.primitive("int"))])
    lib.static_method("Play.Rack", "Fetch", returns=disc,
                      params=[("slot", ts.primitive("int"))])
    ctx = Context(ts, locals={"disc": disc, "player": player})
    return ts, ctx


QUERIES = [
    "?",
    "disc.?m",
    "player.?*f",
    "?({disc})",
    "?({disc, player})",
    "Spin(player, ?)",
    "disc.?f := player.Current.?f",
    "disc.?*m >= player.?*m",
]


@pytest.mark.parametrize("source", QUERIES)
def test_agrees_with_production_engine(world, source):
    ts, ctx = world
    pe = parse(source, ctx)
    naive = Algorithm1(ctx, max_score=MAX_SCORE, max_chain_depth=DEPTH)
    engine = CompletionEngine(ts, EngineConfig(max_chain_depth=DEPTH))

    naive_items = {key.key(): score for score, key in naive.all_completions(pe)}
    engine_items = {}
    for completion in engine.all_completions(pe, ctx):
        if completion.score > MAX_SCORE:
            break
        engine_items.setdefault(completion.expr.key(), completion.score)

    # the production engine emits the best placement per (method, args)
    # for unknown calls, so it is a subset with identical scores; every
    # engine item must exist in the naive set, and the naive set must not
    # contain any *method/score* the engine misses
    for key, score in engine_items.items():
        assert key in naive_items, key
        assert naive_items[key] == score

    naive_best: dict = {}
    for score, expr in naive.all_completions(pe):
        group = expr.key()[:2] if expr.key()[0] == "call" else expr.key()
        if group not in naive_best:
            naive_best[group] = score
    engine_best: dict = {}
    for key, score in engine_items.items():
        group = key[:2] if key[0] == "call" else key
        if group not in engine_best:
            engine_best[group] = min(score, engine_best.get(group, score))
    for group, score in naive_best.items():
        assert group in engine_best, group
        assert engine_best[group] <= score


def test_score_loop_order(world):
    ts, ctx = world
    pe = parse("?", ctx)
    naive = Algorithm1(ctx, max_score=8, max_chain_depth=2)
    scores = [score for score, _expr in naive.all_completions(pe)]
    assert scores == sorted(scores)
    assert all(score <= 8 for score in scores)
