"""The fuzzing loop: determinism, oracles, shrinking, replay, surfaces."""

import json

import pytest

from repro.__main__ import main
from repro.engine.completer import QueryStatus
from repro.fuzz import FuzzConfig, run_fuzz
from repro.fuzz.harness import (
    records_ndjson,
    run_scenario,
    synthesize_scenario,
)
from repro.fuzz.oracles import (
    Mismatch,
    check_chaos_outcome,
    compare_outcomes,
)
from repro.fuzz.shrink import (
    load_repro,
    replay_repro,
    save_repro,
    shrink_scenario,
)
from repro.fuzz.transforms import NameMapping
from repro.lang.ast import Var


# ----------------------------------------------------------------------
# oracle unit tests (fake outcomes, no engine)
# ----------------------------------------------------------------------

class _Completion:
    def __init__(self, score, name):
        self.score = score
        self.expr = Var(name, None)


class _Outcome:
    def __init__(self, scored, status=QueryStatus.OK, degraded=()):
        self.completions = [_Completion(s, t) for s, t in scored]
        self.status = status
        self.degraded = set(degraded)


IDENTITY = NameMapping.identity()


class TestCompareOutcomes:
    def test_equal_up_to_tie_order(self):
        base = _Outcome([(1, "a"), (2, "b"), (2, "c")])
        other = _Outcome([(1, "a"), (2, "c"), (2, "b")])
        compare_outcomes(base, other, IDENTITY, n=10)

    def test_score_difference_raises(self):
        base = _Outcome([(1, "a"), (2, "b")])
        other = _Outcome([(1, "a"), (3, "b")])
        with pytest.raises(Mismatch, match="score differs"):
            compare_outcomes(base, other, IDENTITY, n=10)

    def test_member_difference_raises_when_not_cut(self):
        # list shorter than n: the stream was exhausted, so even the last
        # group must match exactly
        base = _Outcome([(1, "a"), (2, "b")])
        other = _Outcome([(1, "a"), (2, "z")])
        with pytest.raises(Mismatch, match="members differ"):
            compare_outcomes(base, other, IDENTITY, n=10)

    def test_boundary_group_compared_by_size_only(self):
        # list length == n: the top-n cut may have split the last score
        # group, and which tied members survive is unspecified
        base = _Outcome([(1, "a"), (2, "b"), (2, "c")])
        other = _Outcome([(1, "a"), (2, "b"), (2, "z")])
        compare_outcomes(base, other, IDENTITY, n=3)

    def test_prefix_only_ignores_divergent_tails(self):
        base = _Outcome([(1, "a"), (2, "b"), (3, "x")])
        other = _Outcome([(1, "a"), (2, "b")])
        compare_outcomes(base, other, IDENTITY, n=10, prefix_only=True)

    def test_prefix_only_still_checks_shared_groups(self):
        base = _Outcome([(1, "a"), (2, "b"), (3, "x")])
        other = _Outcome([(1, "z"), (2, "b")])
        with pytest.raises(Mismatch):
            compare_outcomes(base, other, IDENTITY, n=10, prefix_only=True)

    def test_nonmonotone_scores_raise(self):
        base = _Outcome([(2, "a"), (1, "b")])
        with pytest.raises(Mismatch, match="nondecreasing"):
            compare_outcomes(base, base, IDENTITY, n=10)


class TestChaosContract:
    def test_identical_outcomes_pass(self):
        clean = _Outcome([(1, "a")])
        check_chaos_outcome(clean, _Outcome([(1, "a")]), n=10)

    def test_marked_degradation_passes(self):
        clean = _Outcome([(1, "a"), (2, "b")])
        faulted = _Outcome([(1, "a")], degraded={"namespaces"})
        check_chaos_outcome(clean, faulted, n=10)

    def test_truncated_status_passes(self):
        clean = _Outcome([(1, "a"), (2, "b")])
        faulted = _Outcome([(1, "a")], status=QueryStatus.BUDGET)
        check_chaos_outcome(clean, faulted, n=10)

    def test_silently_wrong_is_the_failure(self):
        clean = _Outcome([(1, "a"), (2, "b")])
        faulted = _Outcome([(1, "a"), (2, "z")])  # no degraded, status OK
        with pytest.raises(Mismatch, match="silently wrong"):
            check_chaos_outcome(clean, faulted, n=10)


# ----------------------------------------------------------------------
# shrinking (synthetic runner, no engine)
# ----------------------------------------------------------------------

def _scenario(transforms, queries):
    return {
        "universe": "paint",
        "mode": "differential",
        "transforms": transforms,
        "queries": queries,
        "locals": {"img": "PaintDotNet.Document"},
        "this": None,
        "n": 10,
        "budget_steps": None,
        "fault": None,
        "mutation_seed": None,
    }


def _culprit_runner(scenario):
    families = [family for family, _ in scenario["transforms"]]
    if "rename_members" in families and "img.?f" in scenario["queries"]:
        return "boom"
    return None


class TestShrink:
    def test_minimizes_to_single_transform_and_query(self):
        scenario = _scenario(
            [["rename_types", 1], ["rename_members", 2], ["split_types", 3]],
            ["?", "img.?f", "img.?m"],
        )
        shrunk = shrink_scenario(scenario, _culprit_runner)
        assert shrunk["transforms"] == [["rename_members", 2]]
        assert shrunk["queries"] == ["img.?f"]
        assert shrunk["failure"] == "boom"
        assert shrunk["shrunk"] is True
        # the input was not mutated
        assert len(scenario["transforms"]) == 3

    def test_non_failing_scenario_returned_unshrunk(self):
        scenario = _scenario([["rename_types", 1]], ["?"])
        shrunk = shrink_scenario(scenario, lambda s: None)
        assert shrunk["transforms"] == scenario["transforms"]
        assert "shrunk" not in shrunk

    def test_repro_file_roundtrip(self, tmp_path):
        scenario = _scenario([["rename_members", 2]], ["img.?f"])
        path = str(tmp_path / "repro.json")
        save_repro(path, scenario)
        loaded = load_repro(path)
        assert loaded["format"] == "repro-fuzz-repro"
        assert loaded["transforms"] == [["rename_members", 2]]
        assert loaded["queries"] == ["img.?f"]

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "repro-bench"}))
        with pytest.raises(ValueError, match="not a repro-fuzz-repro"):
            load_repro(str(path))


# ----------------------------------------------------------------------
# the loop: determinism and scheduling
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_same_seed_byte_identical_records(self, tmp_path):
        config = FuzzConfig(seed=5, iterations=6, chaos=True,
                            out_dir=str(tmp_path))
        first = run_fuzz(config)
        second = run_fuzz(config)
        assert not first.failed
        assert records_ndjson(first) == records_ndjson(second)

    def test_chaos_joins_mode_rotation(self):
        config = FuzzConfig(seed=1, iterations=8, chaos=True)
        modes = {synthesize_scenario(config, i)["mode"] for i in range(8)}
        assert modes == {"differential", "budget", "mutation", "chaos"}
        no_chaos = FuzzConfig(seed=1, iterations=8)
        modes = {synthesize_scenario(no_chaos, i)["mode"] for i in range(8)}
        assert modes == {"differential", "budget", "mutation"}

    def test_unknown_transform_family_rejected(self):
        with pytest.raises(ValueError, match="unknown transform"):
            FuzzConfig(transforms=["bogus"]).families()

    def test_scenarios_pin_battery_scope(self):
        scenario = synthesize_scenario(FuzzConfig(seed=2, universes=("bcl",)), 0)
        assert scenario["universe"] == "bcl"
        assert scenario["locals"] == {"now": "System.DateTime",
                                      "span": "System.TimeSpan"}


# ----------------------------------------------------------------------
# the acceptance loop: planted bug -> found, shrunk, replayed
# ----------------------------------------------------------------------

@pytest.fixture
def planted_rank_instability(monkeypatch):
    """A deliberately rank-unstable scoring tweak: the namespace term
    picks up a dependence on the method's *name*, which rename_members
    perturbs while the semantics stay put."""
    from repro.engine.ranking import Ranker

    original = Ranker.namespace_cost

    def buggy(self, method, arg_types):
        return original(self, method, arg_types) + (len(method.name) % 2)

    monkeypatch.setattr(Ranker, "namespace_cost", buggy)


class TestPlantedBug:
    def test_found_shrunk_and_replayable(self, tmp_path, monkeypatch,
                                         planted_rank_instability):
        lines = []
        code = main(["fuzz", "--seed", "3", "--iterations", "10",
                     "--transforms", "rename_members",
                     "--out", str(tmp_path)], write=lines.append)
        assert code == 1
        repro_files = list(tmp_path.glob("FUZZ_REPRO_*.json"))
        assert len(repro_files) == 1
        scenario = load_repro(str(repro_files[0]))
        # shrunk to a minimal plan and a single query
        assert len(scenario["transforms"]) == 1
        assert scenario["transforms"][0][0] == "rename_members"
        assert len(scenario["queries"]) == 1
        # replay with the bug still planted: reproduces, exit 1
        assert main(["fuzz", "--replay", str(repro_files[0])],
                    write=lines.append) == 1

    def test_replay_passes_once_fixed(self, tmp_path, monkeypatch):
        from repro.engine.ranking import Ranker

        original = Ranker.namespace_cost

        def buggy(self, method, arg_types):
            return original(self, method, arg_types) + (len(method.name) % 2)

        monkeypatch.setattr(Ranker, "namespace_cost", buggy)
        code = main(["fuzz", "--seed", "3", "--iterations", "10",
                     "--transforms", "rename_members",
                     "--out", str(tmp_path)], write=lambda _line: None)
        assert code == 1
        repro = str(next(tmp_path.glob("FUZZ_REPRO_*.json")))
        monkeypatch.setattr(Ranker, "namespace_cost", original)
        assert main(["fuzz", "--replay", repro],
                    write=lambda _line: None) == 0
        assert replay_repro(repro) is None


# ----------------------------------------------------------------------
# chaos mode against the real engine
# ----------------------------------------------------------------------

class TestChaosMode:
    def test_never_silently_wrong(self, tmp_path):
        # chaos iterations schedule faults across every query-path site;
        # a pass means every divergence was marked degraded/truncated
        config = FuzzConfig(seed=17, iterations=8, chaos=True,
                            out_dir=str(tmp_path))
        report = run_fuzz(config)
        assert not report.failed, report.failure
        assert any(r["mode"] == "chaos" for r in report.records)

    def test_faults_do_not_leak_out_of_the_run(self):
        from repro.testing import faults

        scenario = synthesize_scenario(
            FuzzConfig(seed=17, iterations=8, chaos=True), 3)
        assert scenario["mode"] == "chaos"
        assert run_scenario(scenario) is None
        assert faults.active_plan() is None


# ----------------------------------------------------------------------
# surfaces: CLI run log, REPL, api
# ----------------------------------------------------------------------

class TestSurfaces:
    def test_cli_run_log_manifest_records_seed(self, tmp_path):
        log_path = str(tmp_path / "fuzz.ndjson")
        code = main(["fuzz", "--seed", "9", "--iterations", "3",
                     "--out", str(tmp_path), "--run-log", log_path],
                    write=lambda _line: None)
        assert code == 0
        records = [json.loads(line)
                   for line in open(log_path) if line.strip()]
        assert records[0]["kind"] == "run"
        assert records[0]["seed"] == 9
        events = [r for r in records if r.get("name") == "fuzz_iteration"]
        assert len(events) == 3
        assert [e["data"]["iteration"] for e in events] == [0, 1, 2]

    def test_cli_usage_errors(self, tmp_path):
        assert main(["fuzz", "--iterations", "0"],
                    write=lambda _line: None) == 2
        assert main(["fuzz", "--transforms", " , "],
                    write=lambda _line: None) == 2
        assert main(["fuzz", "--replay", str(tmp_path / "missing.json")],
                    write=lambda _line: None) == 2

    def test_repl_fuzz_command(self):
        from repro.ide.repl import run_repl
        from repro.ide.workspace import Workspace

        lines = []
        run_repl(Workspace.builtin("geometry"), [":fuzz 2 4", ":quit"],
                 lines.append)
        text = "\n".join(lines)
        assert "fuzz seed 4: 2 iteration(s)" in text
        assert "rank-stable" in text

    def test_api_fuzz(self, tmp_path):
        from repro import api

        report = api.fuzz(seed=2, iterations=2, universes=["geometry"],
                          out_dir=str(tmp_path))
        assert not report.failed
        assert len(report.records) == 2
        assert {r["universe"] for r in report.records} == {"geometry"}

    def test_bench_seed_recorded(self, tmp_path):
        from repro.eval.bench import run_bench
        from repro.obs.runlog import RunLog

        log = RunLog("bench-test")
        document = run_bench(label="t", quick=True, run_log=log, seed=123)
        assert document["seed"] == 123
        manifest = json.loads(log.to_ndjson().splitlines()[0])
        assert manifest["seed"] == 123
