"""Unit tests for fields, properties, methods and parameters."""

import pytest

from repro import TypeSystem
from repro.codemodel import Field, LibraryBuilder, Method, Parameter, Property


@pytest.fixture
def ts():
    return TypeSystem()


class TestFieldsAndProperties:
    def test_field_full_name(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        field = lib.field(owner, "Count", ts.primitive("int"))
        assert field.full_name == "N.Owner.Count"
        assert not field.is_property
        assert not field.is_static

    def test_property_is_field_like(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        prop = lib.prop(owner, "Name", ts.string_type)
        assert isinstance(prop, Field)
        assert prop.is_property

    def test_static_field(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        field = lib.field(owner, "Default", ts.string_type, static=True)
        assert field.is_static


class TestMethods:
    def test_arity_counts_receiver_for_instance(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        instance = lib.method(owner, "M", params=[("x", ts.string_type)])
        static = lib.static_method(owner, "S", params=[("x", ts.string_type)])
        assert instance.arity == 2
        assert static.arity == 1

    def test_all_params_prepends_receiver(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        method = lib.method(owner, "M", params=[("x", ts.string_type)])
        params = method.all_params()
        assert params[0].name == "this"
        assert params[0].type is owner
        assert params[1].name == "x"

    def test_all_params_static(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        method = lib.static_method(owner, "S", params=[("x", ts.string_type)])
        assert [p.name for p in method.all_params()] == ["x"]

    def test_zero_arg_instance(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        assert lib.method(owner, "ToThing", returns=owner).is_zero_arg_instance
        assert not lib.static_method(owner, "Make").is_zero_arg_instance
        assert not lib.method(
            owner, "With", params=[("x", ts.string_type)]
        ).is_zero_arg_instance

    def test_root_declaration_walks_overrides(self, ts):
        lib = LibraryBuilder(ts)
        base = lib.cls("N.Base")
        derived = lib.cls("N.Derived", base=base)
        virtual = lib.method(base, "Render", params=[("x", ts.string_type)])
        override = lib.method(
            derived, "Render", params=[("x", ts.string_type)], overrides=virtual
        )
        assert override.root_declaration() is virtual
        assert virtual.root_declaration() is virtual

    def test_signature_rendering(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        method = lib.static_method(
            owner, "Make", returns=owner, params=[("name", ts.string_type)]
        )
        assert method.signature() == "static N.Owner N.Owner.Make(System.String name)"

    def test_void_signature(self, ts):
        lib = LibraryBuilder(ts)
        owner = lib.cls("N.Owner")
        method = lib.method(owner, "Run")
        assert "void" in method.signature()


class TestParameter:
    def test_parameter_repr(self, ts):
        param = Parameter("x", ts.string_type)
        assert "x" in repr(param) and "System.String" in repr(param)
