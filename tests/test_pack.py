"""Persistent universe packs (docs/ARTIFACTS.md).

Four guarantees pinned here:

* **Round-trips** — for every builtin universe and for fuzz-transformed
  variants of it, pack → load reproduces the universe fingerprint, the
  golden top-10 of the battery queries, and identical dependency-graph
  stats (modulo ``built_version``, which counts load-time
  registrations);
* **Integrity** — truncation and bit-flips fail with the stable
  ``pack_corrupt`` code; a body that verifies byte-wise but hashes to a
  different universe than recorded (or than the caller pinned with
  ``expect_fingerprint``) fails with ``pack_stale``;
* **One error table** — ``pack_corrupt`` / ``pack_stale`` live in the
  canonical table of :mod:`repro.errors`, the same object the serving
  protocol exposes as ``ERROR_CODES``, and the CLI exits with the
  table's exit code;
* **Unified constructor** — :func:`repro.api.open_workspace` opens
  builtin keys, universe documents, project documents, and packs
  through one signature, and the old scattered constructors warn.
"""

import hashlib
import json
import os
import warnings

import pytest

from repro.api import build_pack, load_pack, open_workspace
from repro.errors import (
    ERROR_TABLE,
    PackCorruptError,
    PackError,
    PackStaleError,
    exit_code_for,
    http_status_for,
)
from repro.eval.battery import battery_for
from repro.ide.workspace import Workspace
from repro.pack import inspect_pack, verify_pack
from repro.serialize import dump_type_system, load_type_system

UNIVERSES = ("paint", "geometry", "bcl")

#: (family, seed) plans for the transformed-universe round-trips
FUZZ_PLANS = [
    [("rename_types", 7)],
    [("reorder_members", 3), ("shuffle_interfaces", 5)],
    [("split_types", 11), ("rename_members", 2)],
]


def battery_top10(workspace, universe):
    """Suggestion texts for every battery query of ``universe``."""
    session = battery_for(universe).session(workspace)
    return {
        query: [s.text for s in session.complete(query).suggestions]
        for query in battery_for(universe).queries
    }


def stats_sans_version(workspace):
    stats = workspace.engine.dependency_graph().stats()
    stats.pop("built_version")
    return stats


@pytest.fixture(params=UNIVERSES)
def universe(request):
    return request.param


class TestRoundTrip:
    def test_builtin_round_trips(self, universe, tmp_path):
        original = Workspace.builtin(universe)
        path = str(tmp_path / "{}.pack".format(universe))
        header = build_pack(original, path)
        assert header["meta"]["fingerprint"] == original.ts.fingerprint()

        loaded = load_pack(path)
        assert loaded.name == original.name
        assert loaded.ts.fingerprint() == original.ts.fingerprint()
        assert battery_top10(loaded, universe) == \
            battery_top10(original, universe)
        assert stats_sans_version(loaded) == stats_sans_version(original)

    def test_loaded_indexes_do_not_rebuild(self, tmp_path):
        path = str(tmp_path / "paint.pack")
        build_pack(Workspace.builtin("paint"), path)
        loaded = load_pack(path)
        battery_top10(loaded, "paint")
        assert loaded.engine.index.rebuilds == 0
        assert loaded.engine.reachability.rebuilds == 0
        # the restored graph must satisfy the engine's version memo
        graph = loaded.engine.dependency_graph()
        assert graph is loaded.engine._dep_graph

    @pytest.mark.parametrize("plan", FUZZ_PLANS,
                             ids=lambda plan: "+".join(f for f, _ in plan))
    def test_transformed_round_trips(self, plan, tmp_path):
        from repro.fuzz.transforms import apply_transforms

        doc = dump_type_system(Workspace.builtin("geometry").ts)
        doc, _mapping = apply_transforms(doc, plan)
        ts = load_type_system(doc)
        original = Workspace(ts, name="variant")
        path = str(tmp_path / "variant.pack")
        build_pack(original, path)
        loaded = load_pack(path)
        assert loaded.ts.fingerprint() == original.ts.fingerprint()
        assert stats_sans_version(loaded) == stats_sans_version(original)

        # golden top-10 over the transformed universe: the hole query
        # plus a two-local scope over deterministically-chosen types
        candidates = sorted(
            (t for t in original.ts.all_types() if t.methods or t.fields),
            key=lambda t: t.full_name,
        )[:2]

        def top10(workspace):
            from repro.ide.session import CompletionSession

            session = CompletionSession(workspace)
            for index, typedef in enumerate(candidates):
                session.declare("v{}".format(index), typedef.full_name)
            queries = ["?", "?({v0, v1})", "v0.?m"]
            return {
                q: [s.text for s in session.complete(q).suggestions]
                for q in queries
            }

        assert top10(loaded) == top10(original)

    def test_pack_of_loaded_workspace_is_identical(self, tmp_path):
        first = str(tmp_path / "a.pack")
        second = str(tmp_path / "b.pack")
        build_pack(Workspace.builtin("bcl"), first)
        build_pack(load_pack(first), second)
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()


class TestIntegrity:
    @pytest.fixture()
    def pack_path(self, tmp_path):
        path = str(tmp_path / "geometry.pack")
        build_pack(Workspace.builtin("geometry"), path)
        return path

    def test_truncated_pack_is_corrupt(self, pack_path):
        with open(pack_path, "rb") as handle:
            raw = handle.read()
        with open(pack_path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(PackCorruptError) as excinfo:
            load_pack(pack_path)
        assert excinfo.value.code == "pack_corrupt"

    def test_bit_flip_is_corrupt(self, pack_path):
        with open(pack_path, "rb") as handle:
            raw = bytearray(handle.read())
        raw[-10] ^= 0x01
        with open(pack_path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises(PackCorruptError):
            load_pack(pack_path)

    def test_missing_body_line_is_corrupt(self, pack_path):
        header = open(pack_path, "rb").readline()
        with open(pack_path, "wb") as handle:
            handle.write(header.rstrip(b"\n"))
        with pytest.raises(PackCorruptError):
            verify_pack(pack_path)

    def test_non_pack_file_is_corrupt(self, tmp_path):
        path = str(tmp_path / "not_a_pack.json")
        with open(path, "w") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(PackCorruptError):
            inspect_pack(path)

    def test_tampered_universe_with_fixed_checksum_is_stale(self, pack_path):
        # re-sign a swapped body: checksum verifies, but the universe no
        # longer hashes to the fingerprint the header records
        with open(pack_path, "rb") as handle:
            raw = handle.read()
        header_bytes, _, body_bytes = raw.partition(b"\n")
        header = json.loads(header_bytes)
        body = json.loads(body_bytes)
        body["universe"] = dump_type_system(Workspace.builtin("bcl").ts)
        new_body = json.dumps(
            body, separators=(",", ":"), sort_keys=True).encode("utf-8")
        header["checksum"] = hashlib.sha256(new_body).hexdigest()
        with open(pack_path, "wb") as handle:
            handle.write(json.dumps(header).encode("utf-8"))
            handle.write(b"\n")
            handle.write(new_body)
        with pytest.raises(PackStaleError) as excinfo:
            load_pack(pack_path)
        assert excinfo.value.code == "pack_stale"
        assert excinfo.value.actual != excinfo.value.expected

    def test_expect_fingerprint_mismatch_is_stale(self, pack_path):
        with pytest.raises(PackStaleError) as excinfo:
            load_pack(pack_path, expect_fingerprint="0" * 64)
        assert excinfo.value.expected == "0" * 64
        # and the matching pin succeeds
        fingerprint = inspect_pack(pack_path)["meta"]["fingerprint"]
        workspace = load_pack(pack_path, expect_fingerprint=fingerprint)
        assert workspace.ts.fingerprint() == fingerprint

    def test_verify_pack_accepts_good_artifact(self, pack_path):
        header = verify_pack(pack_path)
        assert header["meta"]["name"] == "geometry"


class TestErrorTable:
    def test_pack_codes_registered_once(self):
        assert ERROR_TABLE["pack_corrupt"] == (422, 2)
        assert ERROR_TABLE["pack_stale"] == (409, 2)
        assert http_status_for("pack_stale") == 409
        assert exit_code_for("pack_corrupt") == 2

    def test_protocol_alias_is_the_canonical_table(self):
        from repro.serve import protocol

        assert protocol.ERROR_CODES is ERROR_TABLE
        # serve error codes still resolve through the shared table
        assert protocol.http_status(protocol.SHED) == 429
        assert protocol.error_body("pack_stale", "x")["status"] == 409

    def test_pack_errors_carry_stable_codes(self):
        assert issubclass(PackCorruptError, PackError)
        assert issubclass(PackStaleError, PackError)
        assert PackCorruptError.code == "pack_corrupt"
        assert PackStaleError.code == "pack_stale"


class TestOpenWorkspace:
    def test_builtin_key(self):
        workspace = open_workspace("paint")
        assert workspace.name == "paintdotnet"

    def test_type_system_instance(self):
        ts = Workspace.builtin("bcl").ts
        workspace = open_workspace(ts)
        assert workspace.ts is ts

    def test_universe_document_path(self, tmp_path):
        path = str(tmp_path / "geo_universe.json")
        ts = Workspace.builtin("geometry").ts
        with open(path, "w") as handle:
            json.dump(dump_type_system(ts), handle)
        workspace = open_workspace(path)
        assert workspace.ts.fingerprint() == ts.fingerprint()
        assert workspace.name == "geo_universe"

    def test_project_document_path(self, tmp_path):
        from repro.corpus import SynthesisSpec, synthesize_project
        from repro.serialize import save_project

        project = synthesize_project(SynthesisSpec(
            name="packproj", seed=99, namespace_root="Pack",
            nouns=["Alpha", "Beta"], num_classes=4))
        path = str(tmp_path / "project.json")
        save_project(project, path)
        workspace = open_workspace(path)
        assert workspace.project is not None
        assert workspace.name == "packproj"

    def test_pack_path(self, tmp_path):
        path = str(tmp_path / "paint.pack")
        build_pack("paint", path)
        workspace = open_workspace(path)
        assert workspace.name == "paintdotnet"

    def test_expect_fingerprint_applies_to_every_source(self):
        with pytest.raises(PackStaleError):
            open_workspace("paint", expect_fingerprint="f" * 64)

    def test_unknown_key_lists_builtins(self):
        with pytest.raises(ValueError, match="paint"):
            open_workspace("no-such-universe")

    def test_unrecognised_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            handle.write('{"format": "mystery"}')
        with pytest.raises(ValueError, match="not a recognised artifact"):
            open_workspace(path)

    def test_no_source_is_a_type_error(self):
        with pytest.raises(TypeError):
            open_workspace()

    def test_universe_keyword_warns_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            workspace = open_workspace(universe="geometry")
        assert workspace.name == "geometry"
        assert any("open_workspace(universe=...)" in str(w.message)
                   for w in caught)

    def test_deprecated_classmethods_warn_and_still_work(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            workspace = Workspace.paintdotnet()
        assert workspace.name == "paintdotnet"
        assert any("Workspace.paintdotnet()" in str(w.message)
                   for w in caught)

    def test_builtin_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Workspace.builtin("paint")
            open_workspace("geometry")


class TestCli:
    def run(self, *argv):
        from repro.__main__ import main

        lines = []
        code = main(list(argv), write=lines.append)
        return code, "\n".join(lines)

    def test_build_inspect_verify_load(self, tmp_path):
        path = str(tmp_path / "bcl.pack")
        code, out = self.run("pack", "build", "bcl", "-o", path)
        assert code == 0 and "fingerprint" in out
        code, out = self.run("pack", "inspect", path)
        assert code == 0 and "mini-bcl" in out
        code, out = self.run("pack", "inspect", path, "--json")
        assert code == 0
        assert json.loads(out)["format"] == "repro-pack"
        code, out = self.run("pack", "verify", path)
        assert code == 0 and out.startswith("ok:")
        code, out = self.run("pack", "load", path)
        assert code == 0 and "mini-bcl" in out

    def test_corrupt_pack_exits_with_table_code(self, tmp_path):
        path = str(tmp_path / "geometry.pack")
        build_pack("geometry", path)
        with open(path, "ab") as handle:
            handle.write(b"garbage")
        code, out = self.run("pack", "verify", path)
        assert code == exit_code_for("pack_corrupt")
        assert "[pack_corrupt]" in out

    def test_stale_expectation_exits_with_table_code(self, tmp_path):
        path = str(tmp_path / "geometry.pack")
        build_pack("geometry", path)
        code, out = self.run(
            "pack", "verify", path, "--expect-fingerprint", "0" * 64)
        assert code == exit_code_for("pack_stale")
        assert "[pack_stale]" in out

    def test_build_unknown_source_is_usage_error(self, tmp_path):
        code, out = self.run("pack", "build", "nope",
                             "-o", str(tmp_path / "x.pack"))
        assert code == 2 and "error" in out

    def test_missing_file_is_usage_error(self):
        code, out = self.run("pack", "inspect", "/no/such/file.pack")
        assert code == exit_code_for("pack_corrupt")


class TestServeFromPack:
    def test_pool_mounts_pack_workspace(self, tmp_path):
        from repro.serve import EnginePool

        path = str(tmp_path / "paint.pack")
        build_pack("paint", path)
        pool = EnginePool(())
        pool.add_workspace("paintdotnet", load_pack(path))
        tenant = pool.get("paintdotnet")
        assert tenant.workspace.ts.fingerprint() == \
            Workspace.builtin("paint").ts.fingerprint()

    def test_serve_packs_end_to_end(self, tmp_path):
        from repro.api import serve
        from repro.serve import ServeClient

        path = str(tmp_path / "paint.pack")
        build_pack("paint", path)
        handle = serve(universes=("bcl",), port=0, packs=[path])
        try:
            with ServeClient(handle.url) as client:
                status, body = client.complete(
                    "paintdotnet", "?({img})",
                    locals={"img": "PaintDotNet.Document"})
                assert status == 200, body
                assert body["suggestions"]
        finally:
            handle.stop()

    def test_coldstart_bench_section_shape(self, tmp_path):
        from repro.eval.bench import _coldstart_workloads

        workloads, summary = _coldstart_workloads([30], 2)
        [entry] = workloads
        assert entry["name"] == "coldstart/30"
        assert {"p50_ms", "p95_ms", "steps"} <= set(entry)
        [cold] = summary
        assert cold["identical_top10"] is True
        assert cold["speedup"] > 0
        assert cold["pack_bytes"] > 0
