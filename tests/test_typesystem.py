"""Unit tests for the type system: registration, subtyping, type distance."""

import pytest
from hypothesis import given, strategies as st

from repro import TypeDef, TypeKind, TypeSystem
from repro.codemodel import Field, LibraryBuilder, Method


@pytest.fixture
def ts():
    return TypeSystem()


@pytest.fixture
def hierarchy(ts):
    """Object <- Shape <- Rectangle; IDrawable implemented by Shape."""
    lib = LibraryBuilder(ts)
    drawable = lib.iface("Geo.IDrawable")
    shape = lib.cls("Geo.Shape", interfaces=[drawable])
    rectangle = lib.cls("Geo.Rectangle", base=shape)
    return drawable, shape, rectangle


class TestRegistry:
    def test_core_types_installed(self, ts):
        assert ts.object_type.full_name == "System.Object"
        assert ts.string_type.full_name == "System.String"
        assert ts.primitive("int").name == "int"

    def test_register_and_get(self, ts):
        t = ts.register(TypeDef("Foo", "My.Ns"))
        assert ts.get("My.Ns.Foo") is t
        assert ts.try_get("My.Ns.Foo") is t
        assert ts.try_get("My.Ns.Bar") is None

    def test_duplicate_registration_rejected(self, ts):
        ts.register(TypeDef("Foo", "My.Ns"))
        with pytest.raises(ValueError):
            ts.register(TypeDef("Foo", "My.Ns"))

    def test_all_methods_iterates_declared_methods(self, ts):
        t = ts.register(TypeDef("Foo", "N"))
        t.add_method(Method("M", None))
        assert any(m.name == "M" for m in ts.all_methods())


class TestSubtyping:
    def test_identity(self, ts):
        assert ts.implicitly_converts(ts.string_type, ts.string_type)

    def test_everything_converts_to_object(self, ts, hierarchy):
        drawable, shape, rectangle = hierarchy
        for t in (drawable, shape, rectangle, ts.string_type):
            assert ts.implicitly_converts(t, ts.object_type)

    def test_subclass_chain(self, ts, hierarchy):
        _drawable, shape, rectangle = hierarchy
        assert ts.implicitly_converts(rectangle, shape)
        assert not ts.implicitly_converts(shape, rectangle)

    def test_interface_implementation(self, ts, hierarchy):
        drawable, shape, rectangle = hierarchy
        assert ts.implicitly_converts(shape, drawable)
        assert ts.implicitly_converts(rectangle, drawable)
        assert not ts.implicitly_converts(drawable, shape)

    def test_primitive_widening(self, ts):
        assert ts.implicitly_converts(ts.primitive("int"), ts.primitive("long"))
        assert ts.implicitly_converts(ts.primitive("int"), ts.primitive("double"))
        assert not ts.implicitly_converts(
            ts.primitive("long"), ts.primitive("int")
        )
        assert not ts.implicitly_converts(
            ts.primitive("double"), ts.primitive("float")
        )

    def test_bool_is_isolated(self, ts):
        assert not ts.implicitly_converts(ts.primitive("bool"), ts.primitive("int"))
        assert not ts.implicitly_converts(ts.primitive("int"), ts.primitive("bool"))


class TestTypeDistance:
    def test_zero_iff_same(self, ts, hierarchy):
        _d, shape, rectangle = hierarchy
        assert ts.type_distance(shape, shape) == 0
        assert ts.type_distance(rectangle, rectangle) == 0
        assert ts.type_distance(rectangle, shape) != 0

    def test_paper_example(self, ts, hierarchy):
        """td(Rectangle, Shape) = 1 and td(Rectangle, Object) = 2."""
        _d, shape, rectangle = hierarchy
        assert ts.type_distance(rectangle, shape) == 1
        assert ts.type_distance(rectangle, ts.object_type) == 2

    def test_undefined_when_no_conversion(self, ts, hierarchy):
        _d, shape, rectangle = hierarchy
        assert ts.type_distance(shape, rectangle) is None
        assert ts.type_distance(ts.string_type, shape) is None

    def test_primitive_distance_is_widening_path(self, ts):
        assert ts.type_distance(ts.primitive("int"), ts.primitive("long")) == 1
        assert ts.type_distance(ts.primitive("int"), ts.primitive("double")) == 2
        assert ts.type_distance(ts.primitive("byte"), ts.primitive("int")) == 2

    def test_interface_distance(self, ts, hierarchy):
        drawable, shape, rectangle = hierarchy
        assert ts.type_distance(shape, drawable) == 1
        assert ts.type_distance(rectangle, drawable) == 2

    @given(st.sampled_from(["byte", "char", "short", "int", "long",
                            "float", "double", "decimal", "bool"]))
    def test_distance_reflexive_for_primitives(self, name):
        ts = TypeSystem()
        t = ts.primitive(name)
        assert ts.type_distance(t, t) == 0

    def test_triangle_inequality_along_chain(self, ts, hierarchy):
        """td is a shortest path, so going through an intermediate type is
        never shorter than the direct distance."""
        _d, shape, rectangle = hierarchy
        direct = ts.type_distance(rectangle, ts.object_type)
        via = ts.type_distance(rectangle, shape) + ts.type_distance(
            shape, ts.object_type
        )
        assert direct <= via


class TestJoinAndComparability:
    def test_join_of_related(self, ts, hierarchy):
        _d, shape, rectangle = hierarchy
        assert ts.join(rectangle, shape) is shape
        assert ts.join(shape, rectangle) is shape

    def test_join_of_siblings_is_common_base(self, ts, hierarchy):
        _d, shape, _rect = hierarchy
        lib = LibraryBuilder(ts)
        circle = lib.cls("Geo.Circle", base=shape)
        square = lib.cls("Geo.Square", base=shape)
        assert ts.join(circle, square) is shape

    def test_numeric_primitives_comparable(self, ts):
        assert ts.comparable(ts.primitive("int"), ts.primitive("double"))
        assert ts.comparable(ts.primitive("long"), ts.primitive("int"))

    def test_bool_not_comparable(self, ts):
        assert not ts.comparable(ts.primitive("bool"), ts.primitive("bool"))

    def test_reference_types_need_flag(self, ts, hierarchy):
        _d, shape, rectangle = hierarchy
        assert not ts.comparable(shape, rectangle)

    def test_comparable_flagged_types(self, ts):
        lib = LibraryBuilder(ts)
        datetime = lib.struct("Sys.DateTime", comparable=True)
        timespan = lib.struct("Sys.TimeSpan", comparable=True)
        assert ts.comparable(datetime, datetime)
        # unrelated comparable types still do not compare with each other
        assert not ts.comparable(datetime, timespan)

    def test_comparison_distance(self, ts):
        int_t, double_t = ts.primitive("int"), ts.primitive("double")
        assert ts.comparison_distance(int_t, int_t) == 0
        assert ts.comparison_distance(int_t, double_t) == 2
        assert ts.comparison_distance(ts.primitive("bool"), int_t) is None


class TestPathologicalHierarchies:
    def test_inheritance_cycle_does_not_hang(self, ts):
        """A (malformed) base-class cycle must not loop the BFS walks."""
        a = ts.register(TypeDef("A", "Cyc"))
        b = ts.register(TypeDef("B", "Cyc", base=a))
        a.base = b  # deliberately corrupt
        ts._invalidate_caches()
        assert ts.type_distance(a, ts.string_type) is None
        assert ts.supertype_closure(a)  # terminates
        assert ts.implicitly_converts(a, b)

    def test_self_interface_terminates(self, ts):
        iface = ts.register(TypeDef("ISelf", "Cyc2", kind=TypeKind.INTERFACE))
        iface.interfaces = (iface,)
        ts._invalidate_caches()
        assert iface in ts.supertype_closure(iface)

    def test_deep_chain(self, ts):
        previous = None
        for index in range(60):
            previous = ts.register(
                TypeDef("D{}".format(index), "Deep", base=previous)
            )
        root = ts.get("Deep.D0")
        assert ts.type_distance(previous, root) == 59


class TestMemberLookup:
    def test_inherited_lookups(self, ts, hierarchy):
        _d, shape, rectangle = hierarchy
        shape.add_field(Field("Origin", ts.string_type))
        rectangle.add_field(Field("Corner", ts.string_type))
        names = [f.name for f in ts.instance_lookups(rectangle)]
        assert "Corner" in names and "Origin" in names

    def test_shadowing_prefers_derived(self, ts, hierarchy):
        _d, shape, rectangle = hierarchy
        shape.add_field(Field("X", ts.primitive("int")))
        rectangle.add_field(Field("X", ts.primitive("double")))
        fields = [f for f in ts.instance_lookups(rectangle) if f.name == "X"]
        assert len(fields) == 1
        assert fields[0].declaring_type is rectangle

    def test_instance_methods_inherited(self, ts, hierarchy):
        _d, shape, rectangle = hierarchy
        shape.add_method(Method("Draw", None))
        names = [m.name for m in ts.instance_methods(rectangle)]
        assert "Draw" in names

    def test_zero_arg_instance_methods(self, ts, hierarchy):
        from repro.codemodel import Parameter

        _d, shape, rectangle = hierarchy
        shape.add_method(Method("Area", ts.primitive("double")))
        shape.add_method(
            Method("Scale", None, params=(Parameter("f", ts.primitive("double")),))
        )
        names = [m.name for m in ts.zero_arg_instance_methods(rectangle)]
        assert "Area" in names
        assert "Scale" not in names

    def test_static_members_split(self, ts):
        lib = LibraryBuilder(ts)
        helper = lib.cls("N.Helper")
        lib.field(helper, "Default", ts.string_type, static=True)
        lib.static_method(helper, "Make", returns=ts.string_type)
        lib.method(helper, "Use")
        fields, methods = ts.static_members(helper)
        assert [f.name for f in fields] == ["Default"]
        assert [m.name for m in methods] == ["Make"]


class TestCacheInvalidation:
    """Mutating the model after queries must never serve stale answers."""

    def test_method_added_after_query_is_visible(self, ts):
        t = ts.register(TypeDef("Late", "N"))
        assert [m.name for m in ts.instance_methods(t)] == []
        t.add_method(Method("M", None))
        assert [m.name for m in ts.instance_methods(t)] == ["M"]

    def test_rebasing_updates_distance_and_supertypes(self, ts):
        a = ts.register(TypeDef("A", "N"))
        b = ts.register(TypeDef("B", "N"))
        assert ts.type_distance(a, b) is None
        a.base = b
        assert ts.type_distance(a, b) == 1
        assert b in ts.immediate_supertypes(a)
        assert ts.implicitly_converts(a, b)

    def test_interface_added_after_query_is_visible(self, ts):
        lib = LibraryBuilder(ts)
        iface = lib.iface("N.ICover")
        t = lib.cls("N.Thing")
        assert not ts.implicitly_converts(t, iface)
        t.interfaces = (iface,)
        assert ts.implicitly_converts(t, iface)

    def test_version_counts_mutations(self, ts):
        before = ts.version
        t = ts.register(TypeDef("C", "N"))
        assert ts.version > before
        mid = ts.version
        t.add_field(Field("F", ts.string_type))
        assert ts.version > mid

    def test_registration_after_query_is_visible(self, ts):
        lib = LibraryBuilder(ts)
        base = lib.cls("N.Base")
        assert ts.type_distance(base, ts.object_type) == 1
        derived = lib.cls("N.Derived", base=base)
        assert ts.type_distance(derived, base) == 1

    def test_method_index_refreshes_after_mutation(self, ts):
        from repro.codemodel import Parameter
        from repro.engine.index import MethodIndex

        lib = LibraryBuilder(ts)
        box = lib.cls("N.Box")
        index = MethodIndex(ts)
        assert index.methods_with_exact_param(box) == []
        user = lib.cls("N.User")
        user.add_method(
            Method("Put", None, params=(Parameter("b", box),))
        )
        assert [m.name for m in index.methods_with_exact_param(box)] == ["Put"]
        assert any(m.name == "Put" for m in index.candidate_methods([box]))

    def test_reachability_index_refreshes_after_mutation(self, ts):
        from repro.engine.index import ReachabilityIndex

        lib = LibraryBuilder(ts)
        start = lib.cls("N.Start")
        goal = lib.cls("N.Goal")
        index = ReachabilityIndex(ts)
        assert not index.can_reach(start, goal, within=2, allow_methods=True)
        start.add_field(Field("Next", goal))
        assert index.can_reach(start, goal, within=2, allow_methods=True)
        assert index.steps_to_target(start, goal, allow_methods=True) == 1
