"""Tests for universe exploration and the related REPL/CLI surfaces."""

import json

import pytest

from repro import TypeSystem
from repro.__main__ import main as cli_main
from repro.codemodel import LibraryBuilder
from repro.codemodel.explorer import namespace_tree, subtype_tree, type_tree
from repro.ide import Workspace, run_repl


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    shape = lib.cls("Geo.Shape")
    lib.prop(shape, "Area", ts.primitive("double"))
    lib.method(shape, "Draw")
    rect = lib.cls("Geo.Rect", base=shape)
    lib.prop(rect, "W", ts.primitive("int"))
    lib.field(rect, "Unit", rect, static=True)
    lib.cls("Geo.Inner.Circle", base=shape)
    return ts, shape, rect


class TestNamespaceTree:
    def test_lists_namespaces_and_types(self, world):
        ts, *_ = world
        text = namespace_tree(ts)
        assert "Geo" in text
        assert "Geo.Inner" in text
        assert "class Rect" in text

    def test_prefix_filter(self, world):
        ts, *_ = world
        text = namespace_tree(ts, root="Geo.Inner")
        assert "Circle" in text
        assert "Rect" not in text

    def test_prefix_is_namespace_boundary(self, world):
        ts, *_ = world
        text = namespace_tree(ts, root="Geo.In")
        assert "Circle" not in text  # Geo.Inner is not under "Geo.In"


class TestTypeTree:
    def test_members_and_inheritance(self, world):
        ts, shape, rect = world
        text = type_tree(ts, rect)
        assert text.startswith("class Geo.Rect : Geo.Shape")
        assert "W : int" in text
        assert "Area : double" in text and "(from Geo.Shape)" in text
        assert "Draw() : void" in text
        assert "static Unit : Geo.Rect" in text


class TestSubtypeTree:
    def test_recursive_children(self, world):
        ts, shape, rect = world
        text = subtype_tree(ts, shape)
        lines = text.splitlines()
        assert lines[0] == "Geo.Shape"
        assert any(line.strip() == "Geo.Inner.Circle" for line in lines)
        assert any(line.strip() == "Geo.Rect" for line in lines)


class TestReplBrowsing:
    def drive(self, lines):
        output = []
        run_repl(Workspace.builtin("paint"), lines, output.append)
        return "\n".join(output)

    def test_types_command(self):
        out = self.drive([":types PaintDotNet"])
        assert "class Document" in out

    def test_tree_command(self):
        out = self.drive([":tree PaintDotNet.BitmapLayer"])
        assert "class PaintDotNet.BitmapLayer : PaintDotNet.Layer" in out
        assert "Surface" in out


class TestCliTools:
    def test_dump_universe(self, tmp_path):
        target = tmp_path / "paint.json"
        output = []
        code = cli_main(
            ["dump-universe", "--universe", "paint", "-o", str(target)],
            write=output.append,
        )
        assert code == 0
        data = json.loads(target.read_text())
        assert data["format"] == "repro-universe"
        assert any(
            t["full_name"] == "PaintDotNet.Document" for t in data["types"]
        )
