"""Tests for the corpus: program model, synthesis, the seven projects."""

import pytest

from repro import Context, TypeSystem
from repro.corpus import (
    AssignStatement,
    ExprStatement,
    IfStatement,
    LocalDecl,
    MethodImpl,
    Project,
    ReturnStatement,
    SynthesisSpec,
    classify_expr,
    synthesize_project,
)
from repro.corpus.projects import PROJECT_BUILDERS, build_all_projects
from repro.lang import (
    Assign,
    Call,
    Compare,
    FieldAccess,
    Literal,
    TypeLiteral,
    Var,
    well_typed,
)
from tests.conftest import TINY_SPEC


class TestProgramModel:
    def test_impl_all_locals_include_params(self, tiny_project):
        impl = tiny_project.impls[0]
        scope = impl.all_locals()
        for param in impl.method.params:
            assert scope[param.name] is param.type

    def test_impl_context_has_this_for_instance(self, tiny_project):
        for impl in tiny_project.impls:
            ctx = impl.context(tiny_project.ts)
            if impl.method.is_static:
                assert not ctx.has_local("this")
            else:
                assert ctx.has_local("this")

    def test_iter_sites_covers_statement_kinds(self, tiny_project):
        kinds = {type(expr).__name__ for _i, _n, expr in tiny_project.iter_sites()}
        assert "Call" in kinds
        assert "Assign" in kinds
        assert "Compare" in kinds

    def test_site_indexes_are_statement_positions(self, tiny_project):
        for impl, index, _expr in tiny_project.iter_sites():
            assert 0 <= index < len(impl.body)


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_project(TINY_SPEC)
        b = synthesize_project(TINY_SPEC)
        a_calls = [(i.method.full_name, repr(c)) for i, _n, c in a.iter_calls()]
        b_calls = [(i.method.full_name, repr(c)) for i, _n, c in b.iter_calls()]
        assert a_calls == b_calls

    def test_every_expression_well_typed(self, tiny_project):
        for _impl, _index, expr in tiny_project.iter_sites():
            assert well_typed(expr, tiny_project.ts)

    def test_locals_resolve_in_context(self, tiny_project):
        """Every Var in every site expression is a live local."""
        from repro.lang import iter_subtree

        for impl, _index, expr in tiny_project.iter_sites():
            ctx = impl.context(tiny_project.ts)
            for node in iter_subtree(expr):
                if isinstance(node, Var):
                    assert ctx.has_local(node.name), node.name

    def test_different_seed_differs(self):
        from dataclasses import replace

        other = synthesize_project(replace(TINY_SPEC, seed=100))
        base = synthesize_project(TINY_SPEC)
        a = [c.method.full_name for _i, _n, c in base.iter_calls()]
        b = [c.method.full_name for _i, _n, c in other.iter_calls()]
        assert a != b

    def test_argument_kind_mix_is_local_dominant(self, tiny_project):
        from collections import Counter

        kinds = Counter()
        for _impl, _index, call in tiny_project.iter_calls():
            for arg in call.args:
                kinds[classify_expr(arg)] += 1
        assert kinds["local"] >= kinds["deep_chain"]

    def test_comparisons_are_comparable(self, tiny_project):
        for _impl, _index, cmp in tiny_project.iter_comparisons():
            assert tiny_project.ts.comparable(cmp.lhs.type, cmp.rhs.type)


class TestClassifyExpr:
    @pytest.fixture
    def ts(self):
        return TypeSystem()

    def test_buckets(self, ts, paint):
        pts = paint.ts
        doc = paint.document
        this = Var("this", doc)
        local = Var("x", doc)
        size_prop = next(p for p in doc.properties if p.name == "Size")
        assert classify_expr(local) == "local"
        assert classify_expr(FieldAccess(this, size_prop)) == "this_field"
        assert classify_expr(FieldAccess(local, size_prop)) == "local_field"
        assert classify_expr(Literal(1, pts.primitive("int"))) == "literal"
        deep = FieldAccess(FieldAccess(local, size_prop), size_prop) \
            if False else FieldAccess(
                FieldAccess(local, size_prop),
                next(p for p in paint.size.properties if p.name == "Width"),
            )
        assert classify_expr(deep) == "deep_chain"


class TestSevenProjects:
    def test_all_seven_build(self):
        projects = build_all_projects()
        assert [p.name for p in projects] == list(PROJECT_BUILDERS)

    def test_wix_is_largest(self):
        projects = {p.name: p for p in build_all_projects()}
        wix_calls = len(list(projects["WiX"].iter_calls()))
        for name, project in projects.items():
            if name != "WiX":
                assert wix_calls > len(list(project.iter_calls()))

    def test_projects_are_isolated_universes(self):
        projects = build_all_projects()
        assert projects[0].ts is not projects[1].ts

    def test_familyshow_contains_paper_example(self):
        projects = {p.name: p for p in build_all_projects()}
        fs = projects["Family.Show"]
        impl = next(
            i for i in fs.impls if i.method.name == "GetDataFilePath"
        )
        assert len(impl.body) == 4
        for stmt in impl.body:
            for expr in stmt.expressions():
                assert well_typed(expr, fs.ts)

    def test_scale_parameter_shrinks(self):
        small = PROJECT_BUILDERS["GNOME Do"](0.5)
        full = PROJECT_BUILDERS["GNOME Do"](1.0)
        assert len(small.impls) <= len(full.impls)
