"""Tests for Lackwit-style abstract type inference (Sec. 4.1)."""

import pytest

from repro import Context, TypeSystem
from repro.analysis import AbstractTypeAnalysis
from repro.codemodel import LibraryBuilder, Method
from repro.corpus import (
    AssignStatement,
    ExprStatement,
    MethodImpl,
    Project,
    ReturnStatement,
)
from repro.corpus.frameworks import build_system_core
from repro.corpus.projects import build_familyshow_project
from repro.lang import Assign, Call, FieldAccess, TypeLiteral, Var


@pytest.fixture
def world():
    """A tiny project with a path-flavoured API, like the paper's example."""
    ts = TypeSystem()
    core = build_system_core(ts)
    project = Project("T", ts)
    return ts, core, project


def _string_impl(ts, name="M"):
    lib = LibraryBuilder(ts)
    host = ts.try_get("T.Host")
    if host is None:
        host = lib.cls("T.Host")
    method = Method(name, ts.string_type, params=(), is_static=True)
    host.add_method(method)
    return MethodImpl(method, locals={})


class TestPaperExample:
    """The Family.Show appLocation example, end to end."""

    @pytest.fixture(scope="class")
    def familyshow(self):
        return build_familyshow_project()

    @pytest.fixture(scope="class")
    def analysis(self, familyshow):
        return AbstractTypeAnalysis(familyshow)

    @pytest.fixture(scope="class")
    def impl(self, familyshow):
        return next(
            i for i in familyshow.impls
            if i.method.name == "GetDataFilePath"
        )

    def test_applocation_joins_directory_args(self, familyshow, analysis, impl):
        """Directory.Exists / CreateDirectory / Path.Combine share their
        first argument's abstract type with appLocation."""
        ts = familyshow.ts
        app_location = Var("appLocation", ts.string_type)
        directory = ts.get("System.IO.Directory")
        exists = directory.declared_methods_named("Exists")[0]
        root = analysis.abstype_of_expr(impl, app_location)
        assert root is not None
        assert root == analysis.abstype_of_param(exists, 0)

    def test_combine_return_is_path_like(self, familyshow, analysis, impl):
        ts = familyshow.ts
        path = ts.get("System.IO.Path")
        combine = path.declared_methods_named("Combine")[0]
        app_location = Var("appLocation", ts.string_type)
        assert analysis.uf.same(
            analysis.return_key(combine),
            analysis.term_of_expr(impl, app_location),
        )

    def test_file_name_is_a_different_abstract_type(self, familyshow, analysis, impl):
        """App.ApplicationFolderName is NOT the same abstract type as
        appLocation (it is a folder *name*, not a path)."""
        ts = familyshow.ts
        app = ts.get("FamilyShow.App")
        folder_name = next(
            f for f in app.fields if f.name == "ApplicationFolderName"
        )
        app_location = Var("appLocation", ts.string_type)
        left = analysis.uf.find(("field", id(folder_name)))
        right = analysis.abstype_of_expr(impl, app_location)
        assert left is not None and right is not None
        assert left != right


class TestMechanics:
    def test_assignment_unifies(self, world):
        ts, _core, project = world
        impl = _string_impl(ts)
        impl.locals = {"a": ts.string_type, "b": ts.string_type}
        impl.body.append(
            AssignStatement(
                Assign(Var("a", ts.string_type), Var("b", ts.string_type))
            )
        )
        project.add_impl(impl)
        analysis = AbstractTypeAnalysis(project)
        assert analysis.uf.same(
            analysis.local_key(impl, "a"), analysis.local_key(impl, "b")
        )

    def test_argument_passing_unifies_with_param(self, world):
        ts, _core, project = world
        impl = _string_impl(ts)
        impl.locals = {"p": ts.string_type}
        path = ts.get("System.IO.Path")
        get_file_name = path.declared_methods_named("GetFileName")[0]
        impl.body.append(
            ExprStatement(Call(get_file_name, (Var("p", ts.string_type),)))
        )
        project.add_impl(impl)
        analysis = AbstractTypeAnalysis(project)
        assert analysis.uf.same(
            analysis.local_key(impl, "p"),
            analysis.param_key(get_file_name, 0),
        )

    def test_return_unifies_with_return_slot(self, world):
        ts, _core, project = world
        impl = _string_impl(ts)
        impl.locals = {"p": ts.string_type}
        impl.body.append(ReturnStatement(Var("p", ts.string_type)))
        project.add_impl(impl)
        analysis = AbstractTypeAnalysis(project)
        assert analysis.uf.same(
            analysis.local_key(impl, "p"),
            analysis.return_key(impl.method),
        )

    def test_object_methods_split_per_receiver_type(self, world):
        """Calling .ToString() on two unrelated types must NOT merge their
        abstract types."""
        ts, core, project = world
        obj_to_string = next(
            m for m in ts.object_type.methods if m.name == "ToString"
        )
        impl = _string_impl(ts)
        impl.locals = {"d": core.datetime, "t": core.timespan}
        impl.body.append(
            ExprStatement(Call(obj_to_string, (Var("d", core.datetime),)))
        )
        impl.body.append(
            ExprStatement(Call(obj_to_string, (Var("t", core.timespan),)))
        )
        project.add_impl(impl)
        analysis = AbstractTypeAnalysis(project)
        assert not analysis.uf.same(
            analysis.local_key(impl, "d"), analysis.local_key(impl, "t")
        )

    def test_overrides_share_slots(self, world):
        ts, _core, project = world
        lib = LibraryBuilder(ts)
        base = lib.cls("T.Base")
        derived = lib.cls("T.Derived", base=base)
        virtual = lib.method(base, "Render", params=[("x", ts.string_type)])
        override = lib.method(
            derived, "Render", params=[("x", ts.string_type)], overrides=virtual
        )
        analysis = AbstractTypeAnalysis(project)
        assert analysis.param_key(override, 1, derived) == analysis.param_key(
            virtual, 1, base
        )

    def test_exclusion_hides_later_constraints(self, world):
        ts, _core, project = world
        impl = _string_impl(ts)
        impl.locals = {"a": ts.string_type, "b": ts.string_type}
        stmt = AssignStatement(
            Assign(Var("a", ts.string_type), Var("b", ts.string_type))
        )
        impl.body.append(stmt)
        project.add_impl(impl)
        full = AbstractTypeAnalysis(project)
        assert full.uf.same(
            full.local_key(impl, "a"), full.local_key(impl, "b")
        )
        excluded = AbstractTypeAnalysis(project, exclude_from=(impl, 0))
        assert not excluded.uf.same(
            excluded.local_key(impl, "a"), excluded.local_key(impl, "b")
        )

    def test_incremental_extend_matches_batch(self, world):
        """Feeding impls one at a time gives the same groups as analysing
        the whole project at once."""
        ts, _core, project = world
        impls = []
        for index in range(3):
            impl = _string_impl(ts, name="M{}".format(index))
            impl.locals = {"a": ts.string_type, "b": ts.string_type}
            impl.body.append(
                AssignStatement(
                    Assign(Var("a", ts.string_type), Var("b", ts.string_type))
                )
            )
            impls.append(impl)
        for impl in impls:
            project.add_impl(impl)
        batch = AbstractTypeAnalysis(project)

        empty_project = Project("T2", ts)
        incremental = AbstractTypeAnalysis(empty_project)
        for impl in impls:
            incremental.extend(impl)

        for impl in impls:
            assert batch.uf.same(
                batch.local_key(impl, "a"), batch.local_key(impl, "b")
            )
            assert incremental.uf.same(
                incremental.local_key(impl, "a"),
                incremental.local_key(impl, "b"),
            )

    def test_extend_accepts_foreign_impl(self, world):
        ts, _core, project = world
        analysis = AbstractTypeAnalysis(project)
        impl = _string_impl(ts, name="Late")
        impl.locals = {"p": ts.string_type}
        path = ts.get("System.IO.Path")
        get_file_name = path.declared_methods_named("GetFileName")[0]
        impl.body.append(
            ExprStatement(Call(get_file_name, (Var("p", ts.string_type),)))
        )
        analysis.extend(impl)
        assert analysis.uf.same(
            analysis.local_key(impl, "p"),
            analysis.param_key(get_file_name, 0),
        )

    def test_literals_have_no_abstract_type(self, world):
        ts, _core, project = world
        impl = _string_impl(ts)
        project.add_impl(impl)
        analysis = AbstractTypeAnalysis(project)
        from repro.lang import Literal

        assert analysis.abstype_of_expr(impl, Literal("x", ts.string_type)) is None
