"""Property-based tests over randomly generated *partial* expressions.

Random queries are built against the geometry universe; for each one the
engine's completions must be derivable (Figure 6), well-typed, score-exact
and score-ordered — the oracle invariants, but over a much wider query
space than the hand-picked battery.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Context,
    CompletionEngine,
    Ranker,
    TypeSystem,
    derivable,
    to_source,
    well_typed,
)
from repro.corpus.frameworks import build_geometry
from repro.lang import (
    Hole,
    KnownCall,
    PartialCompare,
    SuffixHole,
    Unfilled,
    UnknownCall,
    Var,
)

_TS = TypeSystem()
_GEO = build_geometry(_TS)
_CTX = Context(
    _TS,
    locals={"point": _GEO.point, "shapeStyle": _GEO.shape_style,
            "seg": _GEO.line_segment},
    this_type=_GEO.ellipse_arc,
)
_ENGINE = CompletionEngine(_TS)

_LOCAL_VARS = [Var(name, typedef) for name, typedef in _CTX.locals.items()]


def _base_exprs(draw):
    return draw(st.sampled_from(_LOCAL_VARS))


@st.composite
def partial_expressions(draw):
    kind = draw(st.sampled_from(
        ["hole", "suffix", "unknown", "known", "compare"]))
    if kind == "hole":
        return Hole()
    if kind == "suffix":
        base = _base_exprs(draw)
        return SuffixHole(base, methods=draw(st.booleans()),
                          star=draw(st.booleans()))
    if kind == "unknown":
        count = draw(st.integers(1, 2))
        args = []
        for _ in range(count):
            pick = draw(st.sampled_from(["var", "hole-suffix", "ignore"]))
            if pick == "var":
                args.append(_base_exprs(draw))
            elif pick == "ignore":
                args.append(Unfilled())
            else:
                args.append(SuffixHole(_base_exprs(draw), methods=True,
                                       star=True))
        if all(isinstance(a, Unfilled) for a in args):
            args[0] = _base_exprs(draw)
        return UnknownCall(tuple(args))
    if kind == "known":
        method = _GEO.distance
        hole_position = draw(st.integers(0, 1))
        args = [
            Hole() if index == hole_position else Var("point", _GEO.point)
            for index in range(2)
        ]
        return KnownCall((method,), tuple(args))
    lhs = SuffixHole(_base_exprs(draw), methods=True, star=True)
    rhs = SuffixHole(_base_exprs(draw), methods=True,
                     star=draw(st.booleans()))
    op = draw(st.sampled_from(["<", ">=", ">"]))
    return PartialCompare(lhs, rhs, op)


@settings(max_examples=60, deadline=None)
@given(partial_expressions(), st.integers(1, 15))
def test_engine_satisfies_oracle_on_random_queries(pe, n):
    ranker = Ranker(_CTX)
    previous = None
    for completion in _ENGINE.complete(pe, _CTX, n=n):
        label = "{} -> {}".format(pe, to_source(completion.expr))
        assert well_typed(completion.expr, _TS), label
        assert derivable(pe, completion.expr, _CTX), label
        assert completion.score == ranker.score(completion.expr), label
        if previous is not None:
            assert completion.score >= previous, label
        previous = completion.score


@settings(max_examples=40, deadline=None)
@given(partial_expressions())
def test_completions_are_deterministic(pe):
    first = [(c.score, c.expr.key()) for c in _ENGINE.complete(pe, _CTX, n=12)]
    second = [(c.score, c.expr.key()) for c in _ENGINE.complete(pe, _CTX, n=12)]
    assert first == second


@settings(max_examples=40, deadline=None)
@given(partial_expressions())
def test_print_parse_preserves_query(pe):
    """Every random query prints to re-parseable concrete syntax."""
    from repro import parse

    printed = to_source(pe)
    reparsed = parse(printed, _CTX)
    assert to_source(reparsed) == printed
