"""End-to-end experiment runner tests on the tiny project."""

import pytest

from repro.eval import (
    EvalConfig,
    run_argument_prediction,
    run_assignment_prediction,
    run_comparison_prediction,
    run_method_prediction,
)


@pytest.fixture(scope="module")
def cfg():
    return EvalConfig(
        limit=40,
        max_calls_per_project=20,
        max_arguments_per_project=30,
        max_assignments_per_project=12,
        max_comparisons_per_project=8,
    )


@pytest.fixture(scope="module")
def tiny(request):
    return request.getfixturevalue("tiny_project")


@pytest.fixture(scope="module")
def method_results(tiny, cfg):
    return run_method_prediction([tiny], cfg)


class TestMethodPrediction:
    def test_only_multiarg_calls(self, method_results):
        assert all(r.arity >= 2 for r in method_results)

    def test_ranks_within_limit(self, method_results, cfg):
        for r in method_results:
            if r.best_rank is not None:
                assert 1 <= r.best_rank <= cfg.limit

    def test_single_never_beats_best(self, method_results):
        for r in method_results:
            if r.best_rank_single is not None:
                assert r.best_rank is not None
                assert r.best_rank <= r.best_rank_single

    def test_return_filter_never_hurts(self, method_results):
        """Filtering by the true return type can only improve the rank."""
        for r in method_results:
            if r.best_rank is not None and r.best_rank_return is not None:
                assert r.best_rank_return <= r.best_rank

    def test_most_calls_found(self, method_results):
        found = sum(1 for r in method_results if r.best_rank is not None)
        assert found / len(method_results) > 0.6

    def test_intellisense_present(self, method_results):
        assert all(r.intellisense is not None for r in method_results)

    def test_timings_recorded(self, method_results):
        for r in method_results:
            assert r.query_seconds
            assert all(t >= 0 for t in r.query_seconds)


class TestArgumentPrediction:
    @pytest.fixture(scope="class")
    def results(self, tiny, cfg):
        return run_argument_prediction([tiny], cfg)

    def test_unguessable_have_no_rank(self, results):
        for r in results:
            if not r.guessable:
                assert r.rank is None

    def test_kind_labels(self, results):
        valid = {"local", "this_field", "local_field", "static_field",
                 "zero_arg_call", "deep_chain", "literal"}
        assert all(r.kind in valid for r in results)

    def test_locals_mostly_found(self, results):
        locals_only = [r for r in results if r.guessable and r.is_local]
        assert locals_only
        found = sum(1 for r in locals_only if r.rank is not None)
        assert found / len(locals_only) > 0.7


class TestLookupPrediction:
    def test_assignment_variants(self, tiny, cfg):
        results = run_assignment_prediction([tiny], cfg)
        variants = {r.variant for r in results}
        assert "Target" in variants
        found = [r for r in results if r.variant == "Target" and r.rank]
        assert found

    def test_comparison_variants(self, tiny, cfg):
        results = run_comparison_prediction([tiny], cfg)
        assert {r.variant} <= {"Left", "Right", "Both", "2xLeft", "2xRight"} \
            if not results else True
        singles = [r for r in results if r.variant in ("Left", "Right")]
        assert singles
        hit = sum(1 for r in singles if r.rank is not None and r.rank <= 10)
        assert hit / len(singles) > 0.5


class TestDeterminism:
    def test_same_config_same_results(self, tiny, cfg):
        first = [
            (r.method_name, r.best_rank, r.best_rank_single)
            for r in run_method_prediction([tiny], cfg)
        ]
        second = [
            (r.method_name, r.best_rank, r.best_rank_single)
            for r in run_method_prediction([tiny], cfg)
        ]
        assert first == second


class TestScopedLocals:
    def test_scoped_mode_runs(self, tiny):
        from dataclasses import replace

        base = EvalConfig(
            limit=25, max_calls_per_project=6,
            with_return_type=False, with_intellisense=False,
        )
        scoped = replace(base, scoped_locals=True)
        full_results = run_method_prediction([tiny], base)
        scoped_results = run_method_prediction([tiny], scoped)
        assert len(full_results) == len(scoped_results)
        # scoped contexts see a subset of locals, so ranks can only be
        # equal or better-or-missing — at minimum the runs complete and
        # report the same sites
        assert [r.method_name for r in full_results] == [
            r.method_name for r in scoped_results
        ]


class TestAbstypeModes:
    def test_modes_run(self, tiny):
        for mode in ("exclude", "full", "none"):
            cfg = EvalConfig(
                limit=25,
                max_calls_per_project=5,
                with_return_type=False,
                with_intellisense=False,
                abstypes=mode,
            )
            results = run_method_prediction([tiny], cfg)
            assert len(results) == 5
