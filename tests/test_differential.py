"""Differential tests: the lazy engine vs. exhaustive enumeration.

On a compact universe every completion set is small enough to enumerate
directly from the semantics.  For each query form the engine must emit
exactly the brute-force set, with identical scores, in non-decreasing
order.  (Unknown calls are covered by test_completer_completeness.py.)
"""

import pytest

from repro import Context, CompletionEngine, EngineConfig, Ranker, TypeSystem
from repro.codemodel import LibraryBuilder
from repro.lang import (
    Assign,
    Call,
    Compare,
    FieldAccess,
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    Var,
    well_typed,
)

MAX_DEPTH = 2


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    coin = lib.struct("Bank.Coin")
    lib.prop(coin, "Value", ts.primitive("int"))
    lib.prop(coin, "Year", ts.primitive("int"))
    purse = lib.cls("Bank.Purse")
    lib.prop(purse, "Best", coin)
    lib.prop(purse, "Total", ts.primitive("int"))
    lib.method(purse, "Heaviest", returns=coin)
    vault = lib.cls("Bank.Vault")
    lib.prop(vault, "Main", purse)
    lib.field(vault, "Shared", purse, static=True)
    lib.static_method("Bank.Mint", "Appraise", returns=ts.primitive("int"),
                      params=[("c", coin)])
    ctx = Context(ts, locals={"coin": coin, "vault": vault})
    engine = CompletionEngine(ts, EngineConfig(max_chain_depth=MAX_DEPTH))
    return ts, ctx, engine, coin, purse, vault


def enumerate_chains(ts, roots, methods, max_steps):
    """All lookup chains up to ``max_steps`` extensions over the roots."""
    frontier = list(roots)
    everything = list(roots)
    for _ in range(max_steps):
        next_frontier = []
        for expr in frontier:
            base_type = expr.type
            if base_type is None:
                continue
            for member in ts.instance_lookups(base_type):
                next_frontier.append(FieldAccess(expr, member))
            if methods:
                for method in ts.zero_arg_instance_methods(base_type):
                    if method.return_type is not None:
                        next_frontier.append(Call(method, (expr,)))
        everything.extend(next_frontier)
        frontier = next_frontier
    return everything


def engine_items(engine, pe, ctx, bound=10_000):
    items = {}
    scores = []
    for completion in engine.all_completions(pe, ctx):
        items[completion.expr.key()] = completion.score
        scores.append(completion.score)
        if len(scores) >= bound:
            break
    assert scores == sorted(scores)
    return items


def expected_items(ranker, exprs):
    table = {}
    for expr in exprs:
        key = expr.key()
        score = ranker.score(expr)
        if key not in table or score < table[key]:
            table[key] = score
    return table


class TestHole:
    def test_hole_matches_brute_force(self, world):
        ts, ctx, engine, *_ = world
        ranker = Ranker(ctx)
        chains = enumerate_chains(
            ts, ctx.chain_roots(), methods=True, max_steps=MAX_DEPTH
        )
        assert engine_items(engine, Hole(), ctx) == expected_items(ranker, chains)


class TestSuffixHoles:
    @pytest.mark.parametrize("methods", [False, True])
    @pytest.mark.parametrize("star", [False, True])
    def test_suffix_matches_brute_force(self, world, methods, star):
        ts, ctx, engine, _coin, _purse, vault = world
        base = Var("vault", vault)
        pe = SuffixHole(base, methods=methods, star=star)
        ranker = Ranker(ctx)
        steps = MAX_DEPTH if star else 1
        chains = enumerate_chains(ts, [base], methods=methods, max_steps=steps)
        assert engine_items(engine, pe, ctx) == expected_items(ranker, chains)


class TestKnownCall:
    def test_hole_argument_matches_brute_force(self, world):
        ts, ctx, engine, coin, *_ = world
        appraise = ts.get("Bank.Mint").declared_methods_named("Appraise")[0]
        pe = KnownCall((appraise,), (Hole(),))
        ranker = Ranker(ctx)
        chains = enumerate_chains(
            ts, ctx.chain_roots(), methods=True, max_steps=MAX_DEPTH
        )
        calls = [
            Call(appraise, (value,))
            for value in chains
            if value.type is not None
            and ts.implicitly_converts(value.type, coin)
        ]
        assert engine_items(engine, pe, ctx) == expected_items(ranker, calls)


class TestBinary:
    def test_compare_matches_brute_force(self, world):
        ts, ctx, engine, coin, _purse, vault = world
        pe = PartialCompare(
            SuffixHole(Var("coin", coin), methods=True, star=False),
            SuffixHole(Var("vault", vault), methods=True, star=True),
            op="<",
        )
        ranker = Ranker(ctx)
        lefts = enumerate_chains(ts, [Var("coin", coin)], True, 1)
        rights = enumerate_chains(ts, [Var("vault", vault)], True, MAX_DEPTH)
        pairs = []
        for lhs in lefts:
            for rhs in rights:
                if lhs.type is None or rhs.type is None:
                    continue
                if not ts.comparable(lhs.type, rhs.type):
                    continue
                pairs.append(Compare(lhs, rhs, "<"))
        assert engine_items(engine, pe, ctx) == expected_items(ranker, pairs)

    def test_assign_matches_brute_force(self, world):
        ts, ctx, engine, coin, _purse, vault = world
        pe = PartialAssign(
            SuffixHole(Var("vault", vault), methods=False, star=True),
            SuffixHole(Var("coin", coin), methods=True, star=False),
        )
        ranker = Ranker(ctx)
        lefts = enumerate_chains(ts, [Var("vault", vault)], False, MAX_DEPTH)
        rights = enumerate_chains(ts, [Var("coin", coin)], True, 1)
        pairs = []
        for lhs in lefts:
            if not isinstance(lhs, (Var, FieldAccess)):
                continue
            if isinstance(lhs, Var) and lhs.is_this:
                continue
            for rhs in rights:
                if lhs.type is None or rhs.type is None:
                    continue
                if not ts.implicitly_converts(rhs.type, lhs.type):
                    continue
                if not well_typed(Assign(lhs, rhs), ts):
                    continue
                pairs.append(Assign(lhs, rhs))
        assert engine_items(engine, pe, ctx) == expected_items(ranker, pairs)
