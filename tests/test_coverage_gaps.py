"""Small-gap coverage: error paths and helpers not exercised elsewhere."""

import pytest

from repro import Context, TypeSystem, parse, to_source
from repro.codemodel import LibraryBuilder
from repro.eval import queries
from repro.ide import Workspace
from repro.lang import FieldAccess, Var
from repro.lang.printer import to_source as printer_to_source


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    point = lib.struct("G.Point")
    x = lib.prop(point, "X", ts.primitive("double"))
    return ts, point, x


class TestPrinterErrors:
    def test_unknown_node_type_raises(self):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            printer_to_source(Bogus())


class TestQueriesHelpers:
    def test_ends_in_lookups(self, world):
        ts, point, x = world
        chain = FieldAccess(Var("p", point), x)
        assert queries.ends_in_lookups(chain, 1)
        assert not queries.ends_in_lookups(chain, 2)
        assert not queries.ends_in_lookups(Var("p", point), 1)

    def test_chain_length_none_for_noncain(self, world):
        ts, point, x = world
        from repro.lang import Literal

        # literals are trivially chains of length 0 over themselves, but
        # they are not hole completions; chain_length still returns 0
        assert queries.chain_length(Literal(1, ts.primitive("int"))) == 0


class TestWorkspaceErrors:
    def test_ambiguous_simple_name(self):
        workspace = Workspace.builtin("geometry")
        with pytest.raises(ValueError, match="ambiguous"):
            workspace.resolve_type("Point")  # Drawing.Point vs Geometry.Point

    def test_non_corpus_workspace_has_no_oracle(self):
        workspace = Workspace.builtin("bcl")
        assert workspace.analysis() is None
        assert workspace.impls() == []


class TestContextEdges:
    def test_static_enclosing_without_this(self, world):
        ts, point, _x = world
        lib = LibraryBuilder(ts)
        helper = lib.cls("G.Helper")
        make = lib.static_method(helper, "Make", returns=point)
        ctx = Context(ts, enclosing_type=helper)
        assert not ctx.has_local("this")
        assert ctx.is_in_scope_static(make)

    def test_iter_visible_types(self, world):
        ts, *_ = world
        ctx = Context(ts)
        assert len(list(ctx.iter_visible_types())) == len(ts.all_types())


class TestParserMore:
    def test_compare_all_operators(self, world):
        ts, point, x = world
        ctx = Context(ts, locals={"p": point, "q": point})
        for op in ("<", "<=", ">", ">=", "==", "!="):
            expr = parse("p.X {} q.X".format(op), ctx)
            assert expr.op == op
            assert to_source(expr) == "p.X {} q.X".format(op)

    def test_nested_call_args(self, world):
        ts, point, x = world
        lib = LibraryBuilder(ts)
        lib.static_method("G.M", "Pick", returns=point,
                          params=[("a", point), ("b", point)])
        ctx = Context(ts, locals={"p": point})
        expr = parse("G.M.Pick(G.M.Pick(p, p), p)", ctx)
        assert to_source(expr) == "G.M.Pick(G.M.Pick(p, p), p)"

    def test_whitespace_insensitive(self, world):
        ts, point, x = world
        ctx = Context(ts, locals={"p": point})
        assert parse("  p . X  ", ctx) == parse("p.X", ctx)


class TestEngineKeywordEdge:
    def test_keyword_with_no_matches_is_empty(self, world):
        from repro import CompletionEngine
        from repro.lang import UnknownCall

        ts, point, _x = world
        ctx = Context(ts, locals={"p": point})
        engine = CompletionEngine(ts)
        pe = UnknownCall((Var("p", point),))
        assert engine.complete(pe, ctx, n=5, keyword="zzznothing") == []
