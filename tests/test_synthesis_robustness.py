"""Robustness: the generator + pipeline hold over arbitrary seeds."""

from dataclasses import replace

import pytest

from repro.corpus import synthesize_project
from repro.corpus.synthesis import classify_expr
from repro.eval import EvalConfig, run_method_prediction
from repro.lang import Call, Literal, well_typed
from tests.conftest import TINY_SPEC


@pytest.mark.parametrize("seed", [7, 1234, 90210])
class TestSeeds:
    def test_generated_corpus_is_sound(self, seed):
        project = synthesize_project(replace(TINY_SPEC, seed=seed))
        sites = 0
        for impl, _index, expr in project.iter_sites():
            assert well_typed(expr, project.ts)
            sites += 1
        assert sites > 10

    def test_pipeline_runs(self, seed):
        project = synthesize_project(replace(TINY_SPEC, seed=seed))
        cfg = EvalConfig(
            limit=20, max_calls_per_project=5,
            with_return_type=False, with_intellisense=False,
        )
        results = run_method_prediction([project], cfg)
        assert results


class TestNestedCallArguments:
    def test_nested_calls_appear(self):
        """With the nested_call mix enabled, some arguments are calls with
        their own arguments — the paper's unguessable computed category."""
        from repro.corpus.synthesis import ArgumentMix, SynthesisSpec

        spec = replace(
            TINY_SPEC,
            seed=321,
            argument_mix=ArgumentMix(nested_call=0.5, literal=0.0),
        )
        project = synthesize_project(spec)
        nested = 0
        for _impl, _index, call in project.iter_calls():
            for arg in call.args:
                if isinstance(arg, Call) and len(arg.args) > (
                    0 if arg.method.is_static else 1
                ):
                    nested += 1
        assert nested > 0

    def test_nested_calls_counted_unguessable(self):
        from repro.corpus.synthesis import ArgumentMix
        from repro.eval import run_argument_prediction

        spec = replace(
            TINY_SPEC,
            seed=321,
            argument_mix=ArgumentMix(nested_call=0.5, literal=0.0),
        )
        project = synthesize_project(spec)
        cfg = EvalConfig(
            limit=15, max_arguments_per_project=40,
            with_return_type=False, with_intellisense=False,
            abstypes="none",
        )
        results = run_argument_prediction([project], cfg)
        unguessable = [r for r in results if not r.guessable]
        assert unguessable
        assert all(r.rank is None for r in unguessable)
