"""SLO objectives, burn-rate math, and the offline report path.

Pins the multi-window convention from docs/OBSERVABILITY.md: a breach
needs sustained over-budget burn (shortest AND longest window), a blip
is only ``at_risk``; degraded/truncated 200s burn the error budget the
way the chaos contract demands; and the ``repro slo`` CLI replays a
server run log through the same math with breach → exit 1.
"""

import io
import json
import math

import pytest

from repro.__main__ import main as cli_main
from repro.obs.runlog import RunLog
from repro.obs.slo import (
    DEFAULT_SLO_SPEC,
    DEFAULT_WINDOWS_S,
    OFFLINE_WINDOWS_S,
    SLOObjectives,
    SLOTracker,
    render_slo_report,
    slo_from_run_log,
)


class TestObjectiveSpecs:
    def test_default_spec_parses(self):
        objectives = SLOObjectives.from_spec(DEFAULT_SLO_SPEC)
        assert objectives.p95_ms == 50.0
        assert objectives.error_rate == 0.01
        assert objectives.shed_rate == 0.20

    def test_subset_spec(self):
        objectives = SLOObjectives.from_spec("error_rate=0.05")
        assert objectives.error_rate == 0.05
        assert objectives.p95_ms is None
        assert objectives.shed_rate is None
        assert bool(objectives)

    @pytest.mark.parametrize("spec", [
        "", "bogus", "p95_ms", "p95_ms=fast", "uptime=0.99",
        "p95_ms=-1", "error_rate=0", "error_rate=1.5",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            SLOObjectives.from_spec(spec)

    def test_to_dict_drops_unset(self):
        assert SLOObjectives(p95_ms=10).to_dict() == {"p95_ms": 10.0}


def make_tracker(**objectives):
    clock = {"now": 0.0}
    tracker = SLOTracker(SLOObjectives(**objectives),
                         windows=(60.0, 300.0),
                         clock=lambda: clock["now"])
    return tracker, clock


class TestBurnMath:
    def test_error_burn_is_rate_over_budget(self):
        tracker, _ = make_tracker(error_rate=0.01)
        for i in range(98):
            tracker.record(1.0, t=float(i) / 10)
        tracker.record(1.0, error=True, t=9.8)
        tracker.record(1.0, error=True, t=9.9)
        report = tracker.evaluate(now=10.0)
        # 2/100 errors against a 1% budget: burning 2x
        assert report["windows"][0]["burn"]["errors"] == pytest.approx(2.0)
        assert report["verdicts"]["errors"] == "breach"
        assert report["ok"] is False

    def test_latency_burn_counts_fraction_over_target(self):
        tracker, _ = make_tracker(p95_ms=50)
        for i in range(90):
            tracker.record(10.0, t=float(i) / 100)
        for i in range(10):
            tracker.record(100.0, t=0.9 + i / 100)
        report = tracker.evaluate(now=1.0)
        # 10% over target against the 5% latency budget: 2x burn
        assert report["windows"][0]["burn"]["latency"] == pytest.approx(2.0)
        assert report["windows"][0]["p95_ms"] > 50

    def test_shed_requests_excluded_from_latency(self):
        tracker, _ = make_tracker(p95_ms=50, shed_rate=0.5)
        tracker.record(9999.0, shed=True, t=0.0)  # shed "latency" ignored
        tracker.record(1.0, t=0.1)
        report = tracker.evaluate(now=1.0)
        assert report["windows"][0]["burn"]["latency"] == 0.0
        assert report["windows"][0]["burn"]["shed"] == pytest.approx(1.0)
        assert report["verdicts"]["shed"] == "ok", "on budget is not over"

    def test_degraded_burns_error_budget(self):
        tracker, _ = make_tracker(error_rate=0.01)
        tracker.record(1.0, degraded=True, t=0.0)
        report = tracker.evaluate(now=1.0)
        window = report["windows"][0]
        assert window["errors"] == 1
        assert window["degraded"] == 1
        assert window["burn"]["errors"] > 1.0

    def test_old_events_age_out_of_short_windows(self):
        tracker, _ = make_tracker(error_rate=0.01)
        tracker.record(1.0, error=True, t=0.0)
        for i in range(50):
            tracker.record(1.0, t=200.0 + i)
        report = tracker.evaluate(now=250.0)
        short, long_ = report["windows"]
        assert short["window_s"] == 60.0
        assert short["errors"] == 0
        assert long_["errors"] == 1

    def test_blip_is_at_risk_not_breach(self):
        # one early error: out of the 60s window by evaluation time but
        # still inside 300s -> over budget in the long window only
        tracker, _ = make_tracker(error_rate=0.01)
        tracker.record(1.0, error=True, t=0.0)
        for i in range(20):
            tracker.record(1.0, t=100.0 + i)
        report = tracker.evaluate(now=121.0)
        assert report["verdicts"]["errors"] == "at_risk"
        assert report["ok"] is True, "at_risk does not fail healthz"

    def test_pruning_bounds_memory(self):
        tracker, _ = make_tracker(error_rate=0.5)
        for i in range(1000):
            tracker.record(1.0, t=float(i))
        assert len(tracker) < 1000
        # the retained horizon is the longest finite window
        assert len(tracker) >= 300

    def test_infinite_window_keeps_everything(self):
        tracker = SLOTracker(SLOObjectives(error_rate=0.5),
                             windows=OFFLINE_WINDOWS_S,
                             clock=lambda: 0.0)
        for i in range(1000):
            tracker.record(1.0, t=float(i))
        assert len(tracker) == 1000
        report = tracker.evaluate(now=999.0)
        assert report["windows"][-1]["window_s"] is None
        assert report["windows"][-1]["requests"] == 1000

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            SLOTracker(SLOObjectives(p95_ms=1), windows=())
        with pytest.raises(ValueError):
            SLOTracker(SLOObjectives(p95_ms=1), windows=(0.0,))

    def test_default_windows_sorted_multi(self):
        assert DEFAULT_WINDOWS_S == (60.0, 300.0, 1800.0)
        assert math.isinf(OFFLINE_WINDOWS_S[-1])


def serve_log(outcomes):
    """A run log of synthetic server_request records; ``outcomes`` is a
    list of (t_ms, code, elapsed_ms, kwargs)."""
    log = RunLog("slo-unit", universes={"bcl": 1})
    for t_ms, code, elapsed_ms, kwargs in outcomes:
        log.server_request(
            endpoint="/v1/complete",
            status=200 if code == "ok" else 500,
            code=code, elapsed_ms=elapsed_ms, workspace="bcl", **kwargs)
        log.records()[-1]["t_ms"] = t_ms  # deterministic replay times
    return log.records()


class TestOfflineReplay:
    def test_clean_log_is_ok(self):
        records = serve_log(
            [(i * 100.0, "ok", 2.0, {}) for i in range(50)])
        report = slo_from_run_log(
            records, SLOObjectives.from_spec(DEFAULT_SLO_SPEC))
        assert report["server_requests"] == 50
        assert report["ok"] is True
        assert all(v == "ok" for v in report["verdicts"].values())

    def test_internal_errors_and_degraded_burn(self):
        outcomes = [(i * 10.0, "ok", 2.0, {}) for i in range(40)]
        outcomes.append((410.0, "internal_error", 2.0, {}))
        outcomes.append((420.0, "ok", 2.0, {"degraded": ["oracle"]}))
        outcomes.append((430.0, "ok", 2.0, {"truncated": 2}))
        report = slo_from_run_log(
            serve_log(outcomes), SLOObjectives(error_rate=0.01))
        window = report["windows"][-1]  # whole-log
        assert window["errors"] == 3
        assert window["degraded"] == 2
        assert report["verdicts"]["errors"] == "breach"
        assert report["ok"] is False

    def test_shed_records_burn_shed_budget_only(self):
        outcomes = [(i * 10.0, "ok", 2.0, {}) for i in range(8)]
        outcomes += [(100.0 + i, "shed", 0.1, {"shed": True})
                     for i in range(2)]
        report = slo_from_run_log(
            serve_log(outcomes),
            SLOObjectives(error_rate=0.5, shed_rate=0.1))
        window = report["windows"][-1]
        assert window["shed"] == 2
        assert window["errors"] == 0
        assert report["verdicts"]["shed"] == "breach"

    def test_non_server_records_ignored(self):
        log = RunLog("slo-unit", universes={"bcl": 1})
        log.event("warm", tenant="bcl")
        report = slo_from_run_log(
            log.records(), SLOObjectives(error_rate=0.5))
        assert report["server_requests"] == 0
        assert report["ok"] is True

    def test_custom_windows_override(self):
        records = serve_log([(0.0, "ok", 2.0, {})])
        report = slo_from_run_log(
            records, SLOObjectives(p95_ms=50), windows=(10.0,))
        assert [w["window_s"] for w in report["windows"]] == [10.0]

    def test_render_names_verdicts(self):
        records = serve_log([(0.0, "ok", 2.0, {})])
        report = slo_from_run_log(
            records, SLOObjectives.from_spec(DEFAULT_SLO_SPEC))
        lines = render_slo_report(report)
        assert "SLO report" in lines[0]
        assert any("overall: ok" in line for line in lines)
        assert any("errors: ok" in line for line in lines)


class TestCli:
    def _run(self, argv):
        out = io.StringIO()
        code = cli_main(argv, write=lambda line="": out.write(str(line) + "\n"))
        return code, out.getvalue()

    def _write_log(self, tmp_path, outcomes):
        path = tmp_path / "serve_bcl.ndjson"
        path.write_text("\n".join(
            json.dumps(record) for record in serve_log(outcomes)) + "\n")
        return str(path)

    def test_ok_log_exits_zero(self, tmp_path):
        path = self._write_log(
            tmp_path, [(i * 100.0, "ok", 2.0, {}) for i in range(20)])
        code, output = self._run(["slo", path])
        assert code == 0, output
        assert "overall: ok" in output

    def test_breach_exits_one_and_writes_report(self, tmp_path):
        outcomes = [(i * 10.0, "ok", 2.0, {}) for i in range(10)]
        outcomes.append((110.0, "internal_error", 2.0, {}))
        path = self._write_log(tmp_path, outcomes)
        report_path = tmp_path / "slo_report.json"
        code, output = self._run(["slo", path, "-o", str(report_path)])
        assert code == 1
        assert "BREACH" in output
        report = json.loads(report_path.read_text())
        assert report["ok"] is False
        assert report["server_requests"] == 11

    def test_json_output(self, tmp_path):
        path = self._write_log(tmp_path, [(0.0, "ok", 1.0, {})])
        code, output = self._run(["slo", path, "--json"])
        assert code == 0
        report = json.loads(output)
        assert report["server_requests"] == 1

    def test_custom_spec_and_windows(self, tmp_path):
        path = self._write_log(
            tmp_path, [(i * 10.0, "ok", 80.0, {}) for i in range(10)])
        code, output = self._run(
            ["slo", path, "--slo", "p95_ms=50", "--windows", "30,inf"])
        assert code == 1, "every request over target must breach"
        assert "latency: breach" in output

    def test_usage_errors(self, tmp_path):
        code, output = self._run(["slo", str(tmp_path / "missing.ndjson")])
        assert code == 2
        path = self._write_log(tmp_path, [(0.0, "ok", 1.0, {})])
        code, output = self._run(["slo", path, "--slo", "nope"])
        assert code == 2
        code, output = self._run(["slo", path, "--windows", "abc"])
        assert code == 2
        code, output = self._run(["slo", path, "--windows", "-5"])
        assert code == 2

    def test_log_without_server_requests_is_usage_error(self, tmp_path):
        log = RunLog("unit", universes={"bcl": 1})
        path = tmp_path / "engine.ndjson"
        path.write_text(log.to_ndjson())
        code, output = self._run(["slo", str(path)])
        assert code == 2
        assert "no server_request records" in output


class TestApiFacade:
    def test_slo_report_from_path_and_records(self, tmp_path):
        from repro.api import slo_report

        records = serve_log([(i * 10.0, "ok", 2.0, {}) for i in range(5)])
        path = tmp_path / "serve.ndjson"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        from_path = slo_report(str(path))
        from_records = slo_report(records)
        assert from_path == from_records
        assert from_path["server_requests"] == 5
        custom = slo_report(records, slo="error_rate=0.5", windows=[60.0])
        assert custom["objectives"] == {"error_rate": 0.5}
