"""Observability layer: tracing, attribution, metrics, and the facade.

The load-bearing guarantees:

* tracing is an *observer* — a traced query returns byte-identical
  rankings to an untraced one (differential tests over the golden
  batteries);
* every :class:`ScoreBreakdown` sums exactly to the ranked score for
  every golden completion in every builtin universe;
* cache-replayed outcomes still trace and explain (marked ``cached``);
* the deprecated spellings warn but keep working.
"""

import io
import json
import warnings

import pytest

from repro import (
    CompletionEngine,
    Context,
    EngineConfig,
    QueryStatus,
    TypeSystem,
    parse,
    to_source,
)
from repro.__main__ import main as cli_main
from repro.ide.session import CompletionSession
from repro.ide.workspace import Workspace
from repro.obs import (
    Metrics,
    NULL_TRACER,
    ScoreBreakdown,
    Tracer,
    ndjson_to_dicts,
    trace_to_ndjson,
    validate_trace_text,
)
from repro.engine.ranking import Ranker

from .test_golden_completions import GOLDEN_DIR, QUERIES, _universe

UNIVERSES = sorted(QUERIES)


def _golden(name):
    path = GOLDEN_DIR / "{}.json".format(name)
    return json.loads(path.read_text())["queries"]


# ---------------------------------------------------------------------------
# differential: tracing must not change results
# ---------------------------------------------------------------------------
class TestTracingDifferential:
    @pytest.mark.parametrize("name", UNIVERSES)
    def test_traced_rankings_identical(self, name):
        ts, context = _universe(name)
        plain = CompletionEngine(ts)
        traced = CompletionEngine(ts)
        for source in QUERIES[name]:
            pe = parse(source, context)
            want = plain.complete_query(pe, context, n=10)
            got = traced.complete_query(pe, context, n=10, trace=True)
            assert [(c.score, to_source(c.expr)) for c in want.completions] \
                == [(c.score, to_source(c.expr)) for c in got.completions], \
                "tracing changed the ranking of {!r} in {}".format(
                    source, name)
            assert got.trace, "traced outcome carries no spans"
            assert want.trace is None

    @pytest.mark.parametrize("name", UNIVERSES)
    def test_traced_matches_golden(self, name):
        """Traced output equals the checked-in golden top-10."""
        ts, context = _universe(name)
        engine = CompletionEngine(ts)
        golden = _golden(name)
        for source in QUERIES[name]:
            outcome = engine.complete_query(
                parse(source, context), context, n=10, trace=True)
            got = [(c.score, to_source(c.expr)) for c in outcome.completions]
            want = [(e["score"], e["text"]) for e in golden[source]]
            assert got == want


# ---------------------------------------------------------------------------
# span structure and the NDJSON format
# ---------------------------------------------------------------------------
class TestTraceStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        ts, context = _universe("paint")
        engine = CompletionEngine(ts)
        outcome = engine.complete_query(
            parse("?", context), context, trace=True)
        return outcome.trace

    def test_single_root_named_query(self, trace):
        roots = [s for s in trace if s["parent"] is None]
        assert [s["name"] for s in roots] == ["query"]

    def test_all_parents_resolve(self, trace):
        ids = {s["span"] for s in trace}
        for span in trace:
            if span["parent"] is not None:
                assert span["parent"] in ids

    def test_expected_phases_present(self, trace):
        names = {s["name"] for s in trace}
        assert {"query", "preflight", "root_pool", "dedup",
                "collect"} <= names
        assert any(n.startswith("expand:") for n in names)

    def test_durations_nested_and_nonnegative(self, trace):
        by_id = {s["span"]: s for s in trace}
        for span in trace:
            assert span["duration_ms"] >= 0
            if span["parent"] is not None:
                parent = by_id[span["parent"]]
                assert span["start_ms"] >= parent["start_ms"]

    def test_ndjson_round_trip(self, trace):
        text = trace_to_ndjson(trace, universe="paint", query="?")
        records = ndjson_to_dicts(text)
        assert [r for r in records if r["kind"] == "span"] == trace
        header = json.loads(text.splitlines()[0])
        assert header["kind"] == "trace"
        assert header["universe"] == "paint"

    def test_ndjson_validates_against_schema(self, trace):
        text = trace_to_ndjson(trace, universe="paint")
        assert validate_trace_text(text) == []

    def test_validator_rejects_garbage(self):
        assert validate_trace_text("not json\n")
        # span line with a missing required field
        bad = trace_to_ndjson([{"kind": "span", "span": 0}])
        assert validate_trace_text(bad)

    def test_nesting_via_contextmanager(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
            assert tracer.current() is outer
        tracer.finish()
        spans = tracer.to_dicts()
        inner = next(s for s in spans if s["name"] == "inner")
        outer = next(s for s in spans if s["name"] == "outer")
        assert inner["parent"] == outer["span"]

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("x") as span:
            span.add("items")
        assert NULL_TRACER.to_dicts() == []


# ---------------------------------------------------------------------------
# ranking attribution
# ---------------------------------------------------------------------------
class TestScoreBreakdown:
    @pytest.mark.parametrize("name", UNIVERSES)
    def test_terms_sum_to_golden_score(self, name):
        """Every golden completion's breakdown sums exactly to its
        checked-in score — attribution can never drift from ranking."""
        ts, context = _universe(name)
        engine = CompletionEngine(ts)
        golden = _golden(name)
        for source in QUERIES[name]:
            explained = engine.explain(parse(source, context), context, n=10)
            assert len(explained) == len(golden[source])
            for completion, entry in zip(explained, golden[source]):
                breakdown = completion.breakdown
                assert breakdown is not None
                assert breakdown.consistent, \
                    "terms {} sum to {}, score is {} ({!r} in {})".format(
                        breakdown.terms, breakdown.term_sum,
                        breakdown.total, entry["text"], name)
                assert breakdown.total == entry["score"]

    def test_rank_narrows_to_one(self):
        ts, context = _universe("bcl")
        engine = CompletionEngine(ts)
        pe = parse("?({now})", context)
        all_ten = engine.explain(pe, context, n=10)
        third = engine.explain(pe, context, n=10, rank=3)
        assert len(third) == 1
        assert third[0].expr.key() == all_ten[2].expr.key()
        assert engine.explain(pe, context, n=10, rank=99) == []

    def test_rows_ordered_by_contribution(self):
        ts, context = _universe("paint")
        engine = CompletionEngine(ts)
        (completion,) = engine.explain(
            parse("?({img, size})", context), context, rank=1)
        rows = completion.breakdown.rows()
        contributions = [abs(value) for _, value in rows]
        assert contributions == sorted(contributions, reverse=True)

    def test_from_ranker_matches_score(self):
        ts, context = _universe("geometry")
        engine = CompletionEngine(ts)
        outcome = engine.complete_query(parse("?", context), context, n=5)
        ranker = Ranker(context, engine.config.ranking, None)
        for completion in outcome.completions:
            breakdown = ScoreBreakdown.from_ranker(ranker, completion.expr)
            assert breakdown.total == completion.score
            assert breakdown.consistent


# ---------------------------------------------------------------------------
# cache replay: tracing and attribution survive a warm hit
# ---------------------------------------------------------------------------
class TestCacheReplay:
    @pytest.fixture()
    def engine(self):
        ts, context = _universe("paint")
        engine = CompletionEngine(ts, EngineConfig(enable_cache=True))
        return engine, context

    def test_replay_is_marked_and_traced(self, engine):
        engine, context = engine
        pe = parse("?({img})", context)
        cold = engine.complete_query(pe, context)
        assert not cold.cached
        warm = engine.complete_query(pe, context, trace=True)
        assert warm.cached
        assert warm.trace is not None
        cache_spans = [s for s in warm.trace if s["name"] == "cache"]
        assert cache_spans and cache_spans[0]["counters"]["hit"] == 1
        assert [c.expr.key() for c in warm.completions] \
            == [c.expr.key() for c in cold.completions]

    def test_traced_miss_does_not_populate_cache(self, engine):
        engine, context = engine
        pe = parse("?({size})", context)
        traced = engine.complete_query(pe, context, trace=True)
        assert not traced.cached
        after = engine.complete_query(pe, context)
        assert not after.cached, \
            "a traced miss must not seed the shared cache"

    def test_explain_after_replay_is_never_empty(self, engine):
        engine, context = engine
        pe = parse("?({img})", context)
        engine.complete_query(pe, context)
        explained = engine.explain(pe, context, n=10)
        assert explained
        for completion in explained:
            assert completion.breakdown is not None
            assert completion.breakdown.cached
            assert completion.breakdown.consistent


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_record_batch_equals_singles(self):
        batched, singles = Metrics(), Metrics()
        batched.record({"a": 2, "b": 1},
                       [("h", 3.0, (1, 10)), ("h", 30.0, (1, 10))])
        singles.incr("a", 2)
        singles.incr("b")
        singles.observe("h", 3.0, bounds=(1, 10))
        singles.observe("h", 30.0, bounds=(1, 10))
        assert batched.to_dict() == singles.to_dict()

    def test_engine_counts_queries(self):
        ts, context = _universe("bcl")
        engine = CompletionEngine(ts, EngineConfig(enable_cache=True))
        pe = parse("?({now})", context)
        engine.complete_query(pe, context)
        engine.complete_query(pe, context)
        assert engine.metrics.counter("queries") == 2
        assert engine.metrics.counter("queries_cached") == 1
        snapshot = engine.metrics.to_dict()
        assert snapshot["histograms"]["steps_per_query"]["count"] == 2
        assert json.loads(engine.metrics.to_json()) == snapshot

    def test_unsatisfiable_is_counted(self):
        ts, context = _universe("paint")
        engine = CompletionEngine(ts)
        outcome = engine.complete_query(
            parse("img.?*f", context), context,
            expected_type=context.locals["size"])
        if outcome.status is QueryStatus.UNSATISFIABLE:
            assert engine.metrics.counter("queries_unsatisfiable") == 1


# ---------------------------------------------------------------------------
# deprecated spellings
# ---------------------------------------------------------------------------
class TestDeprecationShims:
    def test_session_query_warns_and_works(self):
        session = CompletionSession(Workspace.builtin("bcl"), n=5)
        session.declare("now", "System.DateTime")
        with pytest.warns(DeprecationWarning, match="CompletionSession.query"):
            old = session.query("now.?m")
        new = session.complete("now.?m")
        assert [s.text for s in old.suggestions] \
            == [s.text for s in new.suggestions]

    def test_workspace_set_cache_enabled_warns(self):
        workspace = Workspace.builtin("bcl")
        with pytest.warns(DeprecationWarning, match="set_cache_enabled"):
            workspace.set_cache_enabled(False)
        assert workspace.cache_enabled is False
        workspace.cache_enabled = True
        assert workspace.cache_enabled is True

    def test_outcome_boolean_properties_warn(self):
        ts, context = _universe("bcl")
        engine = CompletionEngine(ts)
        outcome = engine.complete_query(parse("?({now})", context), context)
        with pytest.warns(DeprecationWarning, match="QueryOutcome.truncated"):
            assert outcome.truncated is None
        with pytest.warns(DeprecationWarning,
                          match="QueryOutcome.unsatisfiable"):
            assert outcome.unsatisfiable is False
        with pytest.warns(DeprecationWarning, match="QueryOutcome.preflight"):
            outcome.preflight
        assert outcome.status is QueryStatus.OK

    def test_status_round_trips_truncation(self):
        assert QueryStatus.from_truncation(None) is QueryStatus.OK
        for reason in ("timeout", "budget", "cancelled"):
            status = QueryStatus.from_truncation(reason)
            assert status.truncation == reason
            assert status.is_truncated

    def test_shim_warns_once_per_call_site(self):
        workspace = Workspace.builtin("bcl")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                workspace.set_cache_enabled(True)   # one call site
            workspace.set_cache_enabled(True)       # a different one
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2

    def test_warning_attributed_to_the_caller_file(self):
        workspace = Workspace.builtin("bcl")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            workspace.set_cache_enabled(True)
        assert caught[0].filename == __file__

    def test_error_filter_keeps_failing_at_the_same_site(self):
        # the memo records a site only after warn() returns: pinning
        # shims with an error filter must fail on *every* use, not
        # just the first
        session = CompletionSession(Workspace.builtin("bcl"), n=3)
        session.declare("now", "System.DateTime")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for _ in range(2):
                with pytest.raises(DeprecationWarning):
                    session.query("now.?m")

    def test_reset_restores_warning(self):
        from repro.deprecation import reset_deprecation_memo

        workspace = Workspace.builtin("bcl")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(2):
                reset_deprecation_memo()
                workspace.set_cache_enabled(True)
        assert len(caught) == 2


# ---------------------------------------------------------------------------
# CLI: --trace/--explain and the stats subcommand
# ---------------------------------------------------------------------------
class TestCli:
    def _run(self, argv):
        out = io.StringIO()
        code = cli_main(argv, write=lambda line="": out.write(str(line) + "\n"))
        return code, out.getvalue()

    def test_complete_trace_emits_valid_ndjson(self):
        code, output = self._run([
            "complete", "--universe", "bcl", "--let",
            "now=System.DateTime", "--trace", "-", "now.?m"])
        assert code == 0
        ndjson = "\n".join(
            line for line in output.splitlines()
            if line.startswith("{")) + "\n"
        assert validate_trace_text(ndjson) == []

    def test_complete_explain_prints_breakdowns(self):
        code, output = self._run([
            "complete", "--universe", "bcl", "--let",
            "now=System.DateTime", "--explain", "now.?m"])
        assert code == 0
        assert "type_distance=" in output

    def test_stats_battery_reports_metrics(self):
        code, output = self._run(["stats", "--universe", "geometry"])
        assert code == 0
        doc = json.loads(output)
        assert doc["universe"] == "geometry"
        assert doc["metrics"]["counters"]["queries"] == len(doc["queries"])

    def test_stats_validate_trace(self, tmp_path):
        trace_file = tmp_path / "t.ndjson"
        code, _ = self._run([
            "complete", "--universe", "bcl", "--let",
            "now=System.DateTime", "--trace", str(trace_file), "now.?m"])
        assert code == 0
        code, output = self._run(["stats", "--validate-trace",
                                  str(trace_file)])
        assert code == 0
        assert "valid" in output
        trace_file.write_text('{"kind": "span"}\n')
        code, _ = self._run(["stats", "--validate-trace", str(trace_file)])
        assert code == 1


# ---------------------------------------------------------------------------
# the public facade
# ---------------------------------------------------------------------------
class TestFacade:
    def test_init_exposes_only_the_api_surface(self):
        import repro
        from repro import api

        import importlib

        for name in api.__all__:
            if name in ("fuzz", "serve"):
                # the names that are both facade helpers and
                # subpackages: top-level resolves to the subpackage
                # (import-order independent), the helpers live at
                # ``repro.api.fuzz`` / ``repro.api.serve``
                subpackage = importlib.import_module("repro." + name)
                assert getattr(repro, name) is subpackage
                assert callable(getattr(api, name))
                continue
            assert getattr(repro, name) is getattr(api, name)
        assert set(repro.__all__) == set(api.__all__) | {"__version__"}
        with pytest.raises(AttributeError):
            repro.definitely_not_public
        assert "open_workspace" in dir(repro)

    def test_facade_complete_and_explain(self):
        import repro

        workspace = repro.open_workspace("paint")
        record = repro.complete(
            workspace, "?({img, size})",
            locals={"img": "PaintDotNet.Document",
                    "size": "System.Drawing.Size"})
        assert record.suggestions
        assert record.status is QueryStatus.OK
        explained = repro.explain(
            workspace, "?({img, size})", rank=1,
            locals={"img": "PaintDotNet.Document",
                    "size": "System.Drawing.Size"})
        assert len(explained) == 1
        assert explained[0].breakdown.consistent

    def test_facade_trace_flows_through(self):
        import repro

        workspace = repro.open_workspace("bcl", cache_enabled=False)
        record = repro.complete(
            workspace, "now.?m",
            locals={"now": "System.DateTime"}, trace=True)
        assert record.trace
        assert validate_trace_text(trace_to_ndjson(record.trace)) == []

    def test_facade_lint(self):
        import repro

        workspace = repro.open_workspace("geometry")
        diagnostics = repro.lint(
            workspace, query="point.?*m",
            locals={"point": "DynamicGeometry.Point"})
        assert isinstance(diagnostics, list)
