"""The example scripts must run end-to-end and print the expected shapes."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "?({img, size})" in out
    assert "ResizeDocument" in out
    assert "Distance(point, ?)" in out
    assert ">=" in out


def test_api_discovery(capsys):
    out = run_example("api_discovery.py", capsys)
    assert "ResizeDocument found at rank 1" in out
    assert "Intellisense" in out
    assert "Prospector" in out


def test_source_project(capsys):
    out = run_example("source_project.py", capsys)
    assert "parsed" in out
    assert "Mail.Smtp.Send(original, target)" in out
    assert "copy.SizeBytes >= original.SizeBytes" in out


def test_abstract_types_demo(capsys):
    out = run_example("abstract_types_demo.py", capsys)
    assert "Directory.Exists(appLocation)" in out
    assert "WITH abstract types" in out
    assert "WITHOUT abstract types" in out


@pytest.mark.slow
def test_evaluation_demo(capsys, monkeypatch):
    """Run the evaluation demo with very small caps (smoke test)."""
    import repro.eval.experiments as exp

    real_init = exp.EvalConfig.__init__

    monkeypatch.setattr(
        sys, "argv", ["evaluation_demo.py"], raising=False
    )

    # shrink the demo's capped config further by monkeypatching EvalConfig
    def tiny_init(self, **kwargs):
        kwargs.setdefault("limit", 25)
        kwargs["max_calls_per_project"] = 4
        kwargs["max_arguments_per_project"] = 6
        kwargs["max_assignments_per_project"] = 3
        kwargs["max_comparisons_per_project"] = 2
        real_init(self, **kwargs)

    monkeypatch.setattr(exp.EvalConfig, "__init__", tiny_init)
    out = run_example("evaluation_demo.py", capsys)
    assert "Figure 9" in out
    assert "Figure 16" in out
    assert "Totals" in out
