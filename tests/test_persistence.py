"""Tests for result persistence and regression comparison."""

import pytest

from repro.eval.persistence import (
    compare_runs,
    format_comparison,
    headline_metrics,
    load_results,
    results_document,
    save_results,
)
from tests.test_figures_tables import make_arg, make_call


@pytest.fixture
def run():
    return {
        "methods": [make_call(rank=1), make_call(rank=12)],
        "arguments": [make_arg(rank=2), make_arg(guessable=False, rank=None)],
        "assignments": [],
        "comparisons": [],
    }


class TestRoundTrip:
    def test_save_and_load(self, run, tmp_path):
        path = tmp_path / "run.json"
        save_results(str(path), **run)
        loaded = load_results(str(path))
        assert len(loaded["methods"]) == 2
        assert loaded["methods"][0].best_rank == 1
        assert loaded["arguments"][1].guessable is False

    def test_document_shape(self, run):
        document = results_document(
            run["methods"], run["arguments"], run["assignments"],
            run["comparisons"],
        )
        assert document["format"] == "repro-results"
        assert len(document["methods"]) == 2

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            load_results(str(path))


class TestHeadlines:
    def test_metrics_per_family(self, run):
        headlines = headline_metrics(run)
        assert headlines["methods"]["top10"] == 0.5
        assert headlines["arguments"]["count"] == 1  # guessable only
        assert "assignments" not in headlines


class TestCompare:
    def test_stable_run(self, run):
        report = compare_runs(run, run)
        assert all(
            not deltas.get("regressed") and not deltas.get("improved")
            for deltas in report.values()
        )

    def test_regression_flagged(self, run):
        worse = dict(run)
        worse["methods"] = [make_call(rank=None), make_call(rank=50)]
        report = compare_runs(run, worse)
        assert report["methods"].get("regressed") == 1.0
        assert report["methods"]["top10"] < 0

    def test_improvement_flagged(self, run):
        better = dict(run)
        better["methods"] = [make_call(rank=1), make_call(rank=1)]
        report = compare_runs(run, better)
        assert report["methods"].get("improved") == 1.0

    def test_format_comparison(self, run):
        text = format_comparison(compare_runs(run, run))
        assert "family" in text
        assert "stable" in text
