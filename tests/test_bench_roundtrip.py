"""BENCH_*.json round-trips, schema validation and compare gating.

The bench harness (``repro bench``, docs/PERFORMANCE.md) persists a
schema-versioned document; these tests pin the save/load contract, the
regression-gate arithmetic, and the CLI exit codes 0 (ok) /
1 (regression) / 2 (bad input).
"""

import json

import pytest

from repro.eval.bench import (
    FLOOR_MS,
    THRESHOLD,
    VERSION,
    compare_bench,
    load_bench,
    render_bench,
    save_bench,
    validate_bench,
)


def _document(label="base", p95s=(10.0, 4.0)):
    return {
        "format": "repro-bench",
        "version": VERSION,
        "label": label,
        "quick": True,
        "workloads": [
            {"name": "paper/paint", "queries": 5, "repeats": 3,
             "p50_ms": p95s[0] / 2.0, "p95_ms": p95s[0], "steps": 1000,
             "cache_hit_rate": 0.25},
            {"name": "scaling/10", "queries": 1, "repeats": 3,
             "p50_ms": p95s[1] / 2.0, "p95_ms": p95s[1], "steps": 11},
        ],
        "repeated": {
            "workload": "paper/paint", "repeats": 3,
            "cold_ms": 12.0, "warm_ms": 1.0,
            "cold_steps": 4000, "warm_steps": 400,
            "speedup": 12.0, "hit_rate": 0.4,
        },
    }


class TestRoundTrip:
    def test_save_load_round_trips(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        document = _document()
        save_bench(path, document)
        assert load_bench(path) == document

    def test_validate_accepts_a_real_document(self):
        assert validate_bench(_document()) is not None

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("format"),
        lambda d: d.update(format="something-else"),
        lambda d: d.update(version=VERSION + 1),
        lambda d: d.pop("workloads"),
        lambda d: d.update(workloads="not-a-list"),
        lambda d: d["workloads"][0].pop("p95_ms"),
    ])
    def test_validate_rejects_malformed_documents(self, mutate):
        document = _document()
        mutate(document)
        with pytest.raises(ValueError):
            validate_bench(document)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_bench(str(path))

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "repro-results"}))
        with pytest.raises(ValueError):
            load_bench(str(path))

    def test_render_mentions_every_workload(self):
        text = "\n".join(render_bench(_document()))
        assert "paper/paint" in text
        assert "scaling/10" in text
        assert "speedup" in text


class TestCompare:
    def test_identical_documents_pass(self):
        ok, lines = compare_bench(_document(), _document(label="new"))
        assert ok
        assert any("ok" in line for line in lines)

    def test_large_regression_fails(self):
        slow = _document(label="new", p95s=(10.0 * 2.0, 4.0))
        ok, lines = compare_bench(_document(), slow)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_regression_needs_both_ratio_and_floor(self):
        # +50% but only +0.5 ms absolute: under the floor, not a failure
        tiny = _document(p95s=(10.0, 1.0))
        slower = _document(label="new", p95s=(10.0, 1.5))
        ok, _lines = compare_bench(tiny, slower)
        assert ok

    def test_threshold_boundary_is_exclusive(self):
        # exactly +threshold is not a regression; just over it is
        at_bar = _document(label="new", p95s=(10.0 * (1.0 + THRESHOLD), 4.0))
        ok, _ = compare_bench(_document(), at_bar)
        assert ok
        over = _document(
            label="new", p95s=(10.0 * (1.0 + THRESHOLD) + FLOOR_MS, 4.0))
        ok, _ = compare_bench(_document(), over)
        assert not ok

    def test_new_and_dropped_workloads_do_not_fail(self):
        old = _document()
        new = _document(label="new")
        new["workloads"].append(dict(new["workloads"][1],
                                     name="scaling/90"))
        del new["workloads"][0]
        ok, lines = compare_bench(old, new)
        assert ok
        text = "\n".join(lines)
        assert "no baseline" in text
        assert "dropped" in text

    def test_improvements_pass(self):
        fast = _document(label="new", p95s=(1.0, 0.5))
        ok, _ = compare_bench(_document(), fast)
        assert ok


class TestCliExitCodes:
    def _main(self, argv, lines):
        from repro.__main__ import main

        return main(argv, write=lines.append)

    def test_compare_ok_exits_zero(self, tmp_path):
        old = str(tmp_path / "old.json")
        new = str(tmp_path / "new.json")
        save_bench(old, _document())
        save_bench(new, _document(label="new"))
        lines = []
        assert self._main(["bench", "--compare", old, new], lines) == 0

    def test_compare_regression_exits_one(self, tmp_path):
        old = str(tmp_path / "old.json")
        new = str(tmp_path / "new.json")
        save_bench(old, _document())
        save_bench(new, _document(label="new", p95s=(25.0, 4.0)))
        lines = []
        assert self._main(["bench", "--compare", old, new], lines) == 1
        assert any("REGRESSION" in line for line in lines)

    def test_compare_bad_input_exits_two(self, tmp_path):
        old = tmp_path / "old.json"
        old.write_text("{not json")
        new = str(tmp_path / "new.json")
        save_bench(new, _document())
        lines = []
        assert self._main(
            ["bench", "--compare", str(old), new], lines) == 2
        assert any("error" in line for line in lines)

    def test_compare_missing_file_exits_two(self, tmp_path):
        lines = []
        code = self._main(
            ["bench", "--compare", str(tmp_path / "none.json"),
             str(tmp_path / "none2.json")], lines)
        assert code == 2

    def test_compare_three_paths_exits_two(self, tmp_path):
        lines = []
        code = self._main(
            ["bench", "--compare", "a.json", "b.json", "c.json"], lines)
        assert code == 2


def test_committed_seed_baseline_is_valid():
    """The baseline the CI perf-smoke job gates against must load."""
    import pathlib

    path = (pathlib.Path(__file__).parent.parent
            / "benchmarks" / "baseline" / "BENCH_seed.json")
    document = load_bench(str(path))
    assert document["label"] == "seed"
    assert document["quick"] is True
    names = {w["name"] for w in document["workloads"]}
    assert {"paper/paint", "paper/geometry", "paper/bcl"} <= names
    assert document["repeated"]["speedup"] >= 2.0
