"""Batched execution: ``complete_many`` and its IDE/CLI wiring.

A batch warms the indexes once and shares the cross-query cache, so a
repeated query inside one batch must cost fewer expansion steps than
running it cold twice — the headline property of the performance layer
(docs/PERFORMANCE.md).
"""

from repro import CompletionEngine, EngineConfig, parse
from repro.engine.completer import CompletionRequest
from repro.ide.session import CompletionSession
from repro.ide.workspace import Workspace


def _paint():
    workspace = Workspace.builtin("paint")
    context = workspace.context(locals={
        "img": workspace.resolve_type("PaintDotNet.Document"),
        "size": workspace.resolve_type("System.Drawing.Size"),
    })
    return workspace, context


def _requests(context, sources):
    return [
        CompletionRequest(pe=parse(source, context), context=context)
        for source in sources
    ]


def _keys(outcome):
    return [(c.score, c.expr.key()) for c in outcome.completions]


class TestCompleteMany:
    def test_batch_matches_sequential_queries(self):
        workspace, context = _paint()
        sources = ["?({img, size})", "img.?*f", "size := ?"]
        batch = workspace.complete_many(_requests(context, sources))

        fresh = CompletionEngine(
            workspace.ts, config=EngineConfig(enable_cache=False))
        for source, outcome in zip(sources, batch):
            pe = parse(source, context)
            assert _keys(outcome) == _keys(
                fresh.complete_query(pe, context))

    def test_repeated_query_in_batch_beats_two_cold_runs(self):
        """The ISSUE's acceptance property: a two-query batch of the same
        query performs strictly fewer expansion steps than two cold
        runs."""
        workspace, context = _paint()
        source = "?({img, size})"

        cold_engine = CompletionEngine(
            workspace.ts, config=EngineConfig(enable_cache=False))
        pe = parse(source, context)
        cold_steps = sum(
            cold_engine.complete_query(pe, context).steps for _ in range(2))

        batch = workspace.complete_many(_requests(context, [source, source]))
        batch_steps = sum(outcome.steps for outcome in batch)

        assert batch_steps < cold_steps
        assert _keys(batch[0]) == _keys(batch[1])
        assert batch[1].cached
        assert batch[1].steps == 0

    def test_parallel_batch_matches_sequential_batch(self):
        workspace, context = _paint()
        sources = ["?", "?({img, size})", "img.?*f", "img.?m", "size := ?"]
        sequential = workspace.complete_many(_requests(context, sources))

        fresh = Workspace.builtin("paint")
        fresh_context = fresh.context(locals={
            "img": fresh.resolve_type("PaintDotNet.Document"),
            "size": fresh.resolve_type("System.Drawing.Size"),
        })
        parallel = fresh.complete_many(
            _requests(fresh_context, sources), parallelism=4)

        assert [_keys(o) for o in sequential] == [_keys(o) for o in parallel]

    def test_budget_parameters_build_fresh_budgets(self):
        workspace, context = _paint()
        request = CompletionRequest(
            pe=parse("?({img, size})", context), context=context,
            max_steps=5,
        )
        outcome, = workspace.complete_many([request])
        assert outcome.truncated == "budget"
        assert outcome.steps <= 6

    def test_empty_batch(self):
        workspace, _context = _paint()
        assert workspace.complete_many([]) == []


class TestSessionQueryMany:
    def test_query_many_matches_query(self):
        workspace, _ = _paint()
        session = CompletionSession(workspace)
        session.declare("img", "PaintDotNet.Document")
        sources = ["?({img})", "img.?*f"]
        records = session.query_many(sources)

        single = CompletionSession(
            Workspace.builtin("paint", config=EngineConfig(enable_cache=False))
        )
        single.declare("img", "PaintDotNet.Document")
        for source, record in zip(sources, records):
            expected = single.query(source)
            assert [s.text for s in record.suggestions] == \
                [s.text for s in expected.suggestions]

    def test_query_many_reports_parse_errors_in_place(self):
        workspace, _ = _paint()
        session = CompletionSession(workspace)
        records = session.query_many(["?", "((", "?"])
        assert records[0].error is None
        assert records[1].error is not None
        assert records[2].error is None
        assert len(session.history) == 3

    def test_query_many_extends_history_in_order(self):
        workspace, _ = _paint()
        session = CompletionSession(workspace)
        session.query_many(["?", "?"])
        assert [record.source for record in session.history] == ["?", "?"]


class TestCliBatch:
    def _main(self, argv, lines):
        from repro.__main__ import main

        return main(argv, write=lines.append)

    def test_multiple_queries_one_invocation(self):
        lines = []
        code = self._main(
            ["complete", "--universe", "paint",
             "--let", "img=PaintDotNet.Document", "?({img})", "img.?*f"],
            lines)
        assert code == 0
        text = "\n".join(lines)
        assert "pe> ?({img})" in text
        assert "pe> img.?*f" in text

    def test_single_query_keeps_plain_output(self):
        lines = []
        code = self._main(
            ["complete", "--universe", "paint", "?"], lines)
        assert code == 0
        assert not any(line.startswith("pe>") for line in lines)

    def test_parse_error_in_batch_exits_one(self):
        lines = []
        code = self._main(
            ["complete", "--universe", "paint", "?", "(("], lines)
        assert code == 1
        assert any("parse error" in line for line in lines)
