"""Code-model lint: structural diagnostics over universes (RA00x)."""

from __future__ import annotations

import pytest

from repro import TypeDef, TypeKind, TypeSystem
from repro.analysis import (
    CODES,
    Severity,
    has_errors,
    lint_type_system,
    run_sanitizer_probes,
)
from repro.codemodel import Field, LibraryBuilder, Method, Parameter
from repro.engine.index import MethodIndex
from repro.ide.workspace import Workspace


def codes(diagnostics):
    return [d.code for d in diagnostics]


@pytest.fixture
def ts():
    return TypeSystem()


class TestCleanUniverses:
    @pytest.mark.parametrize("key", sorted(Workspace.BUILTIN))
    def test_builtin_universes_have_no_errors(self, key):
        workspace = Workspace.builtin(key)
        diagnostics = workspace.lint()
        assert not has_errors(diagnostics), [d.render() for d in diagnostics]

    def test_fresh_type_system_is_clean(self, ts):
        assert lint_type_system(ts) == []

    def test_diagnostics_are_sorted_errors_first(self, ts):
        a = ts.register(TypeDef("A", "N"))
        a.base = a  # RA001 error
        ts.register(TypeDef("Orphan", "N"))  # RA005 info
        result = lint_type_system(ts)
        severities = [d.severity.order for d in result]
        assert severities == sorted(severities)


class TestCycles:
    def test_two_type_cycle(self, ts):
        a = ts.register(TypeDef("A", "N"))
        b = ts.register(TypeDef("B", "N"))
        a.base = b
        b.base = a
        result = lint_type_system(ts)
        assert "RA001" in codes(result)
        [cycle] = [d for d in result if d.code == "RA001"]
        assert cycle.severity is Severity.ERROR
        assert "N.A" in cycle.message and "N.B" in cycle.message
        # cycle members are not double-reported as unrooted (RA004)
        assert "RA004" not in codes(result)

    def test_self_loop(self, ts):
        a = ts.register(TypeDef("A", "N"))
        a.base = a
        assert "RA001" in codes(lint_type_system(ts))

    def test_interface_cycle(self, ts):
        lib = LibraryBuilder(ts)
        i1 = lib.iface("N.I1")
        i2 = lib.iface("N.I2")
        i1.interfaces = (i2,)
        i2.interfaces = (i1,)
        assert "RA001" in codes(lint_type_system(ts))


class TestEdges:
    def test_non_interface_in_interface_list(self, ts):
        lib = LibraryBuilder(ts)
        not_iface = lib.cls("N.NotAnIface")
        thing = lib.cls("N.Thing")
        thing.interfaces = (not_iface,)
        result = lint_type_system(ts)
        assert "RA002" in codes(result)

    def test_interface_as_base(self, ts):
        lib = LibraryBuilder(ts)
        iface = lib.iface("N.IFace")
        thing = lib.cls("N.Thing")
        thing.base = iface
        assert "RA002" in codes(lint_type_system(ts))

    def test_unregistered_base(self, ts):
        stray = TypeDef("Stray", "N")  # never registered
        thing = ts.register(TypeDef("Thing", "N"))
        thing.base = stray
        result = lint_type_system(ts)
        assert any(
            d.code == "RA002" and "unregistered" in d.message for d in result
        )


class TestSignaturesAndIndex:
    def test_duplicate_method_signature(self, ts):
        lib = LibraryBuilder(ts)
        thing = lib.cls("N.Thing")
        thing.add_method(Method("M", None, params=(
            Parameter("x", ts.primitive("int")),)))
        thing.add_method(Method("M", None, params=(
            Parameter("y", ts.primitive("int")),)))
        result = lint_type_system(ts)
        [dup] = [d for d in result if d.code == "RA003"]
        assert "declared 2 times" in dup.message
        assert dup.location == "N.Thing.M"

    def test_overloads_are_not_duplicates(self, ts):
        lib = LibraryBuilder(ts)
        thing = lib.cls("N.Thing")
        thing.add_method(Method("M", None, params=(
            Parameter("x", ts.primitive("int")),)))
        thing.add_method(Method("M", None, params=(
            Parameter("x", ts.string_type),)))
        assert "RA003" not in codes(lint_type_system(ts))

    def test_stale_index_reported(self, ts):
        lib = LibraryBuilder(ts)
        thing = lib.cls("N.Thing")
        index = MethodIndex(ts)
        thing.add_method(Method("Late", None))
        # defeat the auto-refresh to simulate a stale snapshot
        index.built_version = ts.version
        result = lint_type_system(ts, index=index)
        assert any(
            d.code == "RA006" and "Late" in d.message for d in result
        )


class TestReachabilityAndOrphans:
    def test_type_based_on_a_cycle_cannot_reach_object(self, ts):
        a = ts.register(TypeDef("A", "N"))
        b = ts.register(TypeDef("B", "N"))
        c = ts.register(TypeDef("C", "N"))
        a.base = b
        b.base = a
        c.base = a  # C is not on the cycle but its chain never roots
        result = lint_type_system(ts)
        assert "RA001" in codes(result)
        [unrooted] = [d for d in result if d.code == "RA004"]
        assert unrooted.location == "N.C"

    def test_orphan_type_is_info(self, ts):
        ts.register(TypeDef("Lonely", "N"))
        [orphan] = [
            d for d in lint_type_system(ts) if d.code == "RA005"
        ]
        assert orphan.severity is Severity.INFO
        assert orphan.location == "N.Lonely"

    def test_referenced_type_is_not_orphan(self, ts):
        lib = LibraryBuilder(ts)
        used = lib.cls("N.Used")
        owner = lib.cls("N.Owner")
        owner.add_field(Field("F", used))
        assert all(
            d.location != "N.Used"
            for d in lint_type_system(ts)
            if d.code == "RA005"
        )


class TestPartition:
    def _chained_assign_project(self, ts):
        """static M(a, b, c, d) { a := b; b := c; c := d; } — every
        abstract-type term collapses into one class."""
        from repro.corpus.program import AssignStatement, MethodImpl, Project
        from repro.lang.ast import Assign, Var

        lib = LibraryBuilder(ts)
        holder = lib.cls("N.Holder")
        integer = ts.primitive("int")
        method = holder.add_method(Method(
            "M", None, is_static=True,
            params=tuple(Parameter(n, integer) for n in "abcd"),
        ))
        var = {name: Var(name, integer) for name in "abcd"}
        impl = MethodImpl(method, body=[
            AssignStatement(Assign(var["a"], var["b"])),
            AssignStatement(Assign(var["b"], var["c"])),
            AssignStatement(Assign(var["c"], var["d"])),
        ])
        project = Project("overmerged", ts)
        project.add_impl(impl)
        return project

    def test_overmerged_partition_warns(self, ts):
        project = self._chained_assign_project(ts)
        [warning] = [
            d for d in lint_type_system(ts, project=project)
            if d.code == "RA007"
        ]
        assert warning.severity is Severity.WARNING
        assert warning.location == "overmerged"

    def test_healthy_partition_is_silent(self, tiny_project):
        assert all(
            d.code != "RA007"
            for d in lint_type_system(tiny_project.ts, project=tiny_project)
        )


class TestProbesAndCatalogue:
    def test_probe_runner_clean_on_geometry(self, geometry_engine):
        assert run_sanitizer_probes(geometry_engine) == []

    def test_workspace_lint_with_sanitize(self):
        workspace = Workspace.builtin("geometry")
        diagnostics = workspace.lint(sanitize=True)
        assert not has_errors(diagnostics)

    def test_every_code_documented(self):
        for code, (severity, description) in CODES.items():
            assert code.startswith("RA")
            assert isinstance(severity, Severity)
            assert description
