"""Tests (incl. property-based) for the union-find."""

from hypothesis import given, strategies as st

from repro.analysis import UnionFind


class TestBasics:
    def test_fresh_keys_are_separate(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert not uf.same("a", "b")
        assert len(uf) == 2

    def test_find_unknown_is_none(self):
        uf = UnionFind()
        assert uf.find("ghost") is None
        assert "ghost" not in uf

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.same("a", "b")

    def test_union_adds_keys(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert "a" in uf and "b" in uf

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")

    def test_same_requires_both_present(self):
        uf = UnionFind()
        uf.add("a")
        assert not uf.same("a", "missing")

    def test_add_is_idempotent(self):
        uf = UnionFind()
        first = uf.add("a")
        second = uf.add("a")
        assert first == second
        assert len(uf) == 1

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        groups = sorted(sorted(g) for g in uf.groups().values())
        assert groups == [["a", "b"], ["c"]]

    def test_tuple_keys(self):
        uf = UnionFind()
        uf.union(("local", 1, "x"), ("param", 2, 0))
        assert uf.same(("local", 1, "x"), ("param", 2, 0))


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60
    )
)
def test_matches_naive_partition(unions):
    """Union-find agrees with a naive set-merging implementation."""
    uf = UnionFind()
    naive = {}  # element -> frozenset id via repeated merging

    def naive_group(x):
        return naive.setdefault(x, {x})

    for a, b in unions:
        uf.union(a, b)
        group_a, group_b = naive_group(a), naive_group(b)
        if group_a is not group_b:
            merged = group_a | group_b
            for member in merged:
                naive[member] = merged

    keys = sorted(naive)
    for x in keys:
        for y in keys:
            assert uf.same(x, y) == (naive[x] is naive[y])
