"""Engine vs. the Figure 6 semantics oracle.

For a battery of queries across universes, every emitted completion must:

1. be a complete expression,
2. type-check (``well_typed``),
3. be derivable from the query by the Figure 6 rewrite rules,
4. carry a score equal to the standalone ranking function's score,
5. arrive in non-decreasing score order.
"""

import pytest

from repro import Context, CompletionEngine, Ranker, parse, to_source
from repro.lang import derivable, is_complete, well_typed

PAINT_QUERIES = [
    "?({img, size})",
    "?({img})",
    "?({size, img})",
    "img.?m",
    "img.?*f",
    "?",
    "?({img.?*m, size})",
]

GEOMETRY_QUERIES = [
    "Distance(point, ?)",
    "point.?*m >= this.?*m",
    "point.?f := this.Center.?f",
    "this.?*m",
    "shapeStyle.?m",
    "?({point, this.Center})",
    "point.X >= this.?*m",
]


def check_completions(engine, context, source, n=25):
    pe = parse(source, context)
    ranker = Ranker(context, engine.config.ranking)
    completions = engine.complete(pe, context, n=n)
    assert completions, "no completions for {!r}".format(source)
    previous_score = None
    for completion in completions:
        expr = completion.expr
        label = "{!r} -> {}".format(source, to_source(expr))
        assert is_complete(expr), label
        assert well_typed(expr, context.ts), label
        assert derivable(pe, expr, context), label
        assert completion.score == ranker.score(expr), label
        if previous_score is not None:
            assert completion.score >= previous_score, label
        previous_score = completion.score


@pytest.mark.parametrize("source", PAINT_QUERIES)
def test_paint_queries(paint, paint_engine, paint_context, source):
    check_completions(paint_engine, paint_context, source)


@pytest.mark.parametrize("source", GEOMETRY_QUERIES)
def test_geometry_queries(geometry, geometry_engine, geometry_context, source):
    check_completions(geometry_engine, geometry_context, source)


def test_tiny_project_sites(tiny_project):
    """Replay real corpus queries through the oracle: strip each call's
    name and check the completion stream invariants."""
    from repro.eval import queries

    engine = CompletionEngine(tiny_project.ts)
    checked = 0
    for impl, _index, call in tiny_project.iter_calls():
        if call.method.arity < 2:
            continue
        context = impl.context(tiny_project.ts)
        ranker = Ranker(context, engine.config.ranking)
        subset = queries.method_query_subsets(call)[0]
        pe = queries.unknown_call_query(subset)
        previous = None
        for completion in engine.complete(pe, context, n=10):
            assert well_typed(completion.expr, tiny_project.ts)
            assert derivable(pe, completion.expr, context)
            assert completion.score == ranker.score(completion.expr)
            if previous is not None:
                assert completion.score >= previous
            previous = completion.score
        checked += 1
        if checked >= 25:
            break
    assert checked > 0
