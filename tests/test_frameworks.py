"""Direct tests of the hand-built anchor frameworks."""

import pytest

from repro import Context, CompletionEngine, TypeSystem, parse, to_source
from repro.corpus.frameworks import (
    build_banshee,
    build_familyshow,
    build_gnomedo,
    build_system_core,
    build_wix,
)


class TestSystemCore:
    @pytest.fixture(scope="class")
    def core(self):
        ts = TypeSystem()
        return build_system_core(ts)

    def test_paper_io_apis_present(self, core):
        ts = core.ts
        path = ts.get("System.IO.Path")
        assert path.declared_methods_named("Combine")
        assert ts.get("System.IO.Directory").declared_methods_named("Exists")
        assert ts.get("System.Environment").declared_methods_named(
            "GetFolderPath")

    def test_datetime_comparable(self, core):
        assert core.ts.comparable(core.datetime, core.datetime)
        assert not core.ts.comparable(core.datetime, core.timespan)

    def test_collections_hierarchy(self, core):
        ts = core.ts
        assert ts.implicitly_converts(core.list_type, core.ilist)
        assert ts.implicitly_converts(core.list_type, core.ienumerable)
        assert ts.type_distance(core.list_type, core.ienumerable) == 3

    def test_object_methods_exist(self, core):
        names = [m.name for m in core.ts.object_type.methods]
        assert "ToString" in names and "GetHashCode" in names


class TestWixAnchor:
    def test_pipeline_types(self):
        ts = TypeSystem()
        wix = build_wix(ts)
        compile_m = wix.compiler.declared_methods_named("Compile")[0]
        assert compile_m.return_type is wix.intermediate
        link = wix.linker.declared_methods_named("Link")[0]
        assert link.params[0].type is wix.intermediate

    def test_row_navigation(self):
        """`.?m` surfaces zero-argument methods like GetPrimaryKey (but not
        CreateRow, which takes a parameter)."""
        ts = TypeSystem()
        wix = build_wix(ts)
        ctx = Context(ts, locals={"row": wix.row})
        engine = CompletionEngine(ts)
        results = engine.complete(parse("row.?m", ctx), ctx, n=10)
        texts = [to_source(c.expr) for c in results]
        assert any("GetPrimaryKey" in t for t in texts)
        assert not any("CreateRow" in t for t in texts)


class TestMediaAnchors:
    def test_banshee_track_model(self):
        ts = TypeSystem()
        banshee = build_banshee(ts)
        names = {p.name for p in banshee.track.properties}
        assert {"TrackTitle", "Album", "Artist", "Duration"} <= names

    def test_banshee_service_static_chain(self):
        """ServiceManager.PlayerEngine.CurrentTrack is reachable from a ?"""
        ts = TypeSystem()
        banshee = build_banshee(ts)
        ctx = Context(ts)
        engine = CompletionEngine(ts)
        results = engine.complete(
            parse("?", ctx), ctx, n=200, expected_type=banshee.track
        )
        texts = [to_source(c.expr) for c in results]
        assert any("ServiceManager.PlayerEngine.CurrentTrack" in t
                   for t in texts)

    def test_gnomedo_interface(self):
        ts = TypeSystem()
        gnomedo = build_gnomedo(ts)
        element = ts.get("Do.Universe.Element")
        assert ts.implicitly_converts(element, gnomedo.item)
        act = gnomedo.act
        assert ts.implicitly_converts(act, gnomedo.item)


class TestFamilyShowAnchor:
    def test_person_model(self):
        ts = TypeSystem()
        fs = build_familyshow(ts)
        names = {p.name for p in fs.person.properties}
        assert {"FirstName", "BirthDate", "Gender"} <= names

    def test_birthdate_comparisons_possible(self):
        ts = TypeSystem()
        fs = build_familyshow(ts)
        ctx = Context(ts, locals={"a": fs.person, "b": fs.person})
        engine = CompletionEngine(ts)
        pe = parse("a.?m >= b.?m", ctx)
        results = engine.complete(pe, ctx, n=10)
        texts = [to_source(c.expr) for c in results]
        assert any("BirthDate" in t for t in texts)
        # same-name pairs first
        lhs, rhs = texts[0].split(" >= ")
        assert lhs.rsplit(".", 1)[-1] == rhs.rsplit(".", 1)[-1]
