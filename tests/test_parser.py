"""Unit tests for the partial-expression parser."""

import pytest

from repro import Context, TypeSystem, parse
from repro.codemodel import LibraryBuilder
from repro.lang import (
    Assign,
    Call,
    Compare,
    FieldAccess,
    Hole,
    KnownCall,
    Literal,
    ParseError,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    Unfilled,
    UnknownCall,
    Var,
)


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    point = lib.struct("Geo.Point")
    lib.prop(point, "X", ts.primitive("double"))
    lib.field(point, "Origin", point, static=True)
    lib.method(point, "Length", returns=ts.primitive("double"))
    seg = lib.cls("Geo.Segment")
    lib.prop(seg, "P1", point)
    math = lib.cls("Geo.Math")
    lib.static_method(math, "Distance", returns=ts.primitive("double"),
                      params=[("a", point), ("b", point)])
    context = Context(ts, locals={"p": point, "seg": seg}, this_type=seg)
    return ts, context, point, seg


class TestPrimaries:
    def test_hole(self, world):
        _ts, ctx, *_ = world
        assert isinstance(parse("?", ctx), Hole)

    def test_ignore_zero(self, world):
        _ts, ctx, *_ = world
        assert isinstance(parse("0", ctx), Unfilled)

    def test_local_var(self, world):
        _ts, ctx, point, _seg = world
        expr = parse("p", ctx)
        assert expr == Var("p", point)

    def test_this(self, world):
        _ts, ctx, _point, seg = world
        assert parse("this", ctx) == Var("this", seg)

    def test_number_literal(self, world):
        _ts, ctx, *_ = world
        expr = parse("42", ctx)
        assert isinstance(expr, Literal) and expr.value == 42

    def test_float_literal(self, world):
        _ts, ctx, *_ = world
        expr = parse("4.5", ctx)
        assert isinstance(expr, Literal) and expr.value == 4.5

    def test_string_literal(self, world):
        _ts, ctx, *_ = world
        expr = parse('"hi"', ctx)
        assert isinstance(expr, Literal) and expr.value == "hi"

    def test_keywords(self, world):
        _ts, ctx, *_ = world
        assert parse("null", ctx).value is None
        assert parse("true", ctx).value is True
        assert parse("false", ctx).value is False


class TestLookups:
    def test_instance_field(self, world):
        _ts, ctx, point, _seg = world
        expr = parse("p.X", ctx)
        assert isinstance(expr, FieldAccess)
        assert expr.member.name == "X"

    def test_chain_through_this(self, world):
        _ts, ctx, *_ = world
        expr = parse("this.P1.X", ctx)
        assert isinstance(expr, FieldAccess)
        assert expr.member.name == "X"
        assert expr.base.member.name == "P1"

    def test_static_field_by_full_name(self, world):
        _ts, ctx, point, _seg = world
        expr = parse("Geo.Point.Origin", ctx)
        assert isinstance(expr, FieldAccess)
        assert expr.member.is_static

    def test_static_field_by_simple_type_name(self, world):
        _ts, ctx, *_ = world
        expr = parse("Point.Origin", ctx)
        assert expr.member.name == "Origin"

    def test_zero_arg_call(self, world):
        _ts, ctx, *_ = world
        expr = parse("p.Length()", ctx)
        assert isinstance(expr, Call)
        assert expr.method.name == "Length"

    def test_unknown_member_errors(self, world):
        _ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("p.Nope", ctx)

    def test_unknown_name_errors(self, world):
        _ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("mystery", ctx)


class TestSuffixHoles:
    @pytest.mark.parametrize("suffix,methods,star", [
        (".?f", False, False),
        (".?*f", False, True),
        (".?m", True, False),
        (".?*m", True, True),
    ])
    def test_suffix_forms(self, world, suffix, methods, star):
        _ts, ctx, point, _seg = world
        expr = parse("p" + suffix, ctx)
        assert isinstance(expr, SuffixHole)
        assert expr.methods is methods
        assert expr.star is star
        assert expr.base == Var("p", point)

    def test_suffix_after_lookup(self, world):
        _ts, ctx, *_ = world
        expr = parse("this.P1.?*m", ctx)
        assert isinstance(expr, SuffixHole)
        assert expr.base.member.name == "P1"


class TestCalls:
    def test_unknown_call(self, world):
        _ts, ctx, point, seg = world
        expr = parse("?({p, seg})", ctx)
        assert isinstance(expr, UnknownCall)
        assert expr.args == (Var("p", point), Var("seg", seg))

    def test_unknown_call_with_partial_args(self, world):
        _ts, ctx, *_ = world
        expr = parse("?({p.?*m, seg})", ctx)
        assert isinstance(expr.args[0], SuffixHole)

    def test_bare_name_known_call(self, world):
        _ts, ctx, *_ = world
        expr = parse("Distance(p, ?)", ctx)
        assert isinstance(expr, KnownCall)
        assert expr.name == "Distance"
        assert isinstance(expr.args[1], Hole)

    def test_complete_call_resolves_to_call(self, world):
        _ts, ctx, *_ = world
        expr = parse("Geo.Math.Distance(p, p)", ctx)
        assert isinstance(expr, Call)

    def test_instance_call_with_hole_arg(self, world):
        ts, ctx, point, _seg = world
        lib = LibraryBuilder(ts)
        lib.method(point, "MoveTo", params=[("target", point)])
        ctx2 = Context(ts, locals=dict(ctx.locals))
        expr = parse("p.MoveTo(?)", ctx2)
        assert isinstance(expr, KnownCall)
        assert expr.args[0] == Var("p", point)

    def test_unknown_method_name_errors(self, world):
        _ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("Nonexistent(p)", ctx)


class TestBinary:
    def test_complete_compare(self, world):
        _ts, ctx, *_ = world
        expr = parse("p.X >= this.P1.X", ctx)
        assert isinstance(expr, Compare)
        assert expr.op == ">="

    def test_partial_compare(self, world):
        _ts, ctx, *_ = world
        expr = parse("p.?*m >= this.?*m", ctx)
        assert isinstance(expr, PartialCompare)
        assert isinstance(expr.lhs, SuffixHole)

    def test_complete_assign(self, world):
        _ts, ctx, *_ = world
        expr = parse("p.X := this.P1.X", ctx)
        assert isinstance(expr, Assign)

    def test_assign_accepts_equals(self, world):
        _ts, ctx, *_ = world
        assert isinstance(parse("p.X = this.P1.X", ctx), Assign)

    def test_partial_assign(self, world):
        _ts, ctx, *_ = world
        expr = parse("p.?f := ?", ctx)
        assert isinstance(expr, PartialAssign)
        assert isinstance(expr.rhs, Hole)


class TestErrors:
    def test_unexpected_character(self, world):
        _ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("p @ q", ctx)

    def test_trailing_input(self, world):
        _ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("p p", ctx)

    def test_unclosed_call(self, world):
        _ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("Distance(p", ctx)

    def test_type_name_alone_is_not_expression(self, world):
        _ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("Geo.Point", ctx)
