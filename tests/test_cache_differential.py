"""Differential tests: the cross-query cache must be invisible.

For any query, a cache-enabled engine must return the exact same
``(score, expr)`` sequence as a cache-disabled one — over every builtin
universe, after type-system mutations (version-counter invalidation),
and under step-budget truncation (where budgeted queries bypass the
stream caches but still share indexes).  docs/PERFORMANCE.md documents
the contract these tests pin down.
"""

from hypothesis import given, settings, strategies as st

from repro import (
    CompletionEngine,
    Context,
    EngineConfig,
    LibraryBuilder,
    QueryBudget,
    TypeSystem,
    parse,
)
from repro.corpus.frameworks import (
    build_geometry,
    build_paintdotnet,
    build_system_core,
)


def _universe(name):
    ts = TypeSystem()
    if name == "paint":
        lib = build_paintdotnet(ts)
        context = Context(ts, locals={"img": lib.document, "size": lib.size})
    elif name == "geometry":
        lib = build_geometry(ts)
        context = Context(
            ts,
            locals={"point": lib.point, "shapeStyle": lib.shape_style},
            this_type=lib.ellipse_arc,
        )
    else:
        lib = build_system_core(ts)
        context = Context(
            ts, locals={"now": lib.datetime, "span": lib.timespan}
        )
    return ts, context


_QUERIES = {
    "paint": ["?", "?({img, size})", "?({img})", "img.?*f", "img.?m",
              "size := ?"],
    "geometry": ["?", "?({point, shapeStyle})", "point.?*m", "this.?f",
                 "point.?*m >= this.?*m", "? := ?"],
    "bcl": ["?", "?({now, span})", "now.?*f", "now.?m",
            "now.?*m >= now.?*m"],
}

# one persistent cached engine per universe: Hypothesis replays many
# examples against it, so later examples hit a genuinely warm cache
_STATE = {}
for _name in _QUERIES:
    _ts, _context = _universe(_name)
    _STATE[_name] = (
        _context,
        CompletionEngine(_ts),
        CompletionEngine(_ts, config=EngineConfig(enable_cache=False)),
    )


def _sequence(engine, pe, context, n, budget=None):
    outcome = engine.complete_query(pe, context, n=n, budget=budget)
    return [(c.score, c.expr.key()) for c in outcome.completions]


@settings(max_examples=120, deadline=None)
@given(
    st.sampled_from(sorted(_QUERIES)),
    st.data(),
    st.integers(1, 15),
)
def test_cache_is_invisible_on_builtin_universes(name, data, n):
    context, cached, uncached = _STATE[name]
    source = data.draw(st.sampled_from(_QUERIES[name]))
    pe = parse(source, context)
    assert _sequence(cached, pe, context, n) == \
        _sequence(uncached, pe, context, n), source


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(sorted(_QUERIES)),
    st.data(),
    st.integers(1, 12),
    st.integers(1, 400),
)
def test_cache_is_invisible_under_step_budgets(name, data, n, max_steps):
    """Budgeted queries bypass the stream caches; the answer prefix must
    still match a cache-free engine given the same budget."""
    context, cached, uncached = _STATE[name]
    source = data.draw(st.sampled_from(_QUERIES[name]))
    pe = parse(source, context)
    # warm the cache so a buggy budgeted path would have entries to
    # wrongly serve from
    cached.complete_query(pe, context, n=n)
    warm = _sequence(cached, pe, context, n,
                     budget=QueryBudget(max_steps=max_steps))
    cold = _sequence(uncached, pe, context, n,
                     budget=QueryBudget(max_steps=max_steps))
    assert warm == cold, source


def _mutable_universe():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    animal = lib.cls("Zoo.Animal")
    lib.prop(animal, "Weight", ts.primitive("double"))
    keeper = lib.cls("Zoo.Keeper")
    lib.method(keeper, "Feed", params=[("animal", animal)])
    context = Context(ts, locals={"animal": animal, "keeper": keeper})
    return ts, lib, animal, keeper, context


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 3), st.sampled_from(["method", "prop", "cls"]))
def test_cache_is_invisible_after_type_mutations(extra_members, kind):
    """Growing the type system must invalidate, not poison, the cache."""
    ts, lib, animal, keeper, context = _mutable_universe()
    cached = CompletionEngine(ts)
    uncached = CompletionEngine(ts, config=EngineConfig(enable_cache=False))
    pe = parse("?({animal})", context)

    before = _sequence(cached, pe, context, 10)
    assert before == _sequence(uncached, pe, context, 10)

    for index in range(extra_members + 1):
        if kind == "method":
            lib.method(keeper, "Groom{}".format(index),
                       params=[("animal", animal)])
        elif kind == "prop":
            lib.prop(animal, "Tag{}".format(index), ts.primitive("int"))
        else:
            extra = lib.cls("Zoo.Extra{}".format(index))
            lib.static_method(extra, "Handle{}".format(index),
                              params=[("animal", animal)])

    after_cached = _sequence(cached, pe, context, 10)
    after_uncached = _sequence(uncached, pe, context, 10)
    assert after_cached == after_uncached
    if kind != "prop":
        # the new members consume the unknown call, so the answer changed
        assert after_cached != before

    snapshot = cached.cache_stats()
    assert snapshot is not None
    assert snapshot["invalidations"] >= 1


def test_cache_stats_report_hits():
    """Sanity: the persistent engines above really did serve from cache."""
    context, cached, _uncached = _STATE["paint"]
    pe = parse("?({img, size})", context)
    cached.complete_query(pe, context, n=10)
    cached.complete_query(pe, context, n=10)
    stats = cached.cache_stats()
    assert stats is not None
    assert stats["hits"] > 0
    assert 0.0 <= stats["hit_rate"] <= 1.0
