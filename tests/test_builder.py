"""Unit tests for the LibraryBuilder DSL."""

import pytest

from repro import TypeKind, TypeSystem
from repro.codemodel import LibraryBuilder


@pytest.fixture
def ts():
    return TypeSystem()


@pytest.fixture
def lib(ts):
    return LibraryBuilder(ts)


class TestTypeDeclarations:
    def test_cls_splits_namespace(self, ts, lib):
        t = lib.cls("A.B.Widget")
        assert t.name == "Widget"
        assert t.namespace == "A.B"
        assert ts.get("A.B.Widget") is t

    def test_cls_global_namespace(self, lib):
        t = lib.cls("Widget")
        assert t.namespace == ""
        assert t.full_name == "Widget"

    def test_struct_bases_value_type(self, ts, lib):
        t = lib.struct("A.Pt")
        assert t.kind is TypeKind.STRUCT
        assert t.base is ts.value_type

    def test_iface(self, lib):
        base = lib.iface("A.IBase")
        derived = lib.iface("A.IDerived", extends=[base])
        assert derived.kind is TypeKind.INTERFACE
        assert derived.interfaces == (base,)

    def test_enum_values_are_static_fields(self, ts, lib):
        e = lib.enum("A.Mode", values=["Fast", "Slow"])
        assert e.kind is TypeKind.ENUM
        assert e.comparable
        names = [f.name for f in e.fields]
        assert names == ["Fast", "Slow"]
        assert all(f.is_static and f.type is e for f in e.fields)

    def test_enum_converts_to_system_enum(self, ts, lib):
        e = lib.enum("A.Mode", values=["On"])
        assert ts.implicitly_converts(e, ts.enum_type)
        assert ts.implicitly_converts(e, ts.object_type)


class TestMemberDeclarations:
    def test_member_on_string_owner_creates_class(self, ts, lib):
        lib.field("A.Auto", "X", ts.primitive("int"))
        assert ts.try_get("A.Auto") is not None

    def test_member_on_string_owner_reuses_existing(self, ts, lib):
        first = lib.cls("A.Owner")
        lib.field("A.Owner", "X", ts.primitive("int"))
        assert first.fields[0].name == "X"

    def test_method_defaults_to_void(self, ts, lib):
        owner = lib.cls("A.Owner")
        method = lib.method(owner, "Run")
        assert method.return_type is None
        assert not method.is_static

    def test_static_method(self, ts, lib):
        owner = lib.cls("A.Owner")
        method = lib.static_method(owner, "Make", returns=owner)
        assert method.is_static
        assert method.declaring_type is owner

    def test_params_accept_tuples(self, ts, lib):
        owner = lib.cls("A.Owner")
        method = lib.method(
            owner, "M", params=[("a", ts.string_type), ("b", owner)]
        )
        assert [p.name for p in method.params] == ["a", "b"]
        assert method.params[1].type is owner
