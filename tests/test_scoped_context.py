"""Tests for statement-scoped contexts (locals live after declaration)."""

import pytest

from repro.frontend import SourceReader

SOURCE = """
namespace S {
    class Box {
        int Size;
        static int Grade(int n);
        void Work(int seed) {
            int early = seed;
            S.Box.Grade(early);
            int late = early;
            S.Box.Grade(late);
        }
    }
}
"""


@pytest.fixture(scope="module")
def impl():
    project = SourceReader.read(SOURCE)
    return project, next(i for i in project.impls if i.method.name == "Work")


class TestLocalsAt:
    def test_params_always_live(self, impl):
        project, work = impl
        assert "seed" in work.locals_at(0)

    def test_declaration_order_respected(self, impl):
        project, work = impl
        # before stmt 0 nothing but the parameter is live
        assert "early" not in work.locals_at(0)
        # after the first LocalDecl, `early` is live; `late` is not yet
        scope = work.locals_at(2)
        assert "early" in scope
        assert "late" not in scope
        # at the last statement everything is live
        assert "late" in work.locals_at(3)

    def test_context_at_matches_locals(self, impl):
        project, work = impl
        ctx = work.context_at(project.ts, 2)
        assert ctx.has_local("early")
        assert not ctx.has_local("late")
        assert ctx.has_local("this")

    def test_full_context_is_superset(self, impl):
        project, work = impl
        full = set(work.context(project.ts).locals)
        for index in range(len(work.body) + 1):
            assert set(work.context_at(project.ts, index).locals) <= full

    def test_scoped_query_excludes_later_locals(self, impl):
        """A completion query at statement 1 cannot see `late`."""
        from repro import CompletionEngine, parse, to_source

        project, work = impl
        ctx = work.context_at(project.ts, 1)
        engine = CompletionEngine(project.ts)
        pe = parse("Grade(?)", ctx)
        texts = [to_source(c.expr) for c in engine.complete(pe, ctx, n=20)]
        assert any("early" in t for t in texts)
        assert not any("late" in t for t in texts)
