"""Query pre-flight analysis (RA02x) and its surfacing points.

Covers the analyzer itself, the engine short-circuit (a proven-empty
query finishes with zero expansion steps), ``CompletionSession.analyze``,
the REPL's ``:lint``, and the ``repro lint`` CLI with its exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro import CompletionEngine, Context, TypeSystem
from repro.__main__ import (
    EXIT_LINT_ERRORS,
    EXIT_OK,
    EXIT_USAGE,
    main as cli_main,
)
from repro.analysis import preflight_query
from repro.codemodel import TypeDef
from repro.engine.budget import QueryBudget
from repro.engine.completer import EngineConfig
from repro.ide.repl import run_repl
from repro.ide.session import CompletionSession
from repro.ide.workspace import Workspace
from repro.lang.parser import parse


def codes(report):
    return [d.code for d in report.diagnostics]


class TestPreflightUnit:
    def test_void_hole_is_unsatisfiable(self, paint, paint_engine,
                                        paint_context):
        pe = parse("?", paint_context)
        report = preflight_query(paint_engine, pe, paint_context,
                                 expected_type=paint.ts.void_type)
        assert report.unsatisfiable
        assert "RA020" in codes(report)
        assert report.has_errors

    def test_plain_hole_is_satisfiable(self, paint_engine, paint_context):
        pe = parse("?", paint_context)
        report = preflight_query(paint_engine, pe, paint_context)
        assert not report.unsatisfiable
        assert "RA020" not in codes(report)

    def test_hole_without_roots_is_unsatisfiable(self):
        ts = TypeSystem()
        engine = CompletionEngine(ts)
        context = Context(ts)
        report = preflight_query(engine, parse("?", context), context)
        assert report.unsatisfiable
        [finding] = [d for d in report.diagnostics if d.code == "RA020"]
        assert "no chain roots" in finding.message

    def test_unknown_scope_type_is_ra021(self, paint, paint_engine):
        stray = TypeDef("Stray", "Nowhere")  # not registered in paint
        context = Context(paint.ts, locals={"ghost": stray})
        report = preflight_query(paint_engine, parse("?", context), context)
        assert "RA021" in codes(report)
        [finding] = [d for d in report.diagnostics if d.code == "RA021"]
        assert finding.location == "ghost"
        # advisory only: an odd scope does not prove emptiness
        assert not report.unsatisfiable or "RA020" in codes(report)

    def test_dead_ranking_terms_reported(self, paint_engine, paint_context):
        # no enclosing type and not a comparison: both terms are inert
        report = preflight_query(paint_engine, parse("?", paint_context),
                                 paint_context)
        locations = [d.location for d in report.diagnostics
                     if d.code == "RA024"]
        assert "ranking.matching_name" in locations
        assert "ranking.in_scope_static" in locations

    def test_comparison_keeps_matching_name_alive(self, paint_engine,
                                                  paint_context):
        report = preflight_query(paint_engine,
                                 parse("img == ?", paint_context),
                                 paint_context)
        assert all(d.location != "ranking.matching_name"
                   for d in report.diagnostics)

    def test_void_suffix_is_unsatisfiable(self, paint, paint_engine,
                                          paint_context):
        pe = parse("img.?*m", paint_context)
        report = preflight_query(paint_engine, pe, paint_context,
                                 expected_type=paint.ts.void_type)
        assert report.unsatisfiable
        assert "RA020" in codes(report)

    def test_impossible_keyword_is_ra023(self, paint_engine, paint_context):
        pe = parse("?({img})", paint_context)
        report = preflight_query(paint_engine, pe, paint_context,
                                 keyword="zzzznosuchmethod")
        assert report.unsatisfiable
        assert "RA023" in codes(report)

    def test_unknown_call_normally_satisfiable(self, paint_engine,
                                               paint_context):
        pe = parse("?({img})", paint_context)
        report = preflight_query(paint_engine, pe, paint_context)
        assert not report.unsatisfiable

    def test_assignment_never_proven_empty(self, paint, paint_engine,
                                           paint_context):
        pe = parse("? := ?", paint_context)
        report = preflight_query(paint_engine, pe, paint_context,
                                 expected_type=paint.ts.void_type)
        assert not report.unsatisfiable


class TestEngineShortCircuit:
    def test_unsatisfiable_query_takes_zero_steps(self, paint, paint_engine,
                                                  paint_context):
        budget = QueryBudget(max_steps=500)
        outcome = paint_engine.complete_query(
            parse("?", paint_context), paint_context,
            expected_type=paint.ts.void_type, budget=budget,
        )
        assert outcome.unsatisfiable
        assert outcome.steps == 0
        assert outcome.completions == []
        assert outcome.preflight is not None
        assert "RA020" in [d.code for d in outcome.preflight.diagnostics]

    def test_short_circuit_without_budget(self, paint, paint_engine,
                                          paint_context):
        outcome = paint_engine.complete_query(
            parse("?", paint_context), paint_context,
            expected_type=paint.ts.void_type,
        )
        assert outcome.unsatisfiable and outcome.steps == 0

    def test_preflight_can_be_disabled(self, paint, paint_context):
        engine = CompletionEngine(paint.ts,
                                  config=EngineConfig(preflight=False))
        outcome = engine.complete_query(
            parse("?", paint_context), paint_context,
            expected_type=paint.ts.void_type,
            budget=QueryBudget(max_steps=500),
        )
        # the search runs (and finds nothing) instead of being skipped
        assert not outcome.unsatisfiable
        assert outcome.steps > 0
        assert outcome.completions == []

    def test_satisfiable_query_is_unaffected(self, paint_engine,
                                             paint_context):
        outcome = paint_engine.complete_query(
            parse("?({img, size})", paint_context), paint_context,
        )
        assert not outcome.unsatisfiable
        assert outcome.preflight is None
        assert outcome.completions


class TestSessionAnalyze:
    def test_parse_error_becomes_ra022(self):
        session = CompletionSession(Workspace.builtin("paint"))
        report = session.analyze("@@")
        [finding] = report.diagnostics
        assert finding.code == "RA022"
        assert finding.span is not None
        assert not report.unsatisfiable

    def test_expected_type_flows_into_analysis(self):
        session = CompletionSession(Workspace.builtin("paint"))
        session.set_expected("void")
        report = session.analyze("?")
        assert report.unsatisfiable
        assert "RA020" in codes(report)

    def test_clean_query_has_no_errors(self):
        session = CompletionSession(Workspace.builtin("paint"))
        session.declare("img", "PaintDotNet.Document")
        report = session.analyze("img.?m")
        assert not report.unsatisfiable
        assert not report.has_errors


class TestReplLint:
    def run(self, lines):
        output = []
        run_repl(Workspace.builtin("paint"), lines, output.append)
        return "\n".join(output)

    def test_lint_universe(self):
        text = self.run([":lint"])
        assert "RA005" in text  # paint has known orphan infos

    def test_lint_query(self):
        text = self.run([":let img PaintDotNet.Document", ":lint img.?m"])
        assert "RA024" in text or "(no findings)" in text

    def test_lint_parse_error(self):
        text = self.run([":lint @@"])
        assert "RA022" in text


class TestCliLint:
    def run(self, argv):
        output = []
        code = cli_main(argv, write=output.append)
        return code, "\n".join(output)

    def test_clean_universe_exits_ok(self):
        code, text = self.run(["lint", "--universe", "paint"])
        assert code == EXIT_OK
        assert "error" not in text.split("RA")[0]

    def test_json_payload_shape(self):
        code, text = self.run(["lint", "--universe", "paint", "--json"])
        assert code == EXIT_OK
        payload = json.loads(text)
        assert payload["universe"] == "paintdotnet"
        assert set(payload["summary"]) == {"error", "warning", "info"}
        for entry in payload["diagnostics"]:
            assert entry["code"].startswith("RA")
            assert entry["severity"] in ("error", "warning", "info")

    def test_sanitize_flag(self):
        code, _text = self.run(
            ["lint", "--universe", "geometry", "--sanitize"])
        assert code == EXIT_OK

    def test_unsatisfiable_query_exits_nonzero(self):
        code, text = self.run([
            "lint", "--universe", "paint", "--query", "?",
            "--expect", "void",
        ])
        assert code == EXIT_LINT_ERRORS
        assert "RA020" in text

    def test_parse_error_exits_nonzero(self):
        code, text = self.run(
            ["lint", "--universe", "paint", "--query", "@@"])
        assert code == EXIT_LINT_ERRORS
        assert "RA022" in text

    def test_unknown_let_type_is_ra021(self):
        code, text = self.run([
            "lint", "--universe", "paint", "--query", "?",
            "--let", "x=No.Such.Type",
        ])
        assert code == EXIT_LINT_ERRORS
        assert "RA021" in text

    def test_missing_source_file_is_usage_error(self, tmp_path):
        code, text = self.run(
            ["lint", "--source", str(tmp_path / "missing.cs")])
        assert code == EXIT_USAGE
        assert "error" in text


class TestCliUnknownUniverse:
    @pytest.mark.parametrize("argv", [
        ["lint", "--universe", "nope"],
        ["complete", "--universe", "nope", "?"],
        ["dump-universe", "--universe", "nope", "-o", "/dev/null"],
    ])
    def test_exit_usage_with_one_line_error(self, argv):
        output = []
        code = cli_main(argv, write=output.append)
        assert code == EXIT_USAGE
        [line] = output
        assert line.startswith("error: unknown universe 'nope'")
        for key in sorted(Workspace.BUILTIN):
            assert key in line
