"""The span-tree profiler: self-time arithmetic and exports.

The profile is pure arithmetic over exported span dicts, so these
tests build synthetic trees with exact timings and assert the numbers
— inclusive vs. self time, the zero clamp for overlapping lazy-stream
children, counter rollups, the phase taxonomy, and the collapsed-stack
flamegraph format (docs/OBSERVABILITY.md).
"""

import pytest

from repro.obs import Profile, profile_traces


def span(span_id, parent, name, start, end, counters=None):
    return {
        "kind": "span",
        "span": span_id,
        "parent": parent,
        "name": name,
        "start_ms": start,
        "end_ms": end,
        "duration_ms": None if end is None else round(end - start, 4),
        "counters": counters or {},
    }


def node(profile, path):
    return {row["path"]: row for row in profile.rows()}[path]


class TestSelfTime:
    def test_self_is_inclusive_minus_direct_children(self):
        profile = Profile().add_trace([
            span(1, None, "query", 0.0, 10.0),
            span(2, 1, "preflight", 0.0, 2.0),
            span(3, 1, "collect", 2.0, 8.0),
        ])
        root = node(profile, "query")
        assert root["inclusive_ms"] == 10.0
        assert root["self_ms"] == pytest.approx(2.0)  # 10 - (2 + 6)
        assert node(profile, "query;preflight")["self_ms"] == 2.0

    def test_overlapping_children_clamp_self_at_zero(self):
        # lazy stream spans overlap their siblings by design: children
        # sum past the parent's extent, and self time must clamp at 0
        profile = Profile().add_trace([
            span(1, None, "query", 0.0, 5.0),
            span(2, 1, "expand:hole", 0.0, 4.0),
            span(3, 1, "dedup", 0.0, 4.0),
        ])
        assert node(profile, "query")["self_ms"] == 0.0

    def test_grandchildren_do_not_reduce_root_self(self):
        profile = Profile().add_trace([
            span(1, None, "query", 0.0, 10.0),
            span(2, 1, "expand:hole", 0.0, 4.0),
            span(3, 2, "root_pool", 0.0, 3.0),
        ])
        assert node(profile, "query")["self_ms"] == pytest.approx(6.0)
        assert node(profile, "query;expand:hole")["self_ms"] == \
            pytest.approx(1.0)

    def test_open_span_counts_calls_but_no_time(self):
        profile = Profile().add_trace([
            span(1, None, "query", 0.0, None, {"steps": 7}),
        ])
        root = node(profile, "query")
        assert root["calls"] == 1
        assert root["inclusive_ms"] == 0.0
        assert root["counters"] == {"steps": 7}


class TestAggregation:
    def test_same_path_sums_across_traces(self):
        profile = Profile()
        for _ in range(3):
            profile.add_trace([
                span(1, None, "query", 0.0, 4.0),
                span(2, 1, "dedup", 1.0, 2.0, {"items": 5}),
            ])
        assert profile.traces == 3
        dedup = node(profile, "query;dedup")
        assert dedup["calls"] == 3
        assert dedup["inclusive_ms"] == pytest.approx(3.0)
        assert dedup["counters"] == {"items": 15}
        assert profile.total_ms == pytest.approx(12.0)

    def test_merge_equals_incremental_aggregation(self):
        trace_a = [span(1, None, "query", 0.0, 4.0),
                   span(2, 1, "collect", 0.0, 1.0, {"items": 2})]
        trace_b = [span(1, None, "parse", 0.0, 0.5),
                   span(2, None, "query", 0.5, 2.5)]
        merged = profile_traces([trace_a]).merge(profile_traces([trace_b]))
        direct = profile_traces([trace_a, trace_b])
        assert merged.traces == direct.traces == 2
        assert merged.to_dict() == direct.to_dict()

    def test_empty_trace_is_ignored(self):
        profile = Profile().add_trace([])
        assert profile.traces == 0
        assert profile.rows() == []


class TestPhaseTotals:
    def test_query_children_and_sibling_roots(self):
        profile = Profile().add_trace([
            span(1, None, "parse", 0.0, 0.5),
            span(2, None, "query", 0.5, 8.5),
            span(3, 2, "expand:hole", 1.0, 4.0),
            span(4, 2, "dedup", 4.0, 6.0),
            span(5, 3, "root_pool", 1.0, 2.0),  # depth 3: not a phase
        ])
        assert profile.phase_totals() == {
            "parse": 0.5,
            "expand:hole": 3.0,
            "dedup": 2.0,
        }


class TestExports:
    def test_collapsed_stack_lines_are_self_time_microseconds(self):
        profile = Profile().add_trace([
            span(1, None, "query", 0.0, 3.0),
            span(2, 1, "collect", 0.0, 1.2),
        ])
        assert profile.to_collapsed() == [
            "query 1800",
            "query;collect 1200",
        ]

    def test_rows_sorted_by_self_time_then_path(self):
        profile = Profile().add_trace([
            span(1, None, "query", 0.0, 10.0),
            span(2, 1, "alpha", 0.0, 3.0),
            span(3, 1, "beta", 3.0, 6.0),
        ])
        paths = [row["path"] for row in profile.rows()]
        assert paths == ["query", "query;alpha", "query;beta"]

    def test_render_includes_header_and_limit(self):
        profile = Profile().add_trace([
            span(1, None, "query", 0.0, 2.0),
            span(2, 1, "dedup", 0.0, 1.0),
        ])
        lines = profile.render(limit=1)
        assert lines[0].startswith("profile: 1 trace")
        assert len(lines) == 3  # summary + column header + 1 row
