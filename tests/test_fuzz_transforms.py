"""Unit tests for the semantic-preserving universe transformations."""

import random

import pytest

from repro.fuzz.transforms import (
    FAMILIES,
    NameMapping,
    apply_transforms,
    transform_names,
)
from repro.ide.workspace import Workspace
from repro.serialize import dump_type_system, load_type_system


@pytest.fixture(scope="module")
def paint_doc():
    return dump_type_system(Workspace.builtin("paint").ts)


class TestNameMapping:
    def test_roundtrip(self):
        mapping = NameMapping(types={"A.B": "X.Y"}, members={"Foo": "Bar"})
        assert mapping.map_type("A.B") == "X.Y"
        assert mapping.unmap_type("X.Y") == "A.B"
        assert mapping.map_member("Foo") == "Bar"
        assert mapping.unmap_member("Bar") == "Foo"

    def test_identity_passthrough(self):
        identity = NameMapping.identity()
        assert identity.map_type("Any.Thing") == "Any.Thing"
        assert identity.unmap_member("whatever") == "whatever"

    def test_compose_chains_maps(self):
        first = NameMapping(types={"A": "B"})
        second = NameMapping(types={"B": "C"})
        composed = first.compose(second)
        assert composed.map_type("A") == "C"
        assert composed.unmap_type("C") == "A"


class TestFamilies:
    def test_registry_names(self):
        assert transform_names() == list(FAMILIES)
        assert set(transform_names()) == {
            "rename_types", "rename_members", "permute_namespaces",
            "reorder_members", "shuffle_interfaces", "split_types",
        }

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_each_family_loads(self, paint_doc, family):
        doc, mapping = apply_transforms(paint_doc, [(family, 42)])
        ts = load_type_system(doc)
        # every base type is reachable through the mapping
        for entry in paint_doc["types"]:
            if entry.get("members_only"):
                continue
            assert ts.try_get(mapping.map_type(entry["full_name"])) is not None

    def test_deterministic(self, paint_doc):
        plan = [("rename_types", 7), ("reorder_members", 9)]
        doc1, map1 = apply_transforms(paint_doc, plan)
        doc2, map2 = apply_transforms(paint_doc, plan)
        assert doc1 == doc2
        assert map1.types == map2.types
        assert map1.members == map2.members

    def test_unknown_family_raises(self, paint_doc):
        with pytest.raises(ValueError, match="unknown transform"):
            apply_transforms(paint_doc, [("not_a_family", 1)])

    def test_member_rename_is_bijection(self, paint_doc):
        _, mapping = apply_transforms(paint_doc, [("rename_members", 3)])
        assert mapping.members
        values = list(mapping.members.values())
        assert len(values) == len(set(values))

    def test_namespace_permutation_freezes_system_root(self, paint_doc):
        _, mapping = apply_transforms(paint_doc, [("permute_namespaces", 5)])
        for original, renamed in mapping.types.items():
            if original.startswith("System."):
                assert renamed.split(".")[0] == "System"

    def test_split_types_adds_empty_shells(self, paint_doc):
        doc, _ = apply_transforms(paint_doc, [("split_types", 11)])
        base_names = {e["full_name"] for e in paint_doc["types"]
                      if not e.get("members_only")}
        added = [e for e in doc["types"]
                 if not e.get("members_only")
                 and e["full_name"] not in base_names]
        assert added
        for entry in added:
            assert entry["fields"] == []
            assert entry["properties"] == []
            assert entry["methods"] == []
            assert entry["base"] in base_names

    def test_reorder_preserves_structural_fingerprint(self, paint_doc):
        # reordering members is invisible to the order-insensitive
        # structural digest — the transformed universe is the same
        # structure, differently spelled out
        doc, _ = apply_transforms(paint_doc, [("reorder_members", 13)])
        assert (load_type_system(doc).fingerprint()
                == load_type_system(paint_doc).fingerprint())

    def test_rename_changes_structural_fingerprint(self, paint_doc):
        doc, _ = apply_transforms(paint_doc, [("rename_types", 13)])
        assert (load_type_system(doc).fingerprint()
                != load_type_system(paint_doc).fingerprint())
