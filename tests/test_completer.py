"""Engine tests: every query form, against the paper's running examples."""

import pytest

from repro import (
    Context,
    CompletionEngine,
    EngineConfig,
    RankingConfig,
    parse,
    to_source,
)
from repro.lang import Call, Compare, FieldAccess, Unfilled, Var


def sources(completions):
    return [to_source(c.expr) for c in completions]


class TestUnknownCalls:
    """Figure 2: ?({img, size}) in the Paint.NET universe."""

    def test_resize_document_is_top_choice(self, paint, paint_engine, paint_context):
        pe = parse("?({img, size})", paint_context)
        top = paint_engine.complete(pe, paint_context, n=10)
        assert top[0].expr.method is paint.resize_document
        assert sources(top)[0] == (
            "PaintDotNet.Actions.CanvasSizeAction.ResizeDocument(img, size, 0, 0)"
        )

    def test_figure2_distractors_appear(self, paint_engine, paint_context):
        pe = parse("?({img, size})", paint_context)
        top = sources(paint_engine.complete(pe, paint_context, n=10))
        assert any("Pair.Create" in s for s in top)
        assert any("ReferenceEquals" in s for s in top)

    def test_extra_params_are_unfilled(self, paint, paint_engine, paint_context):
        pe = parse("?({img})", paint_context)
        for completion in paint_engine.complete(pe, paint_context, n=30):
            expr = completion.expr
            assert isinstance(expr, Call)
            used = [a for a in expr.args if not isinstance(a, Unfilled)]
            assert len(used) == 1

    def test_arguments_may_be_reordered(self, paint, paint_engine, paint_context):
        """?({size, img}) finds ResizeDocument(img, size, ...) too."""
        pe = parse("?({size, img})", paint_context)
        top = paint_engine.complete(pe, paint_context, n=10)
        assert any(c.expr.method is paint.resize_document for c in top)

    def test_scores_nondecreasing(self, paint_engine, paint_context):
        pe = parse("?({img, size})", paint_context)
        completions = paint_engine.complete(pe, paint_context, n=40)
        scores = [c.score for c in completions]
        assert scores == sorted(scores)

    def test_no_duplicate_completions(self, paint_engine, paint_context):
        pe = parse("?({img, size})", paint_context)
        completions = paint_engine.complete(pe, paint_context, n=40)
        keys = [c.expr.key() for c in completions]
        assert len(keys) == len(set(keys))

    def test_expected_return_type_filters(self, paint, paint_engine, paint_context):
        pe = parse("?({img, size})", paint_context)
        completions = paint_engine.complete(
            pe, paint_context, n=20, expected_type=paint.document
        )
        assert completions
        for c in completions:
            assert paint.ts.implicitly_converts(c.expr.type, paint.document)

    def test_expected_void_filters(self, paint, paint_engine, paint_context):
        pe = parse("?({img})", paint_context)
        completions = paint_engine.complete(
            pe, paint_context, n=20, expected_type=paint.ts.void_type
        )
        assert completions
        assert all(c.expr.method.return_type is None for c in completions)

    def test_method_rank(self, paint, paint_engine, paint_context):
        pe = parse("?({img, size})", paint_context)
        rank = paint_engine.method_rank(
            pe, paint_context, paint.resize_document, limit=20
        )
        assert rank == 1


class TestKnownCalls:
    """Figure 3: Distance(point, ?) in the geometry universe."""

    def test_local_is_first(self, geometry, geometry_engine, geometry_context):
        pe = parse("Distance(point, ?)", geometry_context)
        top = sources(geometry_engine.complete(pe, geometry_context, n=10))
        assert top[0] == "DynamicGeometry.Math.Distance(point, point)"

    def test_figure3_chains_found(self, geometry_engine, geometry_context):
        pe = parse("Distance(point, ?)", geometry_context)
        top = sources(geometry_engine.complete(pe, geometry_context, n=10))
        joined = "\n".join(top)
        assert "this.Center" in joined
        assert "InfinitePoint" in joined
        assert "GetSampleGlyph().RenderTransformOrigin" in joined

    def test_all_args_type_check(self, geometry, geometry_engine, geometry_context):
        pe = parse("Distance(point, ?)", geometry_context)
        for c in geometry_engine.complete(pe, geometry_context, n=25):
            assert isinstance(c.expr, Call)
            assert geometry.ts.implicitly_converts(
                c.expr.args[1].type, geometry.point
            )

    def test_rank_of_specific_argument(self, geometry, geometry_engine, geometry_context):
        pe = parse("Distance(point, ?)", geometry_context)
        center = next(
            f for f in geometry.ellipse_arc.fields if f.name == "Center"
        )
        truth = Call(
            geometry.distance,
            (
                Var("point", geometry.point),
                FieldAccess(Var("this", geometry.ellipse_arc), center),
            ),
        )
        rank = geometry_engine.rank_of(pe, geometry_context, truth, limit=20)
        assert rank is not None and rank <= 5


class TestSuffixHoles:
    def test_plain_suffix_includes_base(self, geometry, geometry_engine, geometry_context):
        pe = parse("point.?m", geometry_context)
        top = sources(geometry_engine.complete(pe, geometry_context, n=10))
        assert top[0] == "point"  # suffix omitted is the cheapest completion
        assert "point.X" in top
        assert "point.Y" in top

    def test_f_suffix_excludes_methods(self, geometry, geometry_engine, geometry_context):
        pe = parse("shapeStyle.?f", geometry_context)
        for c in geometry_engine.complete(pe, geometry_context, n=20):
            assert not isinstance(c.expr, Call)

    def test_m_suffix_includes_methods(self, geometry, geometry_engine, geometry_context):
        pe = parse("shapeStyle.?m", geometry_context)
        assert any(
            isinstance(c.expr, Call)
            for c in geometry_engine.complete(pe, geometry_context, n=20)
        )

    def test_star_goes_deeper(self, geometry, geometry_engine, geometry_context):
        pe = parse("this.?*m", geometry_context)
        results = sources(geometry_engine.complete(pe, geometry_context, n=60))
        assert any(s.count(".") >= 2 for s in results)

    def test_nonstar_single_step_only(self, geometry, geometry_engine, geometry_context):
        pe = parse("this.?f", geometry_context)
        for c in geometry_engine.complete(pe, geometry_context, n=30):
            assert to_source(c.expr).count(".") <= 1


class TestHole:
    def test_locals_come_first(self, geometry, geometry_engine, geometry_context):
        pe = parse("?", geometry_context)
        top = sources(geometry_engine.complete(pe, geometry_context, n=3))
        assert set(top[:3]) == {"point", "shapeStyle", "this"}


class TestComparisons:
    """Figure 4: point.?*m >= this.?*m."""

    def test_same_name_lookups_first(self, geometry_engine, geometry_context):
        pe = parse("point.?*m >= this.?*m", geometry_context)
        top = sources(geometry_engine.complete(pe, geometry_context, n=9))
        for s in top:
            left, right = s.split(" >= ")
            assert left.rsplit(".", 1)[-1] == right.rsplit(".", 1)[-1]

    def test_sides_are_comparable(self, geometry, geometry_engine, geometry_context):
        pe = parse("point.?*m >= this.?*m", geometry_context)
        for c in geometry_engine.complete(pe, geometry_context, n=25):
            assert isinstance(c.expr, Compare)
            assert geometry.ts.comparable(
                c.expr.lhs.type, c.expr.rhs.type
            )

    def test_timestamp_pairs_with_timestamp_only(
        self, geometry, geometry_engine, geometry_context
    ):
        """Point.Timestamp (DateTime) may not compare against doubles."""
        pe = parse("point.?*m >= this.?*m", geometry_context)
        for c in geometry_engine.complete(pe, geometry_context, n=40):
            lhs_name = to_source(c.expr.lhs)
            rhs_name = to_source(c.expr.rhs)
            if "Timestamp" in lhs_name:
                assert "Timestamp" in rhs_name


class TestAssignments:
    def test_assignment_completion(self, geometry, geometry_engine, geometry_context):
        pe = parse("point.?f := this.Center.?f", geometry_context)
        top = geometry_engine.complete(pe, geometry_context, n=10)
        assert top
        for c in top:
            assert geometry.ts.implicitly_converts(
                c.expr.rhs.type, c.expr.lhs.type
            )

    def test_lhs_must_be_lvalue(self, geometry, geometry_engine, geometry_context):
        pe = parse("point.?m := this.Center.?m", geometry_context)
        for c in geometry_engine.complete(pe, geometry_context, n=20):
            assert not isinstance(c.expr.lhs, Call)


class TestEngineConfig:
    def test_chain_depth_bound(self, geometry, geometry_context):
        shallow = CompletionEngine(
            geometry.ts, EngineConfig(max_chain_depth=1)
        )
        pe = parse("this.?*m", geometry_context)
        for c in shallow.complete(pe, geometry_context, n=60):
            assert to_source(c.expr).count(".") <= 1

    def test_ranking_config_changes_order(self, paint, paint_context):
        """Without type distance the ranking collapses to depth-only."""
        default = CompletionEngine(paint.ts)
        no_t = CompletionEngine(
            paint.ts, EngineConfig(ranking=RankingConfig.without("ta"))
        )
        pe = parse("?({img, size})", paint_context)
        top_default = [c.expr.method.name for c in default.complete(pe, paint_context, n=5)]
        top_no_t = [c.expr.method.name for c in no_t.complete(pe, paint_context, n=5)]
        assert top_default != top_no_t
