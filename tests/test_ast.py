"""Unit tests for the complete-expression AST."""

import pytest

from repro import TypeSystem
from repro.codemodel import LibraryBuilder
from repro.lang import (
    Assign,
    Call,
    Compare,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
    final_lookup_name,
    is_complete,
    iter_subtree,
)
from repro.lang.partial import Hole, SuffixHole, UnknownCall


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    point = lib.struct("G.Point")
    x = lib.prop(point, "X", ts.primitive("double"))
    origin = lib.field(point, "Origin", point, static=True)
    length = lib.method(point, "Length", returns=ts.primitive("double"))
    dist = lib.static_method(
        point, "Distance", returns=ts.primitive("double"),
        params=[("a", point), ("b", point)])
    return ts, point, x, origin, length, dist


class TestTypes:
    def test_var_type(self, world):
        ts, point, *_ = world
        assert Var("p", point).type is point

    def test_field_access_type(self, world):
        ts, point, x, *_ = world
        expr = FieldAccess(Var("p", point), x)
        assert expr.type.name == "double"

    def test_static_field_access(self, world):
        ts, point, _x, origin, *_ = world
        expr = FieldAccess(TypeLiteral(point), origin)
        assert expr.type is point
        assert expr.children() == ()

    def test_call_type_is_return_type(self, world):
        ts, point, _x, _o, length, _d = world
        expr = Call(length, (Var("p", point),))
        assert expr.type.name == "double"

    def test_unfilled_is_wildcard(self):
        assert Unfilled().type is None

    def test_call_arity_checked(self, world):
        ts, point, _x, _o, _l, dist = world
        with pytest.raises(AssertionError):
            Call(dist, (Var("p", point),))

    def test_assign_type_is_lhs(self, world):
        ts, point, x, *_ = world
        lhs = FieldAccess(Var("p", point), x)
        assign = Assign(lhs, Literal(1.0, ts.primitive("double")))
        assert assign.type is lhs.type

    def test_compare_requires_known_op(self, world):
        ts, point, x, *_ = world
        lhs = FieldAccess(Var("p", point), x)
        with pytest.raises(AssertionError):
            Compare(lhs, lhs, op="<>")


class TestStructuralEquality:
    def test_equal_vars(self, world):
        _ts, point, *_ = world
        assert Var("p", point) == Var("p", point)
        assert hash(Var("p", point)) == hash(Var("p", point))

    def test_different_names_differ(self, world):
        _ts, point, *_ = world
        assert Var("p", point) != Var("q", point)

    def test_nested_equality(self, world):
        _ts, point, x, *_ = world
        a = FieldAccess(Var("p", point), x)
        b = FieldAccess(Var("p", point), x)
        assert a == b
        assert a in {b}

    def test_call_equality_includes_args(self, world):
        _ts, point, _x, _o, _l, dist = world
        p, q = Var("p", point), Var("q", point)
        assert Call(dist, (p, q)) == Call(dist, (p, q))
        assert Call(dist, (p, q)) != Call(dist, (q, p))


class TestDots:
    def test_var_has_no_dots(self, world):
        _ts, point, *_ = world
        assert Var("p", point).own_dots() == 0

    def test_field_access_one_dot(self, world):
        _ts, point, x, *_ = world
        assert FieldAccess(Var("p", point), x).own_dots() == 1

    def test_instance_call_one_dot(self, world):
        _ts, point, _x, _o, length, _d = world
        assert Call(length, (Var("p", point),)).own_dots() == 1

    def test_static_call_no_dots(self, world):
        _ts, point, _x, _o, _l, dist = world
        p = Var("p", point)
        assert Call(dist, (p, p)).own_dots() == 0


class TestHelpers:
    def test_final_lookup_name_field(self, world):
        _ts, point, x, *_ = world
        assert final_lookup_name(FieldAccess(Var("p", point), x)) == "X"

    def test_final_lookup_name_zero_arg_call(self, world):
        _ts, point, _x, _o, length, _d = world
        assert final_lookup_name(Call(length, (Var("p", point),))) == "Length"

    def test_final_lookup_name_none_for_var(self, world):
        _ts, point, *_ = world
        assert final_lookup_name(Var("p", point)) is None

    def test_iter_subtree_preorder(self, world):
        _ts, point, x, *_ = world
        expr = FieldAccess(Var("p", point), x)
        nodes = list(iter_subtree(expr))
        assert nodes[0] is expr
        assert isinstance(nodes[1], Var)

    def test_is_complete(self, world):
        _ts, point, x, *_ = world
        assert is_complete(FieldAccess(Var("p", point), x))
        assert is_complete(Unfilled())
        assert not is_complete(Hole())
        assert not is_complete(SuffixHole(Var("p", point), True, False))
        assert not is_complete(UnknownCall((Hole(),)))
