"""Tests for the Figure 7 ranking function."""

import pytest

from repro import Context, RankingConfig, TypeSystem
from repro.codemodel import LibraryBuilder
from repro.engine.ranking import AbstractTypeOracle, Ranker
from repro.lang import Assign, Call, Compare, FieldAccess, TypeLiteral, Unfilled, Var


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    shape = lib.cls("Geo.Shapes.Shape")
    rect = lib.cls("Geo.Shapes.Rectangle", base=shape)
    lib.prop(rect, "W", ts.primitive("int"))
    lib.prop(rect, "H", ts.primitive("int"))
    lib.prop(shape, "Area", ts.primitive("int"))
    helper = lib.cls("Geo.Shapes.Util.Helper")
    fit = lib.static_method(helper, "Fit", returns=shape,
                            params=[("a", shape), ("b", rect)])
    grow = lib.method(rect, "Grow", returns=rect, params=[("by", ts.primitive("int"))])
    tostr = lib.method(rect, "Describe", returns=ts.string_type)
    far = lib.static_method("Other.Place.Thing", "Consume", returns=None,
                            params=[("a", shape), ("b", rect)])
    return ts, shape, rect, helper, fit, grow, tostr, far


def ranker(ts, config=None, this_type=None, locals=None):
    ctx = Context(ts, locals=locals or {}, this_type=this_type)
    return Ranker(ctx, config)


class TestDepth:
    def test_paper_dot_costs(self, world):
        """dots("this.foo") = 1 -> cost 2; dots("this.bar.ToBaz()") = 2 -> 4."""
        ts, shape, rect, *_ = world
        r = ranker(ts, this_type=rect)
        this = Var("this", rect)
        w = next(p for p in rect.properties if p.name == "W")
        assert r.score(FieldAccess(this, w)) == 2
        tostr = rect.declared_methods_named("Describe")[0]
        area = next(p for p in shape.properties if p.name == "Area")
        # this.Area costs 2 (dot) + 1 (td Rectangle->Shape for the inherited
        # property's declaring type)
        assert r.score(FieldAccess(this, area)) == 3

    def test_zero_arg_instance_call_costs_like_lookup(self, world):
        ts, _shape, rect, _h, _fit, _grow, tostr, _far = world
        r = ranker(ts, this_type=rect)
        call = Call(tostr, (Var("this", rect),))
        assert r.score(call) == 2

    def test_depth_disabled(self, world):
        ts, _shape, rect, *_ = world
        r = ranker(ts, RankingConfig.without("d"), this_type=rect)
        w = next(p for p in rect.properties if p.name == "W")
        assert r.score(FieldAccess(Var("this", rect), w)) == 0

    def test_var_is_free(self, world):
        ts, _shape, rect, *_ = world
        assert ranker(ts).score(Var("r", rect)) == 0


class TestTypeDistanceTerm:
    def test_exact_types_cost_zero_td(self, world):
        ts, shape, rect, helper, fit, *_ = world
        r = ranker(ts, RankingConfig.only("t"))
        call = Call(fit, (Var("s", shape), Var("r", rect)))
        assert r.score(call) == 0

    def test_subtype_arg_costs_distance(self, world):
        ts, shape, rect, helper, fit, *_ = world
        r = ranker(ts, RankingConfig.only("t"))
        call = Call(fit, (Var("r", rect), Var("r", rect)))
        assert r.score(call) == 1  # td(Rectangle, Shape) = 1

    def test_type_incorrect_call_raises(self, world):
        ts, shape, rect, helper, fit, *_ = world
        r = ranker(ts)
        with pytest.raises(ValueError):
            r.score(Call(fit, (Var("s", shape), Var("s", shape))))

    def test_unfilled_costs_no_distance(self, world):
        ts, shape, rect, helper, fit, *_ = world
        r = ranker(ts, RankingConfig.only("t"))
        assert r.score(Call(fit, (Var("s", shape), Unfilled()))) == 0


class TestInScopeStatic:
    def test_every_call_pays_one_except_in_scope_static(self, world):
        ts, shape, rect, helper, fit, grow, *_ = world
        config = RankingConfig.only("s")
        outside = ranker(ts, config, this_type=rect)
        inside = ranker(ts, config, this_type=helper)
        call = Call(fit, (Var("s", shape), Var("r", rect)))
        assert outside.score(call) == 1
        assert inside.score(call) == 0
        instance = Call(grow, (Var("r", rect), Unfilled()))
        assert outside.score(instance) == 1


class TestNamespace:
    def test_same_namespace_bonus(self, world):
        """Shape and Rectangle and the Helper class share Geo.Shapes -> the
        common prefix is 2 segments -> cost 3 - 2 = 1."""
        ts, shape, rect, helper, fit, *_ = world
        r = ranker(ts, RankingConfig.only("n"))
        call = Call(fit, (Var("s", shape), Var("r", rect)))
        assert r.score(call) == 1

    def test_far_namespace_costs_full(self, world):
        ts, shape, rect, _helper, _fit, _g, _t, far = world
        r = ranker(ts, RankingConfig.only("n"))
        call = Call(far, (Var("s", shape), Var("r", rect)))
        assert r.score(call) == 3  # declaring type shares no prefix

    def test_single_nonprimitive_arg_gets_no_similarity(self, world):
        ts, shape, rect, _helper, _fit, grow, *_ = world
        r = ranker(ts, RankingConfig.only("n"))
        call = Call(grow, (Var("r", rect), Var("i", ts.primitive("int"))))
        # only one non-primitive argument -> similarity 0 -> cost 3
        assert r.score(call) == 3


class TestMatchingName:
    def test_same_final_lookup_name_is_free(self, world):
        ts, _shape, rect, *_ = world
        r = ranker(ts, RankingConfig.only("m"))
        w = next(p for p in rect.properties if p.name == "W")
        left = FieldAccess(Var("a", rect), w)
        right = FieldAccess(Var("b", rect), w)
        assert r.score(Compare(left, right, "<")) == 0

    def test_differing_names_cost_three(self, world):
        ts, _shape, rect, *_ = world
        r = ranker(ts, RankingConfig.only("m"))
        w = next(p for p in rect.properties if p.name == "W")
        h = next(p for p in rect.properties if p.name == "H")
        left = FieldAccess(Var("a", rect), w)
        right = FieldAccess(Var("b", rect), h)
        assert r.score(Compare(left, right, "<")) == 3

    def test_constant_side_costs_three(self, world):
        ts, _shape, rect, *_ = world
        r = ranker(ts, RankingConfig.only("m"))
        w = next(p for p in rect.properties if p.name == "W")
        left = FieldAccess(Var("a", rect), w)
        from repro.lang import Literal

        assert r.score(Compare(left, Literal(3, ts.primitive("int")), "<")) == 3

    def test_assignments_have_no_name_term(self, world):
        ts, _shape, rect, *_ = world
        r = ranker(ts, RankingConfig.only("m"))
        w = next(p for p in rect.properties if p.name == "W")
        h = next(p for p in rect.properties if p.name == "H")
        left = FieldAccess(Var("a", rect), w)
        right = FieldAccess(Var("b", rect), h)
        assert r.score(Assign(left, right)) == 0


class TestAbstractTypes:
    class FakeOracle(AbstractTypeOracle):
        """Everything has abstract type 7 -> all matches succeed."""

        def of_expr(self, expr):
            return 7

        def of_param(self, method, index, receiver_type):
            return 7

    def test_null_oracle_charges_every_arg(self, world):
        ts, shape, rect, _h, fit, *_ = world
        ctx = Context(ts)
        r = Ranker(ctx, RankingConfig.only("a"))
        call = Call(fit, (Var("s", shape), Var("r", rect)))
        assert r.score(call) == 2  # both args mismatch (undefined)

    def test_matching_oracle_is_free(self, world):
        ts, shape, rect, _h, fit, *_ = world
        ctx = Context(ts)
        r = Ranker(ctx, RankingConfig.only("a"), self.FakeOracle())
        call = Call(fit, (Var("s", shape), Var("r", rect)))
        assert r.score(call) == 0


class TestConfigLabels:
    def test_labels(self):
        assert RankingConfig().label() == "All"
        assert RankingConfig.without("n").label() == "-n"
        assert RankingConfig.without("at").label() == "-at"
        assert RankingConfig.only("d").label() == "+d"
        assert RankingConfig.only("at").label() == "+at"


class TestExplain:
    def test_breakdown_sums_to_score(self, world):
        ts, shape, rect, helper, fit, grow, tostr, _far = world
        ctx = Context(ts, this_type=rect)
        r = Ranker(ctx)
        exprs = [
            Call(fit, (Var("s", shape), Var("r", rect))),
            FieldAccess(Var("this", rect),
                        next(p for p in rect.properties if p.name == "W")),
            Call(grow, (Var("r", rect), Unfilled())),
        ]
        for expr in exprs:
            breakdown = r.explain(expr)
            assert sum(breakdown.values()) == r.score(expr)

    def test_disabled_features_absent(self, world):
        ts, shape, rect, _h, fit, *_ = world
        ctx = Context(ts)
        r = Ranker(ctx, RankingConfig.only("t"))
        breakdown = r.explain(Call(fit, (Var("s", shape), Var("r", rect))))
        assert list(breakdown) == ["type_distance"]


class TestCompletionCostConsistency:
    def test_call_completion_cost_matches_score(self, world):
        ts, shape, rect, helper, fit, grow, tostr, _far = world
        ctx = Context(ts, this_type=rect)
        r = Ranker(ctx)
        for call in [
            Call(fit, (Var("s", shape), Var("r", rect))),
            Call(grow, (Var("r", rect), Unfilled())),
            Call(tostr, (Var("r", rect),)),
        ]:
            args = call.args
            extra = r.call_completion_cost(
                call.method, [a.type for a in args], args
            )
            arg_scores = sum(r.score(a) for a in args)
            assert extra is not None
            assert arg_scores + extra == r.score(call)
