"""Engine edge cases and configuration behaviours."""

import pytest

from repro import Context, CompletionEngine, EngineConfig, TypeSystem, parse
from repro.codemodel import LibraryBuilder
from repro.lang import Call, Hole, KnownCall, Unfilled, UnknownCall, Var


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    node = lib.cls("G.Node")
    lib.prop(node, "Next", node)
    lib.prop(node, "Depth", ts.primitive("int"))
    lib.method(node, "Visit", params=[("other", node)])
    lib.static_method("G.Walker", "Step", returns=node, params=[("n", node)])
    return ts, node


class TestEmptyResults:
    def test_no_locals_hole_still_finds_globals(self, world):
        ts, node = world
        lib = LibraryBuilder(ts)
        lib.field("G.Registry", "Root", node, static=True)
        ctx = Context(ts)  # no locals at all
        engine = CompletionEngine(ts)
        results = engine.complete(Hole(), ctx, n=5)
        assert any("Root" in repr(c.expr) for c in results)

    def test_unsatisfiable_known_call(self, world):
        ts, node = world
        ctx = Context(ts, locals={"s": ts.string_type})
        engine = CompletionEngine(ts)
        visit = node.declared_methods_named("Visit")[0]
        # no Node value anywhere in scope and no static producers
        pe = KnownCall((visit,), (Hole(), Hole()))
        lib = LibraryBuilder(ts)  # noqa: F841 - universe unchanged
        results = engine.complete(pe, ctx, n=5)
        assert results == [] or all(
            isinstance(c.expr, Call) for c in results
        )

    def test_rank_of_missing_truth_is_none(self, world):
        ts, node = world
        ctx = Context(ts, locals={"n": node})
        engine = CompletionEngine(ts)
        impostor = Var("ghost", node)
        assert engine.rank_of(Hole(), ctx, impostor, limit=20) is None

    def test_method_rank_respects_limit(self, world):
        ts, node = world
        ctx = Context(ts, locals={"n": node})
        engine = CompletionEngine(ts)
        visit = node.declared_methods_named("Visit")[0]
        pe = UnknownCall((Var("n", node),))
        rank_wide = engine.method_rank(pe, ctx, visit, limit=50)
        assert rank_wide is not None
        assert engine.method_rank(pe, ctx, visit, limit=rank_wide - 1) is None \
            if rank_wide > 1 else True


class TestRecursiveChains:
    def test_self_referential_type_terminates(self, world):
        """Node.Next : Node — the chain closure must respect the depth
        bound instead of looping forever."""
        ts, node = world
        ctx = Context(ts, locals={"n": node})
        engine = CompletionEngine(ts, EngineConfig(max_chain_depth=3))
        pe = parse("n.?*f", ctx)
        results = engine.complete(pe, ctx, n=100)
        texts = [repr(c.expr) for c in results]
        assert len(results) < 100  # finite despite the recursive type
        assert all(text.count("Next") <= 3 for text in texts)


class TestUnfilledReceiverConfig:
    def test_default_allows_unfilled_receiver(self, world):
        ts, node = world
        lib = LibraryBuilder(ts)
        other = lib.cls("G.Other")
        lib.method(other, "Consume", params=[("n", node)])
        ctx = Context(ts, locals={"n": node})
        engine = CompletionEngine(ts)
        results = engine.complete(UnknownCall((Var("n", node),)), ctx, n=50)
        assert any(
            isinstance(c.expr.args[0], Unfilled) and not c.expr.method.is_static
            for c in results
        )

    def test_disallow_unfilled_receiver(self, world):
        ts, node = world
        lib = LibraryBuilder(ts)
        other = lib.cls("G.Other2")
        lib.method(other, "Consume2", params=[("n", node)])
        ctx = Context(ts, locals={"n": node})
        engine = CompletionEngine(
            ts, EngineConfig(allow_unfilled_receiver=False)
        )
        for c in engine.complete(UnknownCall((Var("n", node),)), ctx, n=50):
            if not c.expr.method.is_static:
                assert not isinstance(c.expr.args[0], Unfilled)


class TestReachabilityPruning:
    def test_pruning_preserves_results(self, geometry, geometry_context):
        """The reachability index is an optimization: with and without it
        the result stream is identical."""
        pe = parse("Distance(point, ?)", geometry_context)
        fast = CompletionEngine(
            geometry.ts, EngineConfig(use_reachability=True)
        )
        slow = CompletionEngine(
            geometry.ts, EngineConfig(use_reachability=False)
        )
        fast_results = [
            (c.score, c.expr.key())
            for c in fast.complete(pe, geometry_context, n=30)
        ]
        slow_results = [
            (c.score, c.expr.key())
            for c in slow.complete(pe, geometry_context, n=30)
        ]
        assert fast_results == slow_results


class TestSideCaps:
    def test_small_side_cap_still_orders(self, geometry, geometry_context):
        engine = CompletionEngine(
            geometry.ts, EngineConfig(max_side_candidates=10)
        )
        pe = parse("point.?*m >= this.?*m", geometry_context)
        results = engine.complete(pe, geometry_context, n=15)
        scores = [c.score for c in results]
        assert scores == sorted(scores)

    def test_small_tuple_cap_still_orders(self, paint, paint_context):
        engine = CompletionEngine(
            paint.ts, EngineConfig(max_tuple_candidates=5)
        )
        pe = parse("?({img, size})", paint_context)
        results = engine.complete(pe, paint_context, n=10)
        assert results
        scores = [c.score for c in results]
        assert scores == sorted(scores)


class TestInterleavedGenerators:
    def test_two_streams_do_not_interfere(self, geometry, geometry_context):
        """Pulling two live completion generators alternately yields the
        same sequences as pulling each alone (no shared mutable state)."""
        engine = CompletionEngine(geometry.ts)
        pe1 = parse("Distance(point, ?)", geometry_context)
        pe2 = parse("this.?*m", geometry_context)

        solo1 = [c.expr.key() for c in engine.complete(pe1, geometry_context, n=8)]
        solo2 = [c.expr.key() for c in engine.complete(pe2, geometry_context, n=8)]

        gen1 = engine.all_completions(pe1, geometry_context)
        gen2 = engine.all_completions(pe2, geometry_context)
        mixed1, mixed2 = [], []
        for _ in range(8):
            mixed1.append(next(gen1).expr.key())
            mixed2.append(next(gen2).expr.key())
        assert mixed1 == solo1
        assert mixed2 == solo2


class TestQueryForms:
    def test_complete_expression_queries_score_themselves(self, world):
        ts, node = world
        ctx = Context(ts, locals={"n": node})
        engine = CompletionEngine(ts)
        expr = parse("n.Depth", ctx)
        results = engine.complete(expr, ctx, n=5)
        assert len(results) == 1
        assert results[0].expr == expr

    def test_unfilled_query(self, world):
        ts, node = world
        ctx = Context(ts)
        engine = CompletionEngine(ts)
        results = engine.complete(Unfilled(), ctx, n=5)
        assert len(results) == 1
        assert isinstance(results[0].expr, Unfilled)
