"""Concurrency differentials for the completion service.

In the style of test_concurrent_obs.py: many async clients hammer one
tenant and the outcome must be indistinguishable from serial execution
— same ranked results (session affinity serialises every request onto
the tenant's one engine thread), no lost metric increments, atomic
run-log lines that still validate against the schema, and a cache whose
hit counters rise across requests (the warmth the affinity exists to
preserve).
"""

import asyncio
import json
import random
import threading

import pytest

from repro.api import complete, open_workspace
from repro.eval.battery import battery_for
from repro.obs import validate_runlog_text
from repro.serve import EnginePool, ServeClient, async_request, protocol
from repro.serve.server import start_in_thread

UNIVERSE = "bcl"
N_CLIENTS = 8
REPEATS = 3


@pytest.fixture(scope="module")
def pool():
    return EnginePool((UNIVERSE,))


@pytest.fixture(scope="module")
def handle(pool):
    with start_in_thread(pool=pool) as running:
        yield running


@pytest.fixture(scope="module")
def battery():
    return battery_for(UNIVERSE)


@pytest.fixture(scope="module")
def serial_reference(battery):
    """What a single client against a fresh engine would see, query by
    query — the oracle every concurrent response must match."""
    workspace = open_workspace(UNIVERSE)
    reference = {}
    for query in battery.queries:
        record = complete(workspace, query, locals=battery.locals)
        reference[query] = json.dumps(
            [protocol.suggestion_to_dict(s) for s in record.suggestions],
            sort_keys=True,
        )
    return reference


def hammer(url, requests):
    """Fan ``requests`` out over independent async connections; returns
    ``(query, status, body)`` triples in completion order."""

    async def one(query):
        status, body = await async_request(
            url, "POST", "/v1/complete",
            {"workspace": UNIVERSE, "query": query,
             "locals": battery_for(UNIVERSE).locals})
        return query, status, body

    async def main():
        return await asyncio.gather(*(one(query) for query in requests))

    return asyncio.run(main())


class TestConcurrentDifferentials:
    def test_async_clients_match_serial_execution(
        self, handle, battery, serial_reference
    ):
        requests = battery.queries * REPEATS
        random.Random(7).shuffle(requests)
        outcomes = hammer(handle.url, requests)
        assert len(outcomes) == len(requests)
        for query, status, body in outcomes:
            assert status == 200, body
            got = json.dumps(body["suggestions"], sort_keys=True)
            assert got == serial_reference[query], query

    def test_counters_lose_no_increments(self, handle, pool, battery):
        tenant = pool.get(UNIVERSE)
        before = tenant.workspace.metrics()["counters"]
        requests = battery.queries * REPEATS
        outcomes = hammer(handle.url, requests)
        assert all(status == 200 for _, status, _ in outcomes)
        after = tenant.workspace.metrics()["counters"]
        delta = len(requests)
        assert after["server_requests"] - before.get(
            "server_requests", 0) == delta
        assert after["server_ok"] - before.get("server_ok", 0) == delta
        assert after["queries"] - before.get("queries", 0) == delta

    def test_parallel_threads_of_async_clients(
        self, handle, battery, serial_reference
    ):
        """Even event loops racing on separate OS threads serialise
        cleanly at the tenant."""
        failures = []

        def storm():
            try:
                for query, status, body in hammer(
                    handle.url, list(battery.queries)
                ):
                    if status != 200:
                        failures.append((query, status))
                    elif json.dumps(body["suggestions"], sort_keys=True) \
                            != serial_reference[query]:
                        failures.append((query, "diverged"))
            except Exception as error:  # noqa: BLE001 - report, don't hang
                failures.append(repr(error))

        threads = [threading.Thread(target=storm) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

    def test_run_log_lines_atomic_and_schema_valid(self, handle, pool):
        tenant = pool.get(UNIVERSE)
        text = tenant.run_log.to_ndjson()
        records = []
        for line in text.splitlines():
            records.append(json.loads(line))  # every line parses alone
        assert validate_runlog_text(text) == []
        served = [r for r in records if r.get("kind") == "server_request"]
        assert served, "the hammering above must have been logged"
        counters = tenant.workspace.metrics()["counters"]
        assert len(served) == counters["server_requests"], \
            "one server_request record per counted request"
        for record in served:
            assert record["endpoint"] == "/v1/complete"
            assert record["workspace"] == UNIVERSE
            assert record["elapsed_ms"] >= record["queue_ms"] >= 0.0

    def test_session_affinity_raises_cache_hit_rate(
        self, handle, pool, battery
    ):
        tenant = pool.get(UNIVERSE)
        query = "span.?m"  # unique to this test: first sight is cold
        assert query not in battery.queries
        before = tenant.workspace.cache_stats()

        def post():
            with ServeClient(handle.url) as client:
                return client.complete(
                    UNIVERSE, query, locals={"span": "System.TimeSpan"})

        outcomes = [post() for _ in range(6)]
        assert all(status == 200 for status, _ in outcomes)
        cached_flags = [body["cached"] for _, body in outcomes]
        assert cached_flags[0] is False
        assert all(cached_flags[1:]), \
            "repeat queries must replay from the warm tenant cache"
        after = tenant.workspace.cache_stats()
        assert after["stream_hits"] > before["stream_hits"]
        counters = tenant.workspace.metrics()["counters"]
        assert counters.get("queries_cached", 0) >= len(outcomes) - 1


def hammer_traced(url, tagged_requests):
    """Fan out (request_id, query) pairs, each opted into tracing."""

    async def one(request_id, query):
        status, body = await async_request(
            url, "POST", "/v1/complete",
            {"workspace": UNIVERSE, "query": query,
             "locals": battery_for(UNIVERSE).locals,
             "request_id": request_id, "trace": True})
        return request_id, query, status, body

    async def main():
        return await asyncio.gather(
            *(one(request_id, query)
              for request_id, query in tagged_requests))

    return asyncio.run(main())


class TestConcurrentCorrelation:
    """Request ids under concurrency: every response echoes its own id,
    span trees never mix between interleaved requests, and the engine's
    bound run-log records stay schema-valid."""

    @pytest.fixture(scope="class")
    def storm(self, handle, battery):
        tagged = [
            ("corr-{}-{}".format(repeat, i), query)
            for repeat in range(REPEATS)
            for i, query in enumerate(battery.queries)
        ]
        random.Random(11).shuffle(tagged)
        return tagged, hammer_traced(handle.url, tagged)

    def test_every_response_echoes_its_own_id(self, storm):
        tagged, outcomes = storm
        assert len(outcomes) == len(tagged)
        for request_id, query, status, body in outcomes:
            assert status == 200, body
            assert body["request_id"] == request_id, query

    def test_span_trees_never_mix_between_requests(self, pool, storm):
        _, outcomes = storm
        for request_id, _query, _status, body in outcomes:
            spans = body["spans"]
            assert spans, request_id
            ids = {span["span"] for span in spans}
            assert len(ids) == len(spans), "span ids unique per request"
            roots = [s for s in spans if s["parent"] is None]
            assert roots, "each request's tree has its own root"
            for span in spans:
                if span["parent"] is not None:
                    assert span["parent"] in ids, \
                        "a parent outside the tree means trees mixed"

    def test_server_records_pair_ids_with_span_trees(self, pool, storm):
        tagged, outcomes = storm
        tenant = pool.get(UNIVERSE)
        records = [json.loads(line)
                   for line in tenant.run_log.to_ndjson().splitlines()]
        served = {r["request_id"]: r for r in records
                  if r.get("kind") == "server_request"
                  and str(r.get("request_id", "")).startswith("corr-")}
        assert len(served) == len(tagged)
        for request_id, _query, _status, body in outcomes:
            assert served[request_id]["spans"] == body["spans"], \
                "the logged tree must be the one the client saw"

    def test_engine_records_carry_bound_ids(self, pool, storm):
        tagged, _ = storm
        tenant = pool.get(UNIVERSE)
        records = [json.loads(line)
                   for line in tenant.run_log.to_ndjson().splitlines()]
        bound = [r for r in records
                 if r.get("kind") == "query"
                 and str(r.get("request_id", "")).startswith("corr-")]
        assert len(bound) == len(tagged), \
            "every served query record must carry its request's id"

    def test_run_log_still_schema_valid_after_storm(self, pool, storm):
        tenant = pool.get(UNIVERSE)
        assert validate_runlog_text(tenant.run_log.to_ndjson()) == []
