"""Unit tests for the figure/table aggregation math (on handcrafted data)."""

import pytest

from repro.eval import (
    cdf,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    proportion_top,
    table1,
)
from repro.eval.experiments import ArgumentResult, LookupResult, MethodCallResult


def make_call(project="P", rank=1, static=False, arity=2, single=None,
              with_return=None, intellisense=5):
    return MethodCallResult(
        project=project,
        method_name="M",
        arity=arity,
        is_static=static,
        best_rank=rank,
        best_rank_single=single if single is not None else rank,
        best_rank_return=with_return,
        intellisense=intellisense,
        best_query_seconds=0.01,
        query_seconds=[0.01],
    )


def make_arg(kind="local", guessable=True, is_local=True, rank=1):
    return ArgumentResult(
        project="P", kind=kind, guessable=guessable,
        is_local=is_local, rank=rank, seconds=0.0,
    )


class TestCdf:
    def test_basic(self):
        values = cdf([1, 5, None, 30], ranks_at=(1, 10))
        assert values[1] == 0.25
        assert values[10] == 0.5

    def test_empty(self):
        assert cdf([], ranks_at=(1,))[1] == 0.0

    def test_proportion_top(self):
        assert proportion_top([1, 2, 30, None], 10) == 0.5


class TestSummaryMetrics:
    def test_mrr(self):
        from repro.eval import mean_reciprocal_rank

        assert mean_reciprocal_rank([1, 2, None, 4]) == pytest.approx(
            (1 + 0.5 + 0 + 0.25) / 4
        )
        assert mean_reciprocal_rank([]) == 0.0

    def test_summary(self):
        from repro.eval import summary_metrics

        metrics = summary_metrics([1, 5, 15, None])
        assert metrics["count"] == 4
        assert metrics["found"] == 3
        assert metrics["top1"] == 0.25
        assert metrics["top10"] == 0.5
        assert metrics["top20"] == 0.75
        assert metrics["median_rank"] == 5.0

    def test_summary_empty(self):
        from repro.eval import summary_metrics

        metrics = summary_metrics([])
        assert metrics["count"] == 0
        assert metrics["mrr"] == 0.0


class TestTable1:
    def test_counts_and_totals(self):
        results = [
            make_call("A", rank=3),
            make_call("A", rank=15),
            make_call("A", rank=None),
            make_call("B", rank=1),
        ]
        rows = table1(results)
        by_name = {r.project: r for r in rows}
        assert by_name["A"].calls == 3
        assert by_name["A"].top10 == 1
        assert by_name["A"].top10_20 == 1
        assert by_name["Totals"].calls == 4
        assert by_name["Totals"].top10 == 2

    def test_project_order_preserved(self):
        results = [make_call("Z"), make_call("A")]
        rows = table1(results)
        assert [r.project for r in rows] == ["Z", "A", "Totals"]


class TestFigure9:
    def test_split(self):
        results = [make_call(rank=1, static=False), make_call(rank=50, static=True)]
        series = figure9(results, ranks_at=(10,))
        assert series["All"][10] == 0.5
        assert series["Instance"][10] == 1.0
        assert series["Static"][10] == 0.0


class TestFigure10:
    def test_arity_buckets(self):
        results = [
            make_call(arity=2, rank=1, single=25),
            make_call(arity=2, rank=1, single=1),
            make_call(arity=3, rank=None, single=None),
        ]
        table = figure10(results, cutoff=20)
        assert table[2]["count"] == 2
        assert table[2]["two_args"] == 1.0
        assert table[2]["one_arg"] == 0.5
        assert table[3]["two_args"] == 0.0


class TestFigure11And12:
    def test_differences(self):
        results = [
            make_call(rank=1, intellisense=20),   # we win by 19
            make_call(rank=5, intellisense=5),    # tie
            make_call(rank=9, intellisense=2),    # they win by 7
        ]
        summary = figure11(results)
        assert summary["count"] == 3
        assert summary["we_win_by_10+"] == pytest.approx(1 / 3)
        assert summary["tie"] == pytest.approx(1 / 3)
        assert summary["intellisense_wins"] == pytest.approx(1 / 3)
        assert summary["intellisense_wins_by_10+"] == 0.0

    def test_not_found_counts_as_worst(self):
        results = [make_call(rank=None, intellisense=1)]
        summary = figure11(results, not_found_rank=100)
        assert summary["intellisense_wins_by_10+"] == 1.0

    def test_figure12_uses_return_rank(self):
        results = [make_call(rank=50, with_return=1, intellisense=20)]
        assert figure12(results)["we_win"] == 1.0
        assert figure11(results)["we_win"] == 0.0


class TestFigure11Histogram:
    def test_bands_sum_to_one(self):
        from repro.eval import figure11_histogram

        results = [
            make_call(rank=1, intellisense=30),
            make_call(rank=9, intellisense=2),
            make_call(rank=5, intellisense=5),
        ]
        table = figure11_histogram(results)
        assert sum(table.values()) == pytest.approx(1.0)
        assert table["0"] == pytest.approx(1 / 3)

    def test_empty(self):
        from repro.eval import figure11_histogram

        assert figure11_histogram([]) == {}

    def test_not_found_lands_in_top_band(self):
        from repro.eval import figure11_histogram

        results = [make_call(rank=None, intellisense=1)]
        table = figure11_histogram(results, not_found_rank=100)
        assert table[">= 20"] == 1.0


class TestFigure9ByProject:
    def test_per_project_split(self):
        from repro.eval import figure9_by_project

        results = [make_call("A", rank=1), make_call("B", rank=50)]
        series = figure9_by_project(results, ranks_at=(10,))
        assert series["A"][10] == 1.0
        assert series["B"][10] == 0.0


class TestFigure13And14:
    def test_figure13_series(self):
        results = [
            make_arg(rank=1, is_local=True),
            make_arg(rank=None, is_local=False),
            make_arg(guessable=False, rank=None),
        ]
        series = figure13(results, ranks_at=(10,))
        assert series["Normal"][10] == 0.5
        assert series["No variables"][10] == 0.0

    def test_figure14_census(self):
        results = [
            make_arg(kind="local"),
            make_arg(kind="local"),
            make_arg(kind="literal", guessable=False),
        ]
        census = figure14(results)
        assert census["local"] == pytest.approx(2 / 3)
        assert census["not guessable"] == pytest.approx(1 / 3)


class TestFigure15And16:
    def test_variant_split(self):
        results = [
            LookupResult("P", "Target", 1, 0.0),
            LookupResult("P", "Target", None, 0.0),
            LookupResult("P", "Both", 15, 0.0),
        ]
        series = figure15(results, ranks_at=(10, 20))
        assert series["Target"][10] == 0.5
        assert series["Both"][10] == 0.0
        assert series["Both"][20] == 1.0
        assert series["Source"][10] == 0.0

    def test_figure16_variants(self):
        results = [LookupResult("P", "2xLeft", 2, 0.0)]
        series = figure16(results, ranks_at=(10,))
        assert series["2xLeft"][10] == 1.0
        assert set(series) == {"Left", "Right", "Both", "2xLeft", "2xRight"}
