"""Protocol battery for the completion service (docs/SERVING.md).

Three guarantees pinned here:

* **Golden round-trips** — a completion served over HTTP is
  byte-identical (as sorted JSON) to the same query answered by the
  in-process :func:`repro.api.complete` facade on a fresh workspace;
* **Error shapes** — every failure is a structured body with a stable
  ``code`` and the exit-style mapping of :data:`repro.serve.protocol
  .ERROR_CODES` (unknown workspace, malformed bodies, parse errors,
  sheds, deadline expiry);
* **Lifecycle** — startup warms the pool before the port opens, and a
  graceful shutdown drains in-flight requests instead of dropping them.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import complete, complete_many, explain, open_workspace
from repro.eval.battery import battery_for
from repro.serve import (
    PROTOCOL_VERSION,
    EnginePool,
    ServeClient,
    protocol,
    start_in_thread,
)

UNIVERSE = "bcl"


@pytest.fixture(scope="module")
def pool():
    return EnginePool((UNIVERSE,))


@pytest.fixture(scope="module")
def handle(pool):
    with start_in_thread(pool=pool) as running:
        yield running


@pytest.fixture()
def client(handle):
    with ServeClient(handle.url) as running:
        yield running


@pytest.fixture(scope="module")
def battery():
    return battery_for(UNIVERSE)


def suggestions_json(suggestions):
    """The byte-identity canonical form: sorted-key JSON of the wire
    shape, for server payloads and in-process records alike."""
    return json.dumps(
        [
            s if isinstance(s, dict) else protocol.suggestion_to_dict(s)
            for s in suggestions
        ],
        sort_keys=True,
    )


class TestGoldenRoundTrips:
    def test_complete_matches_in_process(self, client, battery):
        workspace = open_workspace(UNIVERSE)
        for query in battery.queries:
            status, body = client.complete(
                UNIVERSE, query, locals=battery.locals)
            assert status == 200, body
            record = complete(workspace, query, locals=battery.locals)
            assert suggestions_json(body["suggestions"]) == \
                suggestions_json(record.suggestions), query
            assert body["status"] == record.status.value
            assert body["workspace"] == UNIVERSE
            assert body["exit_code"] == 0
            assert body["suggestions"], "golden queries must complete"

    def test_complete_many_matches_in_process(self, client, battery):
        status, body = client.complete_many(
            UNIVERSE, battery.queries, locals=battery.locals)
        assert status == 200, body
        workspace = open_workspace(UNIVERSE)
        records = complete_many(workspace, battery.queries,
                                locals=battery.locals)
        assert len(body["results"]) == len(records)
        for served, record in zip(body["results"], records):
            assert served["query"] == record.source
            assert suggestions_json(served["suggestions"]) == \
                suggestions_json(record.suggestions)

    def test_explain_matches_in_process(self, client, battery):
        query = battery.queries[-1]
        status, body = client.explain(UNIVERSE, query,
                                      locals=battery.locals)
        assert status == 200, body
        workspace = open_workspace(UNIVERSE)
        local = explain(workspace, query, locals=battery.locals)
        assert len(body["completions"]) == len(local)
        for served, completion in zip(body["completions"], local):
            expected = protocol.completion_to_dict(completion)
            assert served["text"] == expected["text"]
            assert served["score"] == expected["score"]
            assert served["breakdown"]["rows"] == \
                expected["breakdown"]["rows"]
            total = sum(value for _, value in served["breakdown"]["rows"])
            assert abs(total - served["score"]) < 1e-9

    def test_repeat_is_cached_and_byte_identical(self, client, battery):
        query = battery.queries[0]
        _, first = client.complete(UNIVERSE, query, locals=battery.locals)
        status, second = client.complete(UNIVERSE, query,
                                         locals=battery.locals)
        assert status == 200
        assert second["cached"] is True, \
            "session affinity must keep the cross-query cache warm"
        assert suggestions_json(first["suggestions"]) == \
            suggestions_json(second["suggestions"])


class TestErrorShapes:
    def _assert_error(self, status, body, code):
        want_status, want_exit = protocol.ERROR_CODES[code]
        assert status == want_status, body
        assert body["error"]["code"] == code
        assert body["error"]["exit_code"] == want_exit
        assert body["error"]["message"]

    def test_unknown_workspace(self, client):
        status, body = client.complete("nope", "?")
        self._assert_error(status, body, protocol.UNKNOWN_WORKSPACE)
        assert UNIVERSE in body["error"]["message"]

    def test_unknown_workspace_stats(self, client):
        status, body = client.stats("nope")
        self._assert_error(status, body, protocol.UNKNOWN_WORKSPACE)

    def test_body_not_json(self, handle):
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=10)
        try:
            connection.request(
                "POST", "/v1/complete", body=b"{nope",
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            body = json.loads(response.read().decode())
            self._assert_error(response.status, body, protocol.BAD_REQUEST)
        finally:
            connection.close()

    def test_body_missing_query(self, client):
        status, body = client.request(
            "POST", "/v1/complete", {"workspace": UNIVERSE})
        self._assert_error(status, body, protocol.BAD_REQUEST)
        assert "query" in body["error"]["message"]

    def test_body_bad_locals(self, client):
        status, body = client.complete(
            UNIVERSE, "?", locals={"x": 3})
        self._assert_error(status, body, protocol.BAD_REQUEST)

    def test_unknown_local_type(self, client):
        status, body = client.complete(
            UNIVERSE, "?", locals={"x": "No.Such.Type"})
        self._assert_error(status, body, protocol.BAD_REQUEST)

    def test_parse_error_maps_to_422(self, client):
        status, body = client.complete(UNIVERSE, "((")
        assert status == protocol.http_status(protocol.PARSE_ERROR)
        assert body["parse_error"]
        assert body["exit_code"] == 1
        assert body["suggestions"] == []

    def test_method_and_route_errors(self, client):
        status, body = client.request("GET", "/v1/complete")
        self._assert_error(status, body, protocol.METHOD_NOT_ALLOWED)
        status, body = client.request("POST", "/v1/healthz")
        self._assert_error(status, body, protocol.METHOD_NOT_ALLOWED)
        status, body = client.request("GET", "/v1/nope")
        self._assert_error(status, body, protocol.NOT_FOUND)

    def test_deadline_expired_in_queue(self, client, pool):
        tenant = pool.get(UNIVERSE)
        blocker = tenant.executor.submit(time.sleep, 0.25)
        try:
            status, body = client.complete(
                UNIVERSE, "now.?m",
                locals={"now": "System.DateTime"}, deadline_ms=1)
        finally:
            blocker.result()
        self._assert_error(status, body, protocol.DEADLINE_EXCEEDED)

    def test_admission_shed_when_queue_would_blow_deadline(
        self, handle, client, pool
    ):
        tenant = pool.get(UNIVERSE)
        tenant._avg_ms = 50.0  # one queued request ~50 ms
        blocker = tenant.executor.submit(time.sleep, 0.3)
        results = []

        def occupant():
            with ServeClient(handle.url) as other:
                results.append(other.complete(
                    UNIVERSE, "now.?m", locals={"now": "System.DateTime"}))

        thread = threading.Thread(target=occupant)
        thread.start()
        try:
            deadline = time.monotonic() + 5.0
            while tenant.pending == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert tenant.pending >= 1
            status, body = client.complete(
                UNIVERSE, "now.?m",
                locals={"now": "System.DateTime"}, deadline_ms=10)
        finally:
            blocker.result()
            thread.join()
        self._assert_error(status, body, protocol.SHED)
        assert results[0][0] == 200, "the queued request still completes"


class TestLifecycle:
    def test_startup_warms_pool(self, client, pool):
        status, body = client.healthz()
        assert status == 200
        assert body["ok"] is True
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["workspaces"][UNIVERSE]["warmed"] is True
        assert pool.get(UNIVERSE).warmed is True

    def test_stats_carry_server_counters(self, client, battery):
        client.complete(UNIVERSE, battery.queries[0],
                        locals=battery.locals)
        status, body = client.stats(UNIVERSE)
        assert status == 200
        counters = body["metrics"]["counters"]
        assert counters["server_requests"] >= 1
        assert counters["server_ok"] >= 1
        assert body["warmed"] is True
        assert body["run_log_records"] >= 1

    def test_graceful_shutdown_drains_in_flight(self):
        pool = EnginePool((UNIVERSE,))
        handle = start_in_thread(pool=pool)
        tenant = pool.get(UNIVERSE)
        results = []

        def slow_request():
            with ServeClient(handle.url) as client:
                results.append(client.complete(
                    UNIVERSE, "now.?m", locals={"now": "System.DateTime"}))

        blocker = tenant.executor.submit(time.sleep, 0.4)
        worker = threading.Thread(target=slow_request)
        worker.start()
        deadline = time.monotonic() + 5.0
        while tenant.pending == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert tenant.pending >= 1, "request must be in flight before stop"
        handle.stop(drain=True)
        worker.join(timeout=10)
        blocker.result()
        assert results, "drain must let the in-flight request finish"
        status, body = results[0]
        assert status == 200, body
        assert body["suggestions"]
        with pytest.raises(OSError):
            with ServeClient(handle.url) as client:
                client.healthz()
