"""Protocol battery for the completion service (docs/SERVING.md).

Three guarantees pinned here:

* **Golden round-trips** — a completion served over HTTP is
  byte-identical (as sorted JSON) to the same query answered by the
  in-process :func:`repro.api.complete` facade on a fresh workspace;
* **Error shapes** — every failure is a structured body with a stable
  ``code`` and the exit-style mapping of :data:`repro.serve.protocol
  .ERROR_CODES` (unknown workspace, malformed bodies, parse errors,
  sheds, deadline expiry);
* **Lifecycle** — startup warms the pool before the port opens, and a
  graceful shutdown drains in-flight requests instead of dropping them.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import complete, complete_many, explain, open_workspace
from repro.eval.battery import battery_for
from repro.ide.workspace import Workspace
from repro.obs import parse_exposition, validate_exposition, \
    validate_runlog_text
from repro.serve import (
    PROTOCOL_VERSION,
    EnginePool,
    ServeClient,
    Tenant,
    protocol,
    start_in_thread,
)

UNIVERSE = "bcl"


@pytest.fixture(scope="module")
def pool():
    return EnginePool((UNIVERSE,))


@pytest.fixture(scope="module")
def handle(pool):
    with start_in_thread(pool=pool) as running:
        yield running


@pytest.fixture()
def client(handle):
    with ServeClient(handle.url) as running:
        yield running


@pytest.fixture(scope="module")
def battery():
    return battery_for(UNIVERSE)


def suggestions_json(suggestions):
    """The byte-identity canonical form: sorted-key JSON of the wire
    shape, for server payloads and in-process records alike."""
    return json.dumps(
        [
            s if isinstance(s, dict) else protocol.suggestion_to_dict(s)
            for s in suggestions
        ],
        sort_keys=True,
    )


class TestGoldenRoundTrips:
    def test_complete_matches_in_process(self, client, battery):
        workspace = open_workspace(UNIVERSE)
        for query in battery.queries:
            status, body = client.complete(
                UNIVERSE, query, locals=battery.locals)
            assert status == 200, body
            record = complete(workspace, query, locals=battery.locals)
            assert suggestions_json(body["suggestions"]) == \
                suggestions_json(record.suggestions), query
            assert body["status"] == record.status.value
            assert body["workspace"] == UNIVERSE
            assert body["exit_code"] == 0
            assert body["suggestions"], "golden queries must complete"

    def test_complete_many_matches_in_process(self, client, battery):
        status, body = client.complete_many(
            UNIVERSE, battery.queries, locals=battery.locals)
        assert status == 200, body
        workspace = open_workspace(UNIVERSE)
        records = complete_many(workspace, battery.queries,
                                locals=battery.locals)
        assert len(body["results"]) == len(records)
        for served, record in zip(body["results"], records):
            assert served["query"] == record.source
            assert suggestions_json(served["suggestions"]) == \
                suggestions_json(record.suggestions)

    def test_explain_matches_in_process(self, client, battery):
        query = battery.queries[-1]
        status, body = client.explain(UNIVERSE, query,
                                      locals=battery.locals)
        assert status == 200, body
        workspace = open_workspace(UNIVERSE)
        local = explain(workspace, query, locals=battery.locals)
        assert len(body["completions"]) == len(local)
        for served, completion in zip(body["completions"], local):
            expected = protocol.completion_to_dict(completion)
            assert served["text"] == expected["text"]
            assert served["score"] == expected["score"]
            assert served["breakdown"]["rows"] == \
                expected["breakdown"]["rows"]
            total = sum(value for _, value in served["breakdown"]["rows"])
            assert abs(total - served["score"]) < 1e-9

    def test_repeat_is_cached_and_byte_identical(self, client, battery):
        query = battery.queries[0]
        _, first = client.complete(UNIVERSE, query, locals=battery.locals)
        status, second = client.complete(UNIVERSE, query,
                                         locals=battery.locals)
        assert status == 200
        assert second["cached"] is True, \
            "session affinity must keep the cross-query cache warm"
        assert suggestions_json(first["suggestions"]) == \
            suggestions_json(second["suggestions"])


class TestErrorShapes:
    def _assert_error(self, status, body, code):
        want_status, want_exit = protocol.ERROR_CODES[code]
        assert status == want_status, body
        assert body["error"]["code"] == code
        assert body["error"]["exit_code"] == want_exit
        assert body["error"]["message"]

    def test_unknown_workspace(self, client):
        status, body = client.complete("nope", "?")
        self._assert_error(status, body, protocol.UNKNOWN_WORKSPACE)
        assert UNIVERSE in body["error"]["message"]

    def test_unknown_workspace_stats(self, client):
        status, body = client.stats("nope")
        self._assert_error(status, body, protocol.UNKNOWN_WORKSPACE)

    def test_body_not_json(self, handle):
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=10)
        try:
            connection.request(
                "POST", "/v1/complete", body=b"{nope",
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            body = json.loads(response.read().decode())
            self._assert_error(response.status, body, protocol.BAD_REQUEST)
        finally:
            connection.close()

    def test_body_missing_query(self, client):
        status, body = client.request(
            "POST", "/v1/complete", {"workspace": UNIVERSE})
        self._assert_error(status, body, protocol.BAD_REQUEST)
        assert "query" in body["error"]["message"]

    def test_body_bad_locals(self, client):
        status, body = client.complete(
            UNIVERSE, "?", locals={"x": 3})
        self._assert_error(status, body, protocol.BAD_REQUEST)

    def test_unknown_local_type(self, client):
        status, body = client.complete(
            UNIVERSE, "?", locals={"x": "No.Such.Type"})
        self._assert_error(status, body, protocol.BAD_REQUEST)

    def test_parse_error_maps_to_422(self, client):
        status, body = client.complete(UNIVERSE, "((")
        assert status == protocol.http_status(protocol.PARSE_ERROR)
        assert body["parse_error"]
        assert body["exit_code"] == 1
        assert body["suggestions"] == []

    def test_method_and_route_errors(self, client):
        status, body = client.request("GET", "/v1/complete")
        self._assert_error(status, body, protocol.METHOD_NOT_ALLOWED)
        status, body = client.request("POST", "/v1/healthz")
        self._assert_error(status, body, protocol.METHOD_NOT_ALLOWED)
        status, body = client.request("GET", "/v1/nope")
        self._assert_error(status, body, protocol.NOT_FOUND)

    def test_deadline_expired_in_queue(self, client, pool):
        tenant = pool.get(UNIVERSE)
        blocker = tenant.executor.submit(time.sleep, 0.25)
        try:
            status, body = client.complete(
                UNIVERSE, "now.?m",
                locals={"now": "System.DateTime"}, deadline_ms=1)
        finally:
            blocker.result()
        self._assert_error(status, body, protocol.DEADLINE_EXCEEDED)

    def test_admission_shed_when_queue_would_blow_deadline(
        self, handle, client, pool
    ):
        tenant = pool.get(UNIVERSE)
        tenant._avg_ms = 50.0  # one queued request ~50 ms
        blocker = tenant.executor.submit(time.sleep, 0.3)
        results = []

        def occupant():
            with ServeClient(handle.url) as other:
                results.append(other.complete(
                    UNIVERSE, "now.?m", locals={"now": "System.DateTime"}))

        thread = threading.Thread(target=occupant)
        thread.start()
        try:
            deadline = time.monotonic() + 5.0
            while tenant.pending == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert tenant.pending >= 1
            status, body = client.complete(
                UNIVERSE, "now.?m",
                locals={"now": "System.DateTime"}, deadline_ms=10)
        finally:
            blocker.result()
            thread.join()
        self._assert_error(status, body, protocol.SHED)
        assert results[0][0] == 200, "the queued request still completes"


class TestLifecycle:
    def test_startup_warms_pool(self, client, pool):
        status, body = client.healthz()
        assert status == 200
        assert body["ok"] is True
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["workspaces"][UNIVERSE]["warmed"] is True
        assert pool.get(UNIVERSE).warmed is True

    def test_stats_carry_server_counters(self, client, battery):
        client.complete(UNIVERSE, battery.queries[0],
                        locals=battery.locals)
        status, body = client.stats(UNIVERSE)
        assert status == 200
        counters = body["metrics"]["counters"]
        assert counters["server_requests"] >= 1
        assert counters["server_ok"] >= 1
        assert body["warmed"] is True
        assert body["run_log_records"] >= 1

    def test_graceful_shutdown_drains_in_flight(self):
        pool = EnginePool((UNIVERSE,))
        handle = start_in_thread(pool=pool)
        tenant = pool.get(UNIVERSE)
        results = []

        def slow_request():
            with ServeClient(handle.url) as client:
                results.append(client.complete(
                    UNIVERSE, "now.?m", locals={"now": "System.DateTime"}))

        blocker = tenant.executor.submit(time.sleep, 0.4)
        worker = threading.Thread(target=slow_request)
        worker.start()
        deadline = time.monotonic() + 5.0
        while tenant.pending == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert tenant.pending >= 1, "request must be in flight before stop"
        handle.stop(drain=True)
        worker.join(timeout=10)
        blocker.result()
        assert results, "drain must let the in-flight request finish"
        status, body = results[0]
        assert status == 200, body
        assert body["suggestions"]
        with pytest.raises(OSError):
            with ServeClient(handle.url) as client:
                client.healthz()


class TestRequestCorrelation:
    """The end-to-end pin of the observability tentpole: a client
    supplied request id survives HTTP -> pool -> engine, is echoed in
    the response, lands (with the span tree) on a schema-valid
    ``server_request`` record, and the request is reflected in a
    scraped ``/v1/metrics`` exposition."""

    def test_client_supplied_id_pins_end_to_end(
        self, client, pool, battery
    ):
        request_id = "pin-e2e-000"
        status, body = client.complete(
            UNIVERSE, battery.queries[0], locals=battery.locals,
            request_id=request_id, trace=True)
        assert status == 200, body
        assert body["request_id"] == request_id
        spans = body["spans"]
        assert spans, "trace=true must embed the span tree"
        assert spans[0]["parent"] is None

        tenant = pool.get(UNIVERSE)
        text = tenant.run_log.to_ndjson()
        assert validate_runlog_text(text) == []
        records = [json.loads(line) for line in text.splitlines()]
        served = [r for r in records
                  if r.get("kind") == "server_request"
                  and r.get("request_id") == request_id]
        assert len(served) == 1
        record = served[0]
        assert record["endpoint"] == "/v1/complete"
        assert record["code"] == "ok"
        assert record["spans"] == spans
        # the engine's own query records carry the bound id too
        queries = [r for r in records
                   if r.get("kind") == "query"
                   and r.get("request_id") == request_id]
        assert len(queries) == 1

        scrape_status, exposition = client.metrics()
        assert scrape_status == 200
        assert validate_exposition(exposition) == []
        samples = parse_exposition(exposition)["samples"]
        key = ("repro_server_requests_total",
               (("workspace", UNIVERSE),))
        assert samples[key] >= 1, \
            "the pinned request must be visible to a scraper"

    def test_server_generates_id_when_client_sends_none(
        self, client, battery
    ):
        status, body = client.complete(
            UNIVERSE, battery.queries[0], locals=battery.locals)
        assert status == 200
        assert body["request_id"]
        assert len(body["request_id"]) == 16

    def test_distinct_requests_get_distinct_generated_ids(
        self, client, battery
    ):
        ids = set()
        for _ in range(3):
            _, body = client.complete(
                UNIVERSE, battery.queries[0], locals=battery.locals)
            ids.add(body["request_id"])
        assert len(ids) == 3

    def test_batch_and_explain_echo_the_id(self, client, battery):
        status, body = client.complete_many(
            UNIVERSE, battery.queries[:2], locals=battery.locals,
            request_id="pin-batch")
        assert status == 200
        assert body["request_id"] == "pin-batch"
        status, body = client.explain(
            UNIVERSE, battery.queries[-1], locals=battery.locals,
            request_id="pin-explain")
        assert status == 200
        assert body["request_id"] == "pin-explain"

    def test_error_responses_echo_the_id(self, client):
        status, body = client.complete(
            "nope", "?", request_id="pin-err")
        assert status != 200
        assert body["request_id"] == "pin-err"

    def test_invalid_request_ids_are_bad_requests(self, client):
        for bad in (123, "", "x" * 200):
            status, body = client.complete(
                UNIVERSE, "?", request_id=bad)
            assert status == 400, bad
            assert body["error"]["code"] == protocol.BAD_REQUEST

    def test_untraced_requests_omit_spans(self, client, battery):
        status, body = client.complete(
            UNIVERSE, battery.queries[0], locals=battery.locals)
        assert status == 200
        assert "spans" not in body


class TestMetricsEndpoint:
    def test_scrape_is_valid_exposition(self, client, battery):
        client.complete(UNIVERSE, battery.queries[0],
                        locals=battery.locals)
        status, text = client.metrics()
        assert status == 200
        assert validate_exposition(text) == []
        parsed = parse_exposition(text)
        samples = parsed["samples"]
        assert samples[("repro_server_uptime_seconds", ())] >= 0
        assert ("repro_tenant_pending",
                (("workspace", UNIVERSE),)) in samples
        assert parsed["types"]["repro_http_requests_total"] == "counter"
        assert parsed["types"]["repro_server_latency_ms"] == "histogram"

    def test_scrape_counters_track_requests(self, client, battery):
        _, before = client.metrics()
        key = ("repro_server_requests_total",
               (("workspace", UNIVERSE),))
        start = parse_exposition(before)["samples"][key]
        client.complete(UNIVERSE, battery.queries[0],
                        locals=battery.locals)
        _, after = client.metrics()
        assert parse_exposition(after)["samples"][key] == start + 1

    def test_post_is_method_not_allowed(self, client):
        status, body = client.request("POST", "/v1/metrics")
        assert status == 405
        assert body["error"]["code"] == protocol.METHOD_NOT_ALLOWED


class TestWarmProbeAdmission:
    """Satellite: the admission EMA must start from a measured warmup
    probe, and an idle server must never shed (the cold-start
    regression)."""

    def test_warm_seeds_estimate_from_probe(self, pool):
        tenant = pool.get(UNIVERSE)
        assert tenant.warm_probe_ms is not None
        assert tenant.warm_probe_ms > 0
        assert tenant.stats()["warm_probe_ms"] == tenant.warm_probe_ms

    def test_idle_tenant_never_sheds_regardless_of_estimate(self):
        tenant = Tenant(UNIVERSE, Workspace.builtin(UNIVERSE))
        try:
            tenant._avg_ms = 1e9  # even a pathological estimate
            assert tenant.pending == 0
            admitted = tenant.admit(deadline_ms=0.001)
            assert admitted > 0
            tenant._cancel()
        finally:
            tenant.shutdown()

    def test_healthz_on_idle_server_with_tight_default_deadline(self):
        """A freshly warmed server given a tight default deadline must
        answer its first request instead of shedding it off the cold
        2 ms guess times an empty queue."""
        with start_in_thread((UNIVERSE,), default_deadline_ms=15.0) \
                as running:
            with ServeClient(running.url) as probe:
                status, body = probe.complete(
                    UNIVERSE, "now.?m", locals={"now": "System.DateTime"})
        assert status == 200, body


class TestSloAndChaosThroughServe:
    """One extra server carrying both SLO objectives and a mounted
    fault plan — the chaos contract over HTTP (kept off the shared
    module fixture: stopping this handle kills its own pool only)."""

    @pytest.fixture(scope="class")
    def obs_handle(self):
        with start_in_thread(
            (UNIVERSE,),
            slo="p95_ms=1000:error_rate=0.5:shed_rate=0.5",
            fault_plan={"seed": 11, "rate": 1.0},
        ) as running:
            yield running

    @pytest.fixture()
    def obs_client(self, obs_handle):
        with ServeClient(obs_handle.url) as running:
            yield running

    def test_healthz_carries_slo_verdicts_and_chaos(
        self, obs_client, battery
    ):
        for query in battery.queries[:2]:
            status, body = obs_client.complete(
                UNIVERSE, query, locals=battery.locals)
            assert status == 200, body
        status, body = obs_client.healthz()
        assert status == 200
        slo = body["slo"]
        assert set(slo["verdicts"]) == {"latency", "errors", "shed"}
        assert body["ok"] == slo["ok"]
        assert [w["window_s"] for w in slo["windows"]] == \
            [60.0, 300.0, 1800.0]
        assert body["chaos"]["seed"] == 11
        assert body["chaos"]["rate"] == 1.0

    def test_slo_burn_gauges_exposed(self, obs_client, battery):
        obs_client.complete(UNIVERSE, battery.queries[0],
                            locals=battery.locals)
        status, text = obs_client.metrics()
        assert status == 200
        assert validate_exposition(text) == []
        samples = parse_exposition(text)["samples"]
        assert ("repro_slo_ok", ()) in samples
        burn_keys = [key for key in samples if key[0] == "repro_slo_burn"]
        assert burn_keys, "configured objectives must expose burn gauges"
        labels = dict(burn_keys[0][1])
        assert set(labels) == {"objective", "window_s"}

    def test_chaos_degrades_but_never_breaks_protocol(
        self, obs_handle, obs_client, battery
    ):
        outcomes = []
        for _ in range(4):
            for query in battery.queries:
                outcomes.append(obs_client.complete(
                    UNIVERSE, query, locals=battery.locals,
                    request_id=None))
        assert all(status == 200 for status, _ in outcomes), \
            "injected faults must degrade, never 500"
        degraded = [body for _, body in outcomes if body.get("degraded")]
        assert degraded, "rate=1.0 chaos must visibly degrade answers"

        tenant = obs_handle.server.pool.get(UNIVERSE)
        text = tenant.run_log.to_ndjson()
        assert validate_runlog_text(text) == []
        records = [json.loads(line) for line in text.splitlines()]
        with_faults = [r for r in records
                       if r.get("kind") == "server_request"
                       and r.get("faults")]
        assert with_faults, "fired fault events must be logged"
        for record in with_faults:
            for event in record["faults"]:
                site, _, call = event.partition("@")
                assert site in ("oracle", "index_lookup", "type_check",
                                "namespaces", "matching_name")
                assert int(call) >= 1

    def test_chaos_burns_the_error_budget(self, obs_handle, obs_client,
                                          battery):
        for query in battery.queries:
            obs_client.complete(UNIVERSE, query, locals=battery.locals)
        report = obs_handle.server.slo.evaluate()
        window = report["windows"][0]
        assert window["degraded"] > 0
        assert window["burn"]["errors"] > 0


class TestStatsCliScrape:
    """``repro stats --url`` (and friends): the scrape-mode satellite."""

    def _run(self, argv):
        import io

        from repro.__main__ import main as cli_main

        out = io.StringIO()
        code = cli_main(argv,
                        write=lambda line="": out.write(str(line) + "\n"))
        return code, out.getvalue()

    def test_scrape_prints_sample_table(self, handle, client, battery):
        client.complete(UNIVERSE, battery.queries[0],
                        locals=battery.locals)
        code, output = self._run(["stats", "--url", handle.url])
        assert code == 0, output
        assert "metrics from {}".format(handle.url) in output
        assert "repro_server_requests_total" in output

    def test_validate_round_trips_the_exposition(self, handle):
        code, output = self._run(
            ["stats", "--url", handle.url, "--validate"])
        assert code == 0, output
        assert "valid exposition" in output

    def test_watch_polls_n_times(self, handle):
        code, output = self._run(
            ["stats", "--url", handle.url, "--watch", "0",
             "--watch-count", "2"])
        assert code == 0, output
        assert output.count("metrics from") == 2

    def test_unreachable_url_is_usage_error(self):
        code, output = self._run(
            ["stats", "--url", "http://127.0.0.1:1"])
        assert code == 2
        assert "error" in output

    def test_validate_without_url_is_usage_error(self):
        code, output = self._run(
            ["stats", "--universe", UNIVERSE, "--validate"])
        assert code == 2
        assert "--url" in output

    def test_in_process_watch_reruns_the_battery(self):
        code, output = self._run(
            ["stats", "--universe", UNIVERSE, "--watch", "0",
             "--watch-count", "2"])
        assert code == 0, output
        assert "after 1 battery run(s)" in output
        assert "after 2 battery run(s)" in output
