"""Tests for the method index (Fig. 8) and the reachability index."""

import pytest

from repro import MethodIndex, ReachabilityIndex, TypeSystem
from repro.codemodel import LibraryBuilder


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    animal = lib.cls("Zoo.Animal")
    dog = lib.cls("Zoo.Dog", base=animal)
    feed = lib.static_method("Zoo.Keeper", "Feed", params=[("a", animal)])
    walk = lib.static_method("Zoo.Keeper", "Walk", params=[("d", dog)])
    groom = lib.method(dog, "Groom")
    lib.prop(dog, "Tail", ts.string_type)
    lib.prop(animal, "Home", ts.try_get("Zoo.Dog") or dog)
    return ts, animal, dog, feed, walk, groom


class TestMethodIndex:
    def test_exact_param_lookup(self, world):
        ts, animal, dog, feed, walk, groom = world
        index = MethodIndex(ts)
        exact_dog = index.methods_with_exact_param(dog)
        assert walk in exact_dog
        assert groom in exact_dog  # receiver counts as a parameter
        assert feed not in exact_dog

    def test_accepting_walks_supertypes(self, world):
        ts, animal, dog, feed, walk, groom = world
        index = MethodIndex(ts)
        accepting = index.methods_accepting(dog)
        assert feed in accepting and walk in accepting
        # nearest types first: Dog-exact methods precede Animal methods
        assert accepting.index(walk) < accepting.index(feed)

    def test_accepting_excludes_unrelated(self, world):
        ts, animal, dog, feed, walk, groom = world
        index = MethodIndex(ts)
        assert walk not in index.methods_accepting(animal)

    def test_candidate_methods_picks_smallest_set(self, world):
        ts, animal, dog, feed, walk, groom = world
        index = MethodIndex(ts)
        # Dog accepts 3+ methods, Animal fewer; index must pick the smaller
        candidates = index.candidate_methods([dog, animal])
        by_animal = index.methods_accepting(animal)
        assert len(candidates) == min(
            len(index.methods_accepting(dog)), len(by_animal)
        )

    def test_candidate_methods_wildcards_fall_back_to_all(self, world):
        ts, *_ = world
        index = MethodIndex(ts)
        assert len(index.candidate_methods([None])) == len(index)

    def test_index_is_complete(self, world):
        """Index lookup finds every method a brute-force scan finds."""
        ts, animal, dog, *_ = world
        index = MethodIndex(ts)
        for query_type in (animal, dog, ts.string_type):
            brute = {
                id(m)
                for m in ts.all_methods()
                if any(
                    ts.implicitly_converts(query_type, p.type)
                    for p in m.all_params()
                )
            }
            indexed = {id(m) for m in index.methods_accepting(query_type)}
            assert indexed == brute


class TestIndexStats:
    def test_stats_shape(self, world):
        ts, *_ = world
        index = MethodIndex(ts)
        stats = index.stats()
        assert stats["methods"] == len(index)
        assert stats["indexed_types"] > 0
        assert stats["largest_bucket"] <= stats["methods"]
        assert 0 < stats["mean_bucket"] <= stats["largest_bucket"]

    def test_buckets_are_smaller_than_universe(self, world):
        """The point of the index: per-type candidate sets are much smaller
        than the set of all methods."""
        ts, animal, dog, *_ = world
        index = MethodIndex(ts)
        assert len(index.methods_with_exact_param(dog)) < len(index)


class TestReachabilityIndex:
    def test_self_is_reachable_at_zero(self, world):
        ts, animal, dog, *_ = world
        reach = ReachabilityIndex(ts)
        assert reach.reachable(dog, allow_methods=True)[dog.full_name] == 0

    def test_field_step(self, world):
        ts, animal, dog, *_ = world
        reach = ReachabilityIndex(ts)
        distances = reach.reachable(dog, allow_methods=False)
        assert distances["System.String"] == 1  # via Tail

    def test_steps_to_target_uses_conversion(self, world):
        ts, animal, dog, *_ = world
        reach = ReachabilityIndex(ts)
        # Animal.Home is a Dog, which converts to Animal
        assert reach.steps_to_target(animal, animal, allow_methods=False) == 0
        assert reach.steps_to_target(animal, dog, allow_methods=False) == 1

    def test_unreachable_is_none(self, world):
        ts, animal, dog, *_ = world
        lib = LibraryBuilder(ts)
        island = lib.cls("Far.Island")
        reach = ReachabilityIndex(ts)
        assert reach.steps_to_target(dog, island, allow_methods=True) is None

    def test_can_reach_respects_budget(self, world):
        ts, animal, dog, *_ = world
        reach = ReachabilityIndex(ts)
        assert reach.can_reach(dog, ts.string_type, within=1, allow_methods=False)
        assert not reach.can_reach(
            animal, ts.string_type, within=1, allow_methods=False
        )
        assert reach.can_reach(
            animal, ts.string_type, within=2, allow_methods=False
        )

    def test_depth_bound(self, world):
        ts, animal, dog, *_ = world
        reach = ReachabilityIndex(ts, max_depth=0)
        assert reach.steps_to_target(dog, ts.string_type, True) is None


class TestIncrementalRefresh:
    """Mutation windows patch the indexes instead of rebuilding them."""

    def test_field_only_edit_skips_both_patch_and_rebuild(self, world):
        from repro.codemodel.members import Field

        ts, animal, dog, *_ = world
        index = MethodIndex(ts)
        dog.add_field(Field("zzWeight", ts.string_type))
        index.refresh()
        # fields never enter the method index: a field-only window is a
        # pure restamp, not a patch
        assert index.patches == 0
        assert index.rebuilds == 0
        assert index.built_version == ts.version

    def test_method_edit_patches_to_cold_equivalence(self, world):
        from repro.codemodel.members import Method, Parameter

        ts, animal, dog, *_ = world
        warm = MethodIndex(ts)
        dog.add_method(
            Method("zzFetch", return_type=ts.string_type,
                   params=[Parameter("toy", ts.string_type)]))
        warm.refresh()
        assert warm.patches == 1
        assert warm.rebuilds == 0

        cold = MethodIndex(ts)
        assert [id(m) for m in warm.all_methods()] == [
            id(m) for m in cold.all_methods()]
        assert set(warm._by_exact_type) == set(cold._by_exact_type)
        for key, bucket in cold._by_exact_type.items():
            assert [id(m) for m in warm._by_exact_type[key]] == [
                id(m) for m in bucket]

    def test_method_reorder_patch_restores_declaration_order(self, world):
        ts, animal, dog, *_ = world
        warm = MethodIndex(ts)
        dog.set_member_order(methods=list(reversed(dog.methods)))
        warm.refresh()
        assert warm.patches == 1

        cold = MethodIndex(ts)
        assert [id(m) for m in warm.methods_accepting(dog)] == [
            id(m) for m in cold.methods_accepting(dog)]

    def test_structural_edit_forces_rebuild(self, world):
        ts, animal, dog, *_ = world
        lib = LibraryBuilder(ts)
        index = MethodIndex(ts)
        lib.cls("Zoo.Cat", base=animal)
        index.refresh()
        assert index.rebuilds == 1
        assert index.patches == 0

    def test_reachability_preserves_walks_on_unrelated_edit(self, world):
        from repro.codemodel.members import Field

        ts, animal, dog, *_ = world
        lib = LibraryBuilder(ts)
        island = lib.cls("Far.Island")
        reach = ReachabilityIndex(ts)
        reach.reachable(dog, allow_methods=False)
        assert (dog.full_name, False) in reach._walk_fp

        island.add_field(Field("zzSand", ts.string_type))
        reach.refresh()
        # Island is not in the Dog walk's footprint: the memo survives
        assert (dog.full_name, False) in reach._walk_fp

    def test_reachability_drops_walks_touching_the_edit(self, world):
        from repro.codemodel.members import Field

        ts, animal, dog, *_ = world
        reach = ReachabilityIndex(ts)
        reach.reachable(dog, allow_methods=False)
        assert (dog.full_name, False) in reach._walk_fp

        dog.add_field(Field("zzBone", ts.string_type))
        reach.refresh()
        assert (dog.full_name, False) not in reach._walk_fp
