"""Golden top-10 completions for every builtin universe.

The checked-in files under ``tests/golden/`` pin the exact ranked output
of a set of representative queries; any ranking or engine change that
moves a suggestion shows up as a readable per-line diff.  Regenerate
intentionally with::

    PYTHONPATH=src python -m pytest tests/test_golden_completions.py --update-golden
"""

import difflib
import json
import pathlib

import pytest

from repro import CompletionEngine, Context, TypeSystem, parse, to_source
from repro.corpus.frameworks import (
    build_geometry,
    build_paintdotnet,
    build_system_core,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

_FORMAT = "repro-golden"

#: pinned queries per universe — the paper-flavoured battery the bench
#: harness also exercises, plus a lookup each
QUERIES = {
    "paint": ["?", "?({img, size})", "?({img})", "img.?*f", "img.?m",
              "size := ?"],
    "geometry": ["?", "?({point, shapeStyle})", "point.?*m", "this.?f",
                 "point.?*m >= this.?*m"],
    "bcl": ["?", "?({now, span})", "now.?*f", "now.?m",
            "now.?*m >= now.?*m"],
}


def _universe(name):
    ts = TypeSystem()
    if name == "paint":
        lib = build_paintdotnet(ts)
        context = Context(ts, locals={"img": lib.document, "size": lib.size})
    elif name == "geometry":
        lib = build_geometry(ts)
        context = Context(
            ts,
            locals={"point": lib.point, "shapeStyle": lib.shape_style},
            this_type=lib.ellipse_arc,
        )
    else:
        lib = build_system_core(ts)
        context = Context(
            ts, locals={"now": lib.datetime, "span": lib.timespan}
        )
    return ts, context


def _current_completions(name):
    ts, context = _universe(name)
    engine = CompletionEngine(ts)
    result = {}
    for source in QUERIES[name]:
        pe = parse(source, context)
        result[source] = [
            {"rank": rank, "score": c.score, "text": to_source(c.expr)}
            for rank, c in enumerate(engine.complete(pe, context, n=10), 1)
        ]
    return result


def _render(queries):
    """Flatten a golden document into diff-friendly lines."""
    lines = []
    for source in sorted(queries):
        lines.append("query: {}".format(source))
        for entry in queries[source]:
            lines.append("  {:>2}. (score {:>3}) {}".format(
                entry["rank"], entry["score"], entry["text"]))
    return lines


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_golden_completions(name, update_golden):
    path = GOLDEN_DIR / "{}.json".format(name)
    current = _current_completions(name)

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        with open(path, "w") as handle:
            json.dump(
                {"format": _FORMAT, "version": 1, "universe": name,
                 "queries": current},
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
        pytest.skip("rewrote {}".format(path.name))

    assert path.exists(), (
        "no golden file {}; run with --update-golden to create it".format(
            path)
    )
    with open(path) as handle:
        document = json.load(handle)
    assert document.get("format") == _FORMAT

    expected = document["queries"]
    if expected != current:
        diff = "\n".join(difflib.unified_diff(
            _render(expected), _render(current),
            fromfile="golden/{}.json".format(name), tofile="current",
            lineterm="",
        ))
        pytest.fail(
            "completions drifted from the golden file "
            "(--update-golden rewrites it):\n{}".format(diff)
        )


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_golden_files_cover_pinned_queries(name):
    """The checked-in files stay in sync with the pinned query battery."""
    path = GOLDEN_DIR / "{}.json".format(name)
    assert path.exists()
    with open(path) as handle:
        document = json.load(handle)
    assert sorted(document["queries"]) == sorted(QUERIES[name])
