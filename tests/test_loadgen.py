"""Load-generator unit tests against an in-process server fixture.

Pins the harness contract from ISSUE/ROADMAP: worker fan-out honours
``n_workers``, the emitted document is schema-valid ``repro-bench`` v1
that round-trips the existing ``repro diff`` tooling, and a tiny
``deadline_ms`` produces a nonzero shed rate **without failing the
run** — shedding is a measured outcome, not an error.
"""

import io
import json

import pytest

from repro.__main__ import main as cli_main
from repro.eval.bench import load_bench, save_bench, validate_bench
from repro.obs import diff_runs
from repro.obs.diff import load_run_artifact, render_text
from repro.serve import render_loadgen, run_loadgen

UNIVERSE = "bcl"


@pytest.fixture(scope="module")
def document():
    """One short spawned-server run shared by the shape tests."""
    return run_loadgen(universe=UNIVERSE, n_workers=3, duration_s=0.6,
                       label="unit")


class TestFanOut:
    def test_honours_n_workers(self, document):
        serve = document["serve"]
        assert serve["n_workers"] == 3
        assert len(serve["per_worker_requests"]) == 3
        assert all(count > 0 for count in serve["per_worker_requests"])
        assert sum(serve["per_worker_requests"]) == serve["requests"]

    def test_totals_are_consistent(self, document):
        serve = document["serve"]
        assert serve["ok"] + serve["shed"] + serve["errors"] == \
            serve["requests"]
        assert serve["errors"] == 0
        assert serve["ok"] > 0
        assert serve["throughput_rps"] > 0
        assert serve["wall_s"] >= serve["duration_s"] * 0.9

    def test_latency_percentiles_ordered(self, document):
        workload = document["workloads"][0]
        assert workload["name"] == "serve/{}".format(UNIVERSE)
        assert 0 < workload["p50_ms"] <= workload["p95_ms"]
        assert workload["queries"] == document["serve"]["ok"]
        assert workload["steps"] >= 0


class TestBenchContract:
    def test_document_is_schema_valid(self, document):
        assert validate_bench(document) is document

    def test_round_trips_save_load_and_diff(self, document, tmp_path):
        path = tmp_path / "BENCH_serve_unit.json"
        save_bench(str(path), document)
        loaded = load_bench(str(path))
        assert loaded["label"] == "serve_unit"
        artifact = load_run_artifact(str(path))
        diff = diff_runs(artifact, artifact)
        assert diff.old_label == diff.new_label == "serve_unit"
        assert render_text(diff)

    def test_render_is_human_readable(self, document):
        lines = render_loadgen(document)
        assert any("serve_unit" in line for line in lines)
        assert any("shed rate" in line for line in lines)


class TestDeadlineShedding:
    def test_tiny_deadline_sheds_without_failing(self):
        document = run_loadgen(universe=UNIVERSE, n_workers=2,
                               duration_s=0.5, deadline_ms=0.5,
                               label="shed")
        serve = document["serve"]
        assert serve["requests"] > 0
        assert serve["shed"] > 0
        assert serve["shed_rate"] > 0
        assert serve["errors"] == 0, \
            "a shed is a structured outcome, never an error"
        validate_bench(document)


class TestValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            run_loadgen(universe=UNIVERSE, n_workers=0, duration_s=0.5)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            run_loadgen(universe=UNIVERSE, n_workers=1, duration_s=0)

    def test_rejects_unknown_universe(self):
        with pytest.raises((KeyError, ValueError)):
            run_loadgen(universe="nope", n_workers=1, duration_s=0.5)


class TestCliSurface:
    def _run(self, argv):
        out = io.StringIO()
        code = cli_main(argv, write=lambda line="": out.write(str(line) + "\n"))
        return code, out.getvalue()

    def test_loadtest_writes_valid_bench(self, tmp_path):
        output = tmp_path / "BENCH_serve_cli.json"
        code, text = self._run([
            "loadtest", "--universe", UNIVERSE, "--n-workers", "2",
            "--duration", "0.5", "--label", "cli", "-o", str(output)])
        assert code == 0, text
        assert "wrote {}".format(output) in text
        document = json.loads(output.read_text())
        validate_bench(document)
        assert document["serve"]["n_workers"] == 2

    def test_loadtest_usage_errors(self, tmp_path):
        code, text = self._run(["loadtest", "--n-workers", "0"])
        assert code == 2
        assert "--n-workers" in text
        code, text = self._run(["loadtest", "--universe", "nope"])
        assert code == 2
        assert "unknown universe" in text
        code, text = self._run(["loadtest", "--duration", "0"])
        assert code == 2
        code, text = self._run(["loadtest", "--deadline-ms", "-1"])
        assert code == 2
