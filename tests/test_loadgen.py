"""Load-generator unit tests against an in-process server fixture.

Pins the harness contract from ISSUE/ROADMAP: worker fan-out honours
``n_workers``, the emitted document is schema-valid ``repro-bench`` v1
that round-trips the existing ``repro diff`` tooling, and a tiny
``deadline_ms`` produces a nonzero shed rate **without failing the
run** — shedding is a measured outcome, not an error.
"""

import io
import json

import pytest

from repro.__main__ import main as cli_main
from repro.eval.bench import load_bench, save_bench, validate_bench
from repro.obs import diff_runs
from repro.obs.diff import load_run_artifact, render_text
from repro.serve import render_loadgen, run_loadgen

UNIVERSE = "bcl"


@pytest.fixture(scope="module")
def document():
    """One short spawned-server run shared by the shape tests."""
    return run_loadgen(universe=UNIVERSE, n_workers=3, duration_s=0.6,
                       label="unit")


class TestFanOut:
    def test_honours_n_workers(self, document):
        serve = document["serve"]
        assert serve["n_workers"] == 3
        assert len(serve["per_worker_requests"]) == 3
        assert all(count > 0 for count in serve["per_worker_requests"])
        assert sum(serve["per_worker_requests"]) == serve["requests"]

    def test_totals_are_consistent(self, document):
        serve = document["serve"]
        assert serve["ok"] + serve["shed"] + serve["errors"] == \
            serve["requests"]
        assert serve["errors"] == 0
        assert serve["ok"] > 0
        assert serve["throughput_rps"] > 0
        assert serve["wall_s"] >= serve["duration_s"] * 0.9

    def test_latency_percentiles_ordered(self, document):
        workload = document["workloads"][0]
        assert workload["name"] == "serve/{}".format(UNIVERSE)
        assert 0 < workload["p50_ms"] <= workload["p95_ms"]
        assert workload["queries"] == document["serve"]["ok"]
        assert workload["steps"] >= 0


class TestBenchContract:
    def test_document_is_schema_valid(self, document):
        assert validate_bench(document) is document

    def test_round_trips_save_load_and_diff(self, document, tmp_path):
        path = tmp_path / "BENCH_serve_unit.json"
        save_bench(str(path), document)
        loaded = load_bench(str(path))
        assert loaded["label"] == "serve_unit"
        artifact = load_run_artifact(str(path))
        diff = diff_runs(artifact, artifact)
        assert diff.old_label == diff.new_label == "serve_unit"
        assert render_text(diff)

    def test_render_is_human_readable(self, document):
        lines = render_loadgen(document)
        assert any("serve_unit" in line for line in lines)
        assert any("shed rate" in line for line in lines)


class TestDeadlineShedding:
    def test_tiny_deadline_sheds_without_failing(self):
        document = run_loadgen(universe=UNIVERSE, n_workers=2,
                               duration_s=0.5, deadline_ms=0.5,
                               label="shed")
        serve = document["serve"]
        assert serve["requests"] > 0
        assert serve["shed"] > 0
        assert serve["shed_rate"] > 0
        assert serve["errors"] == 0, \
            "a shed is a structured outcome, never an error"
        validate_bench(document)


class TestCorrelationAndHistogram:
    def test_document_carries_latency_histogram(self, document):
        serve = document["serve"]
        histogram = serve["latency_histogram"]
        assert histogram["count"] == serve["ok"]
        assert sum(histogram["buckets"]) == histogram["count"]
        assert len(histogram["buckets"]) == len(histogram["bounds"]) + 1

    def test_document_names_slowest_request_ids(self, document):
        slowest = document["serve"]["slowest_requests"]
        assert slowest, "a run with ok requests must name its slowest"
        assert len(slowest) <= 10
        latencies = [entry["latency_ms"] for entry in slowest]
        assert latencies == sorted(latencies, reverse=True)
        for entry in slowest:
            worker, _, sequence = entry["request_id"].partition("-")
            assert worker.startswith("w") and int(worker[1:]) in (0, 1, 2)
            assert int(sequence) >= 1

    def test_render_names_the_slowest(self, document):
        lines = render_loadgen(document)
        assert any("slowest:" in line for line in lines)


class TestChaosThroughServe:
    @pytest.fixture(scope="class")
    def chaos_run(self, tmp_path_factory):
        log_dir = tmp_path_factory.mktemp("chaos-logs")
        document = run_loadgen(
            universe=UNIVERSE, n_workers=2, duration_s=1.0, label="chaos",
            run_log_dir=str(log_dir),
            fault_plan={"seed": 11, "rate": 1.0})
        return document, log_dir

    def test_faults_degrade_but_never_error(self, chaos_run):
        document, _ = chaos_run
        serve = document["serve"]
        assert serve["errors"] == 0, \
            "an injected fault must never become a protocol error"
        assert serve["ok"] > 0
        assert serve["degraded"] > 0, \
            "rate=1.0 chaos must visibly degrade answers"
        assert serve["chaos"] == {
            "seed": 11, "rate": 1.0, "max_on_call": 12,
            "sites": ["oracle", "index_lookup", "type_check",
                      "namespaces", "matching_name"],
            "times": [1, 2, 3, None],
        }
        validate_bench(document)

    def test_chaos_run_log_validates_and_burns_slo(self, chaos_run):
        from repro.api import slo_report
        from repro.obs import validate_runlog_text

        _, log_dir = chaos_run
        path = log_dir / "serve_{}.ndjson".format(UNIVERSE)
        text = path.read_text()
        assert validate_runlog_text(text) == []
        records = [json.loads(line) for line in text.splitlines()]
        with_faults = [r for r in records
                       if r.get("kind") == "server_request"
                       and r.get("faults")]
        assert with_faults
        report = slo_report(str(path))
        assert report["server_requests"] > 0
        whole_log = report["windows"][-1]
        assert whole_log["degraded"] > 0
        assert whole_log["burn"]["errors"] > 0

    def test_fault_plan_requires_in_process_server(self):
        with pytest.raises(ValueError, match="in-process"):
            run_loadgen(url="http://127.0.0.1:1", universe=UNIVERSE,
                        n_workers=1, duration_s=0.5,
                        fault_plan={"seed": 1})


class TestValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            run_loadgen(universe=UNIVERSE, n_workers=0, duration_s=0.5)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            run_loadgen(universe=UNIVERSE, n_workers=1, duration_s=0)

    def test_rejects_unknown_universe(self):
        with pytest.raises((KeyError, ValueError)):
            run_loadgen(universe="nope", n_workers=1, duration_s=0.5)


class TestCliSurface:
    def _run(self, argv):
        out = io.StringIO()
        code = cli_main(argv, write=lambda line="": out.write(str(line) + "\n"))
        return code, out.getvalue()

    def test_loadtest_writes_valid_bench(self, tmp_path):
        output = tmp_path / "BENCH_serve_cli.json"
        code, text = self._run([
            "loadtest", "--universe", UNIVERSE, "--n-workers", "2",
            "--duration", "0.5", "--label", "cli", "-o", str(output)])
        assert code == 0, text
        assert "wrote {}".format(output) in text
        document = json.loads(output.read_text())
        validate_bench(document)
        assert document["serve"]["n_workers"] == 2

    def test_loadtest_usage_errors(self, tmp_path):
        code, text = self._run(["loadtest", "--n-workers", "0"])
        assert code == 2
        assert "--n-workers" in text
        code, text = self._run(["loadtest", "--universe", "nope"])
        assert code == 2
        assert "unknown universe" in text
        code, text = self._run(["loadtest", "--duration", "0"])
        assert code == 2
        code, text = self._run(["loadtest", "--deadline-ms", "-1"])
        assert code == 2
        code, text = self._run([
            "loadtest", "--url", "http://127.0.0.1:1",
            "--fault-plan", '{"seed": 1}'])
        assert code == 2
        assert "--fault-plan" in text
