"""Tests for the markdown report generator and its CLI wiring."""

import pytest

from repro.__main__ import main as cli_main
from repro.eval import EvalConfig
from repro.eval.markdown import generate_report


@pytest.fixture(scope="module")
def report(request):
    tiny = request.getfixturevalue("tiny_project")
    cfg = EvalConfig(
        limit=25,
        max_calls_per_project=8,
        max_arguments_per_project=10,
        max_assignments_per_project=5,
        max_comparisons_per_project=4,
    )
    return generate_report([tiny], cfg, title="Tiny report")


class TestReport:
    def test_contains_every_section(self, report):
        for heading in [
            "# Tiny report",
            "## Table 1",
            "## Figure 9",
            "## Figure 10",
            "## Figures 11 & 12",
            "## Figure 13",
            "## Figure 14",
            "## Figure 15",
            "## Figure 16",
            "## Query latency",
        ]:
            assert heading in report

    def test_tables_are_markdown(self, report):
        assert "| Program | # calls |" in report
        assert "|---|" in report

    def test_totals_row_present(self, report):
        assert "Totals" in report

    def test_percentages_rendered(self, report):
        assert "%" in report


class TestCliWiring:
    def test_eval_markdown_writes_file(self, tmp_path, monkeypatch):
        # shrink the capped config so the CLI run stays fast
        import repro.eval.experiments as exp

        real_init = exp.EvalConfig.__init__

        def tiny_init(self, **kwargs):
            kwargs["max_calls_per_project"] = 3
            kwargs["max_arguments_per_project"] = 4
            kwargs["max_assignments_per_project"] = 2
            kwargs["max_comparisons_per_project"] = 2
            kwargs.setdefault("limit", 20)
            real_init(self, **kwargs)

        monkeypatch.setattr(exp.EvalConfig, "__init__", tiny_init)
        target = tmp_path / "report.md"
        output = []
        code = cli_main(
            ["eval", "--markdown", str(target)], write=output.append
        )
        assert code == 0
        text = target.read_text()
        assert "## Table 1" in text
        assert "WiX" in text
