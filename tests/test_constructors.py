"""Tests for the constructor extension (`new T(...)`).

The paper's implementation "does not generate constructor calls when asked
for an unknown method"; ours supports them behind
``EngineConfig.generate_constructors`` and always honours explicit
``new T(?)`` queries.
"""

import pytest

from repro import (
    Context,
    CompletionEngine,
    EngineConfig,
    TypeSystem,
    parse,
    to_source,
)
from repro.codemodel import LibraryBuilder
from repro.lang import Call, KnownCall, ParseError, derivable, well_typed


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    point = lib.struct("Geo.Point")
    lib.prop(point, "X", ts.primitive("double"))
    ctor2 = lib.ctor(point, params=[("x", ts.primitive("double")),
                                    ("y", ts.primitive("double"))])
    ctor0 = lib.ctor(point)
    seg = lib.cls("Geo.Segment")
    lib.ctor(seg, params=[("a", point), ("b", point)])
    ctx = Context(ts, locals={"p": point, "d": ts.primitive("double")})
    return ts, ctx, point, seg, ctor2, ctor0


class TestModel:
    def test_ctor_shape(self, world):
        ts, _ctx, point, _seg, ctor2, _ctor0 = world
        assert ctor2.is_constructor
        assert ctor2.is_static
        assert ctor2.return_type is point
        assert ctor2.arity == 2

    def test_zero_arg_ctor_not_a_global_root(self, world):
        ts, ctx, *_ = world
        assert not any(
            isinstance(r, Call) and r.method.is_constructor
            for r in ctx.global_roots()
        )


class TestSyntax:
    def test_parse_complete_new(self, world):
        ts, ctx, point, _seg, ctor2, _c0 = world
        expr = parse("new Geo.Point(d, d)", ctx)
        assert isinstance(expr, Call)
        assert expr.method is ctor2
        assert well_typed(expr, ts)

    def test_parse_new_with_hole(self, world):
        ts, ctx, point, seg, *_ = world
        expr = parse("new Geo.Segment(p, ?)", ctx)
        assert isinstance(expr, KnownCall)
        assert all(m.is_constructor for m in expr.candidates)

    def test_print_round_trip(self, world):
        ts, ctx, *_ = world
        expr = parse("new Geo.Point(d, d)", ctx)
        assert to_source(expr) == "new Geo.Point(d, d)"
        assert parse(to_source(expr), ctx) == expr

    def test_simple_type_name(self, world):
        ts, ctx, *_ = world
        expr = parse("new Point(d, d)", ctx)
        assert isinstance(expr, Call)

    def test_new_without_args_errors(self, world):
        ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("new Geo.Point", ctx)

    def test_new_unknown_type_errors(self, world):
        ts, ctx, *_ = world
        with pytest.raises(ParseError):
            parse("new Nope.Missing(p)", ctx)


class TestCompletion:
    def test_explicit_new_query_completes(self, world):
        ts, ctx, point, seg, *_ = world
        engine = CompletionEngine(ts)
        pe = parse("new Geo.Segment(p, ?)", ctx)
        results = engine.complete(pe, ctx, n=5)
        assert results
        assert all(c.expr.method.is_constructor for c in results)
        assert to_source(results[0].expr) == "new Geo.Segment(p, p)"
        for c in results:
            assert well_typed(c.expr, ts)
            assert derivable(pe, c.expr, ctx)

    def test_unknown_call_skips_ctors_by_default(self, world):
        ts, ctx, point, *_ = world
        engine = CompletionEngine(ts)
        pe = parse("?({p})", ctx)
        for c in engine.complete(pe, ctx, n=40):
            assert not c.expr.method.is_constructor

    def test_unknown_call_finds_ctors_when_enabled(self, world):
        ts, ctx, point, seg, *_ = world
        engine = CompletionEngine(
            ts, EngineConfig(generate_constructors=True)
        )
        pe = parse("?({p})", ctx)
        results = engine.complete(pe, ctx, n=40)
        assert any(
            c.expr.method.is_constructor
            and c.expr.method.declaring_type is seg
            for c in results
        )

    def test_ctor_scores_are_consistent(self, world):
        from repro import Ranker

        ts, ctx, *_ = world
        engine = CompletionEngine(
            ts, EngineConfig(generate_constructors=True)
        )
        ranker = Ranker(ctx)
        pe = parse("?({p})", ctx)
        for c in engine.complete(pe, ctx, n=40):
            assert c.score == ranker.score(c.expr)
