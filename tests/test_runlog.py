"""Structured run logs: emission, schema, and the round-trip guarantee.

The acceptance property of the observability layer: run a battery with
a run log attached, and the NDJSON document (a) validates against the
checked-in schema and (b) reproduces — through ``repro profile`` /
``repro diff`` arithmetic — the same totals as the in-memory Metrics
registry and the live span trees (docs/OBSERVABILITY.md).
"""

import io
import json

import pytest

from repro.__main__ import main as cli_main
from repro.eval.battery import battery_for
from repro.ide.session import CompletionSession
from repro.ide.workspace import Workspace
from repro.obs import (
    RunLog,
    diff_runs,
    profile_run_log,
    profile_traces,
    read_run_log,
    signature_hex,
    validate_runlog_text,
)


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.001  # 1 ms per look
        return self.now


class _FakeStatus:
    value = "ok"


class _FakeOutcome:
    status = _FakeStatus()
    elapsed_ms = 12.5
    steps = 42
    cached = True
    completions = [1, 2, 3]
    degraded = {"b", "a"}
    trace = None


class TestRunLogEmission:
    def test_manifest_is_first_and_complete(self):
        log = RunLog("unit", config_signature=signature_hex(("x", 1)),
                     universes={"paint": 3}, seed=7, sha="deadbeef")
        manifest = log.records()[0]
        assert manifest["kind"] == "run"
        assert manifest["format"] == "repro-runlog"
        assert manifest["version"] == 1
        assert manifest["label"] == "unit"
        assert manifest["run_id"].startswith("unit-")
        assert manifest["git_sha"] == "deadbeef"
        assert manifest["universes"] == {"paint": 3}
        assert manifest["seed"] == 7
        assert len(manifest["config_signature"]) == 16

    def test_annotate_backfills_the_manifest(self):
        log = RunLog("unit", sha="x")
        assert log.records()[0]["universes"] == {}
        log.annotate(universes={"paint": 3}, seed=11,
                     config_signature=signature_hex("cfg"))
        manifest = log.records()[0]
        assert manifest["universes"] == {"paint": 3}
        assert manifest["seed"] == 11
        assert len(manifest["config_signature"]) == 16
        # partial annotate leaves the other fields alone
        log.annotate(seed=12)
        assert log.records()[0]["universes"] == {"paint": 3}
        assert log.records()[0]["seed"] == 12

    def test_event_phase_and_query_records(self):
        log = RunLog("unit", clock=_FakeClock(), sha="x")
        log.event("corpus_skip", project="Tiny", stage="parse")
        with log.phase("eval/methods", projects=2):
            pass
        log.query_event("now.?m", _FakeOutcome())
        kinds = [record["kind"] for record in log.records()]
        assert kinds == ["run", "event", "phase", "query"]
        event, phase, query = log.records()[1:]
        assert event["data"] == {"project": "Tiny", "stage": "parse"}
        assert phase["name"] == "eval/methods"
        assert phase["duration_ms"] == pytest.approx(
            phase["end_ms"] - phase["start_ms"])
        # outcome fields are duck-typed off the object
        assert query["status"] == "ok"
        assert query["elapsed_ms"] == 12.5
        assert query["steps"] == 42
        assert query["cached"] is True
        assert query["completions"] == 3
        assert query["degraded"] == ["a", "b"]
        assert len(log) == 4

    def test_phase_emits_even_when_the_body_raises(self):
        log = RunLog("unit", sha="x")
        with pytest.raises(RuntimeError):
            with log.phase("corpus/Tiny"):
                raise RuntimeError("boom")
        assert log.records()[-1]["kind"] == "phase"

    def test_ndjson_round_trip(self):
        log = RunLog("unit", sha="x")
        log.query_event("?", status="parse_error", error="bad token")
        text = log.to_ndjson()
        assert validate_runlog_text(text) == []
        parsed = read_run_log(text)
        assert parsed == log.records()

    def test_read_rejects_text_without_manifest(self):
        line = json.dumps({"kind": "event", "name": "x", "t_ms": 0.0,
                           "data": {}})
        with pytest.raises(ValueError, match="manifest"):
            read_run_log(line + "\n")

    def test_validator_flags_unknown_fields(self):
        log = RunLog("unit", sha="x")
        records = log.records()
        records[0]["surprise"] = 1
        text = json.dumps(records[0]) + "\n"
        assert validate_runlog_text(text) != []


class TestWorkspaceWiring:
    def test_start_run_log_stamps_config_and_universe(self):
        workspace = Workspace.builtin("bcl")
        run_log = workspace.start_run_log(seed=3)
        assert workspace.run_log is run_log
        assert workspace.engine.run_log is run_log
        manifest = run_log.records()[0]
        assert manifest["label"] == workspace.name
        assert manifest["universes"] == {workspace.name: workspace.ts.version}
        assert len(manifest["config_signature"]) == 16
        assert manifest["seed"] == 3

    def test_session_logs_queries_batches_and_parse_failures(self):
        workspace = Workspace.builtin("bcl")
        run_log = workspace.start_run_log()
        session = CompletionSession(workspace, n=5)
        session.declare("now", "System.DateTime")
        session.complete_many(["now.?m", "((", "now.?f"])
        records = run_log.records()
        queries = [r for r in records if r["kind"] == "query"]
        assert len(queries) == 3
        failures = [q for q in queries if q["status"] == "parse_error"]
        assert len(failures) == 1
        assert failures[0]["source"] == "(("
        assert failures[0]["error"]
        batches = [r for r in records
                   if r["kind"] == "event" and r["name"] == "batch"]
        assert len(batches) == 1
        assert batches[0]["data"]["size"] == 2  # parse failures excluded
        assert validate_runlog_text(run_log.to_ndjson()) == []


class TestBatteryRoundTrip:
    """Battery -> NDJSON -> profile/diff equals the in-memory registry."""

    @pytest.fixture(scope="class")
    def battery_run(self):
        workspace = Workspace.builtin("bcl")
        run_log = workspace.start_run_log(seed=1)
        battery = battery_for("bcl")
        session = battery.session(workspace, n=10)
        session.trace = True
        records = session.complete_many(battery.queries)
        return workspace, run_log, records

    def test_log_validates_against_the_schema(self, battery_run):
        _, run_log, _ = battery_run
        assert validate_runlog_text(run_log.to_ndjson()) == []

    def test_query_records_match_the_metrics_registry(self, battery_run):
        workspace, run_log, _ = battery_run
        parsed = read_run_log(run_log.to_ndjson())
        queries = [r for r in parsed if r["kind"] == "query"]
        metrics = workspace.metrics()
        assert len(queries) == metrics["counters"]["queries"]
        assert sum(1 for q in queries if q["cached"]) == \
            metrics["counters"].get("queries_cached", 0)
        steps = metrics["histograms"]["steps_per_query"]
        assert sum(q["steps"] for q in queries) == \
            pytest.approx(steps["count"] * steps["mean"])

    def test_profile_from_log_equals_profile_from_live_traces(
            self, battery_run):
        _, run_log, records = battery_run
        parsed = read_run_log(run_log.to_ndjson())
        from_log = profile_run_log(parsed)
        in_memory = profile_traces(
            [r.trace for r in records if r.trace is not None])
        assert from_log.traces == in_memory.traces > 0
        assert from_log.to_dict() == in_memory.to_dict()

    def test_self_diff_shows_no_regression(self, battery_run):
        _, run_log, _ = battery_run
        parsed = read_run_log(run_log.to_ndjson())
        diff = diff_runs(parsed, parsed)
        assert diff.top_regression is None
        assert diff.old_total_ms == diff.new_total_ms > 0


class TestCliSurfaces:
    def _run(self, argv):
        out = io.StringIO()
        code = cli_main(argv, write=lambda line="": out.write(str(line) + "\n"))
        return code, out.getvalue()

    @pytest.fixture()
    def log_path(self, tmp_path):
        workspace = Workspace.builtin("bcl")
        run_log = workspace.start_run_log()
        session = CompletionSession(workspace, n=5)
        session.declare("now", "System.DateTime")
        session.trace = True
        session.complete_many(["now.?m", "now.?f"])
        path = tmp_path / "runlog.ndjson"
        run_log.write(str(path))
        return str(path)

    def test_stats_validate_runlog(self, log_path):
        code, output = self._run(["stats", "--validate-runlog", log_path])
        assert code == 0
        assert "valid repro-runlog NDJSON" in output

    def test_stats_validate_runlog_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.ndjson"
        bad.write_text(json.dumps({"kind": "event", "name": "x"}) + "\n")
        code, output = self._run(["stats", "--validate-runlog", str(bad)])
        assert code == 1

    def test_profile_from_log_and_flame_export(self, log_path, tmp_path):
        flame = tmp_path / "flame.txt"
        code, output = self._run([
            "profile", "--from-log", log_path, "--flame", str(flame)])
        assert code == 0
        assert "query" in output
        lines = flame.read_text().splitlines()
        assert lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path
            assert int(value) >= 0

    def test_profile_battery_prints_table(self):
        code, output = self._run(["profile", "--universe", "bcl", "-n", "5"])
        assert code == 0
        assert "battery" in output
        assert "self ms" in output

    def test_diff_command_on_run_logs(self, log_path):
        code, output = self._run(["diff", log_path, log_path])
        assert code == 0
        assert "no phase regressed" in output

    def test_diff_writes_markdown_report(self, log_path, tmp_path):
        report = tmp_path / "regression.md"
        code, _ = self._run([
            "diff", log_path, log_path, "--markdown", str(report)])
        assert code == 0
        assert "# Regression attribution" in report.read_text()

    def test_diff_rejects_bad_artifact(self, tmp_path):
        bad = tmp_path / "junk.txt"
        bad.write_text("junk")
        code, output = self._run(["diff", str(bad), str(bad)])
        assert code == 2
        assert "error:" in output

    def test_profile_rejects_unknown_universe(self):
        code, output = self._run(["profile", "--universe", "nope"])
        assert code == 2


class TestServerRequestRecords:
    """The ``server_request`` record kind added for the serving layer:
    good records validate, streaming works, and the schema still
    rejects genuinely bad records (the regression the ISSUE pins)."""

    def _log(self):
        return RunLog("serve-unit", config_signature=signature_hex(("s", 1)),
                      universes={"bcl": 1})

    def test_full_record_validates(self):
        log = self._log()
        log.server_request(
            endpoint="/v1/complete", status=200, code="ok",
            elapsed_ms=1.25, workspace="bcl", queue_ms=0.1,
            deadline_ms=50.0, queries=1, completions=10, shed=False)
        assert validate_runlog_text(log.to_ndjson()) == []
        record = log.records()[-1]
        assert record["kind"] == "server_request"
        assert record["status"] == 200
        assert record["shed"] is False

    def test_minimal_record_validates(self):
        log = self._log()
        log.server_request(endpoint="/v1/healthz", status=405,
                           code="method_not_allowed", elapsed_ms=0.02,
                           shed=False)
        assert validate_runlog_text(log.to_ndjson()) == []

    def test_shed_record_validates(self):
        log = self._log()
        log.server_request(endpoint="/v1/complete", status=429,
                           code="shed", elapsed_ms=0.5, workspace="bcl",
                           deadline_ms=1.0, shed=True)
        assert validate_runlog_text(log.to_ndjson()) == []
        assert log.records()[-1]["shed"] is True

    def _lines(self, log):
        return log.to_ndjson().splitlines()

    def test_missing_required_field_rejected(self):
        log = self._log()
        log.server_request(endpoint="/v1/complete", status=200, code="ok",
                           elapsed_ms=1.0)
        lines = self._lines(log)
        record = json.loads(lines[-1])
        del record["status"]
        lines[-1] = json.dumps(record)
        problems = validate_runlog_text("\n".join(lines) + "\n")
        assert problems
        assert any("status" in problem for problem in problems)

    def test_unknown_extra_field_rejected(self):
        log = self._log()
        log.server_request(endpoint="/v1/complete", status=200, code="ok",
                           elapsed_ms=1.0)
        lines = self._lines(log)
        record = json.loads(lines[-1])
        record["smuggled"] = True
        lines[-1] = json.dumps(record)
        assert validate_runlog_text("\n".join(lines) + "\n")

    def test_unknown_kind_still_rejected(self):
        log = self._log()
        lines = self._lines(log)
        lines.append(json.dumps({"kind": "nonsense", "t_ms": 1.0}))
        problems = validate_runlog_text("\n".join(lines) + "\n")
        assert problems

    def test_observability_fields_validate(self):
        log = self._log()
        log.server_request(
            endpoint="/v1/complete", status=200, code="ok",
            elapsed_ms=1.25, workspace="bcl", queries=1, completions=10,
            request_id="req-1", degraded=["oracle", "abstract_types"],
            truncated=1, faults=["oracle@1", "oracle@2"],
            spans=[{"kind": "span", "span": 0, "parent": None,
                    "name": "complete", "start_ms": 0.0, "end_ms": 1.0,
                    "duration_ms": 1.0, "counters": {}},
                   {"kind": "span", "span": 1, "parent": 0,
                    "name": "walk", "start_ms": 0.1, "end_ms": 0.9,
                    "duration_ms": 0.8, "counters": {"steps": 4}}])
        assert validate_runlog_text(log.to_ndjson()) == []
        record = log.records()[-1]
        assert record["request_id"] == "req-1"
        assert record["degraded"] == ["abstract_types", "oracle"]
        assert record["faults"] == ["oracle@1", "oracle@2"]
        assert len(record["spans"]) == 2

    def test_falsy_observability_fields_stay_off_the_record(self):
        log = self._log()
        log.server_request(endpoint="/v1/complete", status=200, code="ok",
                           elapsed_ms=1.0, request_id="req-2",
                           degraded=None, truncated=0, faults=[],
                           spans=None)
        record = log.records()[-1]
        for absent in ("degraded", "truncated", "faults", "spans"):
            assert absent not in record
        assert validate_runlog_text(log.to_ndjson()) == []

    def test_wrongly_typed_observability_fields_rejected(self):
        log = self._log()
        log.server_request(endpoint="/v1/complete", status=200, code="ok",
                           elapsed_ms=1.0, request_id="req-3")
        lines = self._lines(log)
        record = json.loads(lines[-1])
        record["request_id"] = 17  # schema says string
        lines[-1] = json.dumps(record)
        problems = validate_runlog_text("\n".join(lines) + "\n")
        assert any("request_id" in problem for problem in problems)

    def test_attach_stream_replays_then_follows(self):
        log = self._log()
        log.event("warm", tenant="bcl")
        sink = io.StringIO()
        log.attach_stream(sink)
        replayed = sink.getvalue().splitlines()
        assert len(replayed) == len(log)  # manifest + event replayed
        assert json.loads(replayed[0])["kind"] == "run"
        log.server_request(endpoint="/v1/complete", status=200, code="ok",
                           elapsed_ms=0.8)
        streamed = sink.getvalue().splitlines()
        assert len(streamed) == len(replayed) + 1
        assert json.loads(streamed[-1])["kind"] == "server_request"
        assert validate_runlog_text(sink.getvalue()) == []


class TestBoundFields:
    """``RunLog.bind``: correlation fields applied to records emitted
    inside the context, thread-locally (the serve path binds the
    request id on the tenant thread)."""

    def _log(self):
        return RunLog("bind-unit", universes={"bcl": 1})

    def test_bind_stamps_query_and_event_records(self):
        log = self._log()
        with log.bind(request_id="req-a"):
            log.query_event("?", status="ok")
            log.event("batch", size=1)
        log.query_event("?", status="ok")
        records = log.records()[1:]
        assert records[0]["request_id"] == "req-a"
        assert records[1]["request_id"] == "req-a"
        assert "request_id" not in records[2], \
            "binding must end with the context"
        assert validate_runlog_text(log.to_ndjson()) == []

    def test_bind_never_overwrites_explicit_fields(self):
        log = self._log()
        with log.bind(request_id="outer"):
            log.server_request(endpoint="/v1/complete", status=200,
                               code="ok", elapsed_ms=1.0,
                               request_id="explicit")
        assert log.records()[-1]["request_id"] == "explicit"

    def test_nested_bind_restores_the_outer_binding(self):
        log = self._log()
        with log.bind(request_id="outer"):
            with log.bind(request_id="inner"):
                log.query_event("?", status="ok")
            log.query_event("?", status="ok")
        inner, outer = log.records()[-2:]
        assert inner["request_id"] == "inner"
        assert outer["request_id"] == "outer"

    def test_bindings_are_thread_local(self):
        import threading

        log = self._log()
        ready = threading.Barrier(2, timeout=10)

        def worker(request_id):
            with log.bind(request_id=request_id):
                ready.wait()  # both threads hold their binding at once
                log.query_event("?", status="ok")
                ready.wait()

        threads = [threading.Thread(target=worker, args=("req-t{}".format(i),))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stamped = sorted(r["request_id"] for r in log.records()
                         if r["kind"] == "query")
        assert stamped == ["req-t0", "req-t1"], \
            "concurrent bindings must never leak across threads"
