"""Tests for text rendering and the latency summaries."""

import pytest

from repro.eval import (
    figure9,
    format_cdf_series,
    format_figure10,
    format_figure11,
    format_figure14,
    format_speed,
    format_table1,
    speed_summary,
    table1,
)
from repro.eval.speed import (
    argument_query_times,
    best_method_query_times,
    method_query_times,
)
from tests.test_figures_tables import make_arg, make_call


class TestReport:
    def test_table1_contains_rows_and_totals(self):
        rows = table1([make_call("Paint.Net", rank=1)])
        text = format_table1(rows)
        assert "Paint.Net" in text
        assert "Totals" in text
        assert "# top 10" in text

    def test_cdf_series_renders_percentages(self):
        series = figure9([make_call(rank=1)], ranks_at=(1, 10))
        text = format_cdf_series("Fig 9", series)
        assert "<= 1" in text and "100.0%" in text
        assert "Instance" in text and "Static" in text

    def test_figure10_format(self):
        from repro.eval import figure10

        text = format_figure10(figure10([make_call(arity=3, rank=1)]))
        assert "arity" in text and "3" in text

    def test_figure11_format(self):
        from repro.eval import figure11

        text = format_figure11(figure11([make_call()]), "Fig 11")
        assert "Fig 11" in text and "we_win" in text

    def test_figure14_format(self):
        from repro.eval import figure14

        text = format_figure14(figure14([make_arg()]))
        assert "local" in text


class TestBarChartAndMetrics:
    def test_bar_chart(self):
        from repro.eval import format_bar_chart

        text = format_bar_chart("kinds", {"local": 0.5, "chain": 0.25},
                                width=8)
        assert "kinds" in text
        assert "####" in text
        assert "50.0%" in text

    def test_bar_chart_clamps(self):
        from repro.eval import format_bar_chart

        text = format_bar_chart("odd", {"x": 1.5, "y": -0.2}, width=4)
        assert "####" in text  # clamped to full bar

    def test_format_metrics(self):
        from repro.eval import format_metrics, summary_metrics

        text = format_metrics("methods", summary_metrics([1, 2, None]))
        assert "MRR=" in text and "top10=" in text

    def test_format_metrics_empty(self):
        from repro.eval import format_metrics, summary_metrics

        assert "no queries" in format_metrics("x", summary_metrics([]))


class TestSpeed:
    def test_summary_math(self):
        summary = speed_summary([0.01] * 9 + [0.9])
        assert summary["count"] == 10
        assert summary["under_100ms"] == 0.9
        assert summary["under_500ms"] == 0.9
        assert summary["p50_ms"] == pytest.approx(10.0)

    def test_empty_summary(self):
        assert speed_summary([]) == {"count": 0.0}

    def test_time_collectors(self):
        calls = [make_call(), make_call()]
        assert len(method_query_times(calls)) == 2
        assert len(best_method_query_times(calls)) == 2
        args = [make_arg(), make_arg(guessable=False)]
        assert len(argument_query_times(args)) == 1

    def test_format_speed(self):
        text = format_speed("methods", speed_summary([0.01, 0.2]))
        assert "methods" in text and "<500ms" in text

    def test_format_speed_empty(self):
        assert "no queries" in format_speed("x", speed_summary([]))
