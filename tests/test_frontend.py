"""Tests for the C#-subset source frontend."""

import pytest

from repro import Context, CompletionEngine, parse, to_source
from repro.corpus.program import (
    AssignStatement,
    ExprStatement,
    IfStatement,
    LocalDecl,
    ReturnStatement,
)
from repro.frontend import SourceError, SourceReader
from repro.lang import well_typed

SAMPLE = """
namespace Geo {
    enum Style { Solid, Dashed }

    interface IShape { }

    class Shape : IShape {
        string Name { get; set; }
        double Weight;
        void Hide() { }
    }

    class Point {
        double X { get; set; }
        double Y { get; set; }
        static Point Origin;
        Point(double x, double y) { }
        double Magnitude() {
            return this.X;
        }
    }

    class Segment : Shape {
        Point Start;
        Point End { get; set; }
        static double Distance(Point a, Point b);

        double Measure(Point other) {
            Point tip = this.End;
            tip = this.Start;
            double best = Geo.Segment.Distance(tip, other);
            if (best >= other.X) {
                this.Weight = other.Y;
            }
            return best;
        }
    }
}
"""


@pytest.fixture(scope="module")
def project():
    return SourceReader.read(SAMPLE, project_name="GeoSrc")


class TestDeclarations:
    def test_types_registered(self, project):
        ts = project.ts
        for name in ("Geo.Style", "Geo.IShape", "Geo.Shape", "Geo.Point",
                     "Geo.Segment"):
            assert ts.try_get(name) is not None

    def test_enum_values(self, project):
        style = project.ts.get("Geo.Style")
        assert [f.name for f in style.fields] == ["Solid", "Dashed"]
        assert style.comparable

    def test_inheritance_and_interfaces(self, project):
        ts = project.ts
        shape = ts.get("Geo.Shape")
        segment = ts.get("Geo.Segment")
        ishape = ts.get("Geo.IShape")
        assert segment.base is shape
        assert ts.implicitly_converts(shape, ishape)
        assert ts.implicitly_converts(segment, ishape)
        assert ts.type_distance(segment, shape) == 1

    def test_fields_and_properties(self, project):
        point = project.ts.get("Geo.Point")
        assert {p.name for p in point.properties} == {"X", "Y"}
        origin = next(f for f in point.fields if f.name == "Origin")
        assert origin.is_static and origin.type is point

    def test_methods(self, project):
        segment = project.ts.get("Geo.Segment")
        distance = segment.declared_methods_named("Distance")[0]
        assert distance.is_static
        assert distance.return_type.name == "double"
        assert [p.name for p in distance.params] == ["a", "b"]

    def test_constructor(self, project):
        point = project.ts.get("Geo.Point")
        ctor = next(m for m in point.methods if m.is_constructor)
        assert ctor.return_type is point
        assert len(ctor.params) == 2

    def test_void_method(self, project):
        shape = project.ts.get("Geo.Shape")
        hide = shape.declared_methods_named("Hide")[0]
        assert hide.return_type is None


class TestBodies:
    @pytest.fixture(scope="class")
    def measure(self, project):
        return next(
            i for i in project.impls if i.method.name == "Measure"
        )

    def test_statement_kinds(self, measure):
        kinds = [type(s).__name__ for s in measure.body]
        assert kinds == [
            "LocalDecl", "AssignStatement", "LocalDecl", "IfStatement",
            "AssignStatement", "ReturnStatement",
        ]

    def test_locals_registered(self, measure):
        scope = measure.all_locals()
        assert scope["tip"].full_name == "Geo.Point"
        assert scope["best"].name == "double"
        assert scope["other"].full_name == "Geo.Point"

    def test_expressions_well_typed(self, project):
        for _impl, _index, expr in project.iter_sites():
            assert well_typed(expr, project.ts)

    def test_magnitude_returns_property(self, project):
        magnitude = next(
            i for i in project.impls if i.method.name == "Magnitude"
        )
        ret = magnitude.body[-1]
        assert isinstance(ret, ReturnStatement)
        assert to_source(ret.expr) == "this.X"

    def test_condition_captured(self, measure):
        condition = next(
            s for s in measure.body if isinstance(s, IfStatement)
        ).condition
        assert to_source(condition) == "best >= other.X"


class TestEndToEnd:
    def test_completion_over_source_project(self, project):
        """Strip the Distance call's name and rediscover it."""
        measure = next(i for i in project.impls if i.method.name == "Measure")
        context = measure.context(project.ts)
        engine = CompletionEngine(project.ts)
        pe = parse("?({tip, other})", context)
        distance = project.ts.get("Geo.Segment").declared_methods_named(
            "Distance")[0]
        rank = engine.method_rank(pe, context, distance, limit=10)
        assert rank == 1

    def test_multiple_sources_one_project(self):
        reader = SourceReader("multi")
        reader.add_source("namespace A { class One { int N; } }")
        reader.add_source(
            "namespace B { class Two { A.One Buddy;"
            " void Go() { this.Buddy.N = 3; } } }"
        )
        project = reader.build()
        assert project.ts.try_get("A.One") is not None
        assert len(project.impls) == 1
        stmt = project.impls[0].body[0]
        assert isinstance(stmt, AssignStatement)


class TestUsingAndVar:
    def test_using_directive_resolves_simple_names(self):
        source = """
        using System.Drawing;
        namespace App {
            class Sprite {
                Point Location;
                void Move(Point target) {
                    this.Location = target;
                }
            }
        }
        """
        project = SourceReader.read(source)
        sprite = project.ts.get("App.Sprite")
        location = next(f for f in sprite.fields if f.name == "Location")
        assert location.type.full_name == "System.Drawing.Point"

    def test_var_infers_from_initializer(self):
        source = """
        namespace App {
            class Maker {
                static string Name();
                void Go() {
                    var label = App.Maker.Name();
                    System.Console.WriteLine(label);
                }
            }
        }
        """
        project = SourceReader.read(source)
        impl = next(i for i in project.impls if i.method.name == "Go")
        decl = impl.body[0]
        assert isinstance(decl, LocalDecl)
        assert decl.name == "label"
        assert decl.type.full_name == "System.String"

    def test_var_without_inferable_type_errors(self):
        source = """
        namespace App {
            class Maker {
                static void Fire();
                void Go() {
                    var x = App.Maker.Fire();
                }
            }
        }
        """
        with pytest.raises(SourceError, match="infer"):
            SourceReader.read(source)


class TestErrors:
    def test_unknown_base_type(self):
        with pytest.raises(SourceError, match="unknown type"):
            SourceReader.read("class A : Mystery { }")

    def test_unterminated_block(self):
        with pytest.raises(SourceError):
            SourceReader.read("class A { void M() { ")

    def test_bad_expression_reports_line(self):
        source = "class A {\n void M() {\n this = 3;\n }\n}"
        with pytest.raises(SourceError):
            SourceReader.read(source)

    def test_unexpected_character(self):
        with pytest.raises(SourceError):
            SourceReader.read("class A { int `x; }")
