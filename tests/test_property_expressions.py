"""Property-based tests over randomly generated well-typed expressions.

A recursive generator builds arbitrary type-correct expressions against the
Paint.NET universe; every generated expression must satisfy the system-wide
invariants: well-typedness, print -> parse stability, serialization
round-trip, and a deterministic non-negative ranking score.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import Context, Ranker, TypeSystem, parse, to_source, well_typed
from repro.corpus.frameworks import build_paintdotnet
from repro.lang import Call, Expr, FieldAccess, Literal, TypeLiteral, Var
from repro.serialize import dump_expr, load_expr

_TS = TypeSystem()
_PAINT = build_paintdotnet(_TS)
_CTX = Context(
    _TS, locals={"img": _PAINT.document, "size": _PAINT.size}
)
_LOCALS = [("img", _PAINT.document), ("size", _PAINT.size)]

# static fields usable as roots
_STATIC_FIELDS = [
    (typedef, member)
    for typedef in _TS.all_types()
    for member in typedef.declared_lookups()
    if member.is_static
]


def _value_of(draw, target, depth):
    """A random expression whose type implicitly converts to ``target``."""
    options = []
    locals_ok = [
        Var(name, typedef)
        for name, typedef in _LOCALS
        if _TS.implicitly_converts(typedef, target)
    ]
    if locals_ok:
        options.append("local")
    statics_ok = [
        (typedef, member)
        for typedef, member in _STATIC_FIELDS
        if _TS.implicitly_converts(member.type, target)
    ]
    if statics_ok:
        options.append("static")
    if target.kind.value == "primitive" and target.name not in ("void",):
        options.append("literal")
    if target is _TS.string_type:
        options.append("literal")
    if depth > 0:
        chains = _chain_candidates(target)
        if chains:
            options.append("chain")
    if not options:
        return None
    choice = draw(st.sampled_from(sorted(set(options))))
    if choice == "local":
        return draw(st.sampled_from(locals_ok))
    if choice == "static":
        typedef, member = draw(st.sampled_from(statics_ok))
        return FieldAccess(TypeLiteral(typedef), member)
    if choice == "literal":
        if target is _TS.string_type:
            return Literal(draw(st.sampled_from(["a", "b", "path"])), target)
        if target.name == "bool":
            return Literal(draw(st.booleans()), target)
        if target.name in ("float", "double"):
            return Literal(float(draw(st.integers(1, 9))), target)
        return Literal(draw(st.integers(1, 99)), target)
    # chain: one lookup off a local
    root, member = draw(st.sampled_from(_chain_candidates(target)))
    return FieldAccess(root, member)


def _chain_candidates(target):
    candidates = []
    for name, typedef in _LOCALS:
        for member in _TS.instance_lookups(typedef):
            if _TS.implicitly_converts(member.type, target):
                candidates.append((Var(name, typedef), member))
    return candidates


_CALLABLE = [
    m
    for m in _TS.all_methods()
    if not m.is_constructor and m.arity <= 4
]


@st.composite
def expressions(draw) -> Expr:
    """A random well-typed expression: a value, lookup chain, or call."""
    kind = draw(st.sampled_from(["value", "chain", "call", "call", "chain"]))
    if kind == "value":
        target = draw(st.sampled_from([_PAINT.document, _PAINT.size,
                                       _TS.string_type, _TS.primitive("int")]))
        expr = _value_of(draw, target, depth=1)
        if expr is None:
            expr = Var("img", _PAINT.document)
        return expr
    if kind == "chain":
        name, typedef = draw(st.sampled_from(_LOCALS))
        expr = Var(name, typedef)
        for _ in range(draw(st.integers(1, 3))):
            base_type = expr.type
            members = list(_TS.instance_lookups(base_type))
            methods = [
                m for m in _TS.zero_arg_instance_methods(base_type)
                if m.return_type is not None
            ]
            steps = [("f", m) for m in members] + [("m", m) for m in methods]
            if not steps:
                break
            step_kind, member = draw(st.sampled_from(steps))
            if step_kind == "f":
                expr = FieldAccess(expr, member)
            else:
                expr = Call(member, (expr,))
        return expr
    # call: pick a method we can fully satisfy
    for _ in range(8):
        method = draw(st.sampled_from(_CALLABLE))
        args = []
        for param in method.all_params():
            value = _value_of(draw, param.type, depth=1)
            if value is None:
                break
            args.append(value)
        else:
            return Call(method, tuple(args))
    return Var("img", _PAINT.document)


@settings(max_examples=150, deadline=None)
@given(expressions())
def test_generated_expressions_are_well_typed(expr):
    assert well_typed(expr, _TS)


@settings(max_examples=150, deadline=None)
@given(expressions())
def test_print_parse_is_stable(expr):
    printed = to_source(expr)
    reparsed = parse(printed, _CTX)
    assert to_source(reparsed) == printed
    assert well_typed(reparsed, _TS)


@settings(max_examples=150, deadline=None)
@given(expressions())
def test_serialize_round_trip(expr):
    data = json.loads(json.dumps(dump_expr(expr)))
    assert load_expr(_TS, data) == expr


@settings(max_examples=150, deadline=None)
@given(expressions())
def test_score_is_deterministic_and_nonnegative(expr):
    ranker = Ranker(_CTX)
    first = ranker.score(expr)
    assert first >= 0
    assert ranker.score(expr) == first
