"""The run-diff engine: phase-level regression attribution.

``diff_runs`` consumes either artifact shape (bench documents, run-log
record lists, or a mix), and ``compare_bench`` — the CI perf gate —
must name the phase with the largest latency delta when a workload
regresses (the ISSUE's acceptance criterion).
"""

import json

import pytest

from repro.eval.bench import compare_bench
from repro.obs import diff_runs, render_markdown
from repro.obs.diff import (
    PhaseDelta,
    load_run_artifact,
    parse_run_artifact,
    render_text,
    top_phase_delta,
)


def bench_doc(label, p95, phases=None):
    workload = {
        "name": "paper/paint", "queries": 5, "repeats": 3,
        "p50_ms": p95 / 2.0, "p95_ms": p95, "steps": 100,
    }
    if phases is not None:
        workload["phases"] = phases
    return {
        "format": "repro-bench", "version": 1, "label": label,
        "quick": True, "workloads": [workload],
    }


def run_log_records(label, spans=None):
    manifest = {
        "kind": "run", "format": "repro-runlog", "version": 1,
        "label": label, "run_id": label + "-1-1", "git_sha": "abc",
        "config_signature": None, "universes": {}, "seed": None,
    }
    query = {
        "kind": "query", "source": "?", "t_ms": 1.0, "status": "ok",
        "elapsed_ms": 5.0, "steps": 10, "cached": False, "completions": 3,
    }
    if spans is not None:
        query["spans"] = spans
    return [manifest, query]


def spans(expand_ms, dedup_ms):
    return [
        {"kind": "span", "span": 1, "parent": None, "name": "query",
         "start_ms": 0.0, "end_ms": expand_ms + dedup_ms,
         "duration_ms": expand_ms + dedup_ms, "counters": {}},
        {"kind": "span", "span": 2, "parent": 1, "name": "expand:hole",
         "start_ms": 0.0, "end_ms": expand_ms, "duration_ms": expand_ms,
         "counters": {}},
        {"kind": "span", "span": 3, "parent": 1, "name": "dedup",
         "start_ms": expand_ms, "end_ms": expand_ms + dedup_ms,
         "duration_ms": dedup_ms, "counters": {}},
    ]


class TestDiffRuns:
    def test_bench_vs_bench_attributes_worst_phase(self):
        old = bench_doc("seed", 4.0, {"expand:hole": 1.0, "dedup": 0.5})
        new = bench_doc("pr", 9.0, {"expand:hole": 3.5, "dedup": 0.6})
        diff = diff_runs(old, new)
        assert diff.old_label == "seed" and diff.new_label == "pr"
        top = diff.top_regression
        assert top is not None
        assert top.name == "expand:hole"
        assert top.delta_ms == pytest.approx(2.5)
        assert "expand:hole" in diff.summary()

    def test_improvement_reports_no_regression(self):
        old = bench_doc("seed", 9.0, {"dedup": 3.0})
        new = bench_doc("pr", 4.0, {"dedup": 1.0})
        diff = diff_runs(old, new)
        assert diff.top_regression is None
        assert diff.summary() == "no phase regressed"

    def test_runlog_vs_runlog_uses_embedded_spans(self):
        old = run_log_records("old", spans(2.0, 1.0))
        new = run_log_records("new", spans(2.0, 4.0))
        diff = diff_runs(old, new)
        assert diff.old_queries == diff.new_queries == 1
        assert diff.top_regression.name == "dedup"
        assert diff.top_regression.delta_ms == pytest.approx(3.0)

    def test_mixed_artifacts_share_the_phase_taxonomy(self):
        old = bench_doc("seed", 4.0, {"dedup": 1.0})
        new = run_log_records("new", spans(0.0, 2.5))
        diff = diff_runs(old, new)
        assert diff.top_regression.name == "dedup"

    def test_untraced_run_log_is_noted(self):
        diff = diff_runs(run_log_records("a"), run_log_records("b"))
        assert diff.phases == []
        assert any("no span trees" in note for note in diff.notes)

    def test_missing_bench_phases_are_noted(self):
        diff = diff_runs(bench_doc("seed", 4.0),
                         bench_doc("pr", 5.0, {"dedup": 1.0}))
        assert any("no phase profile" in note for note in diff.notes)

    def test_one_sided_phases_cannot_attribute(self):
        # one side has a phase profile, the other has none: a delta table
        # would be all zero baselines, attributing the entire total to
        # the largest phase — say "cannot attribute" instead, matching
        # the bench-gate fallback
        diff = diff_runs(bench_doc("seed", 4.0),
                         bench_doc("pr", 5.0, {"dedup": 1.0}))
        assert diff.phases == []
        assert diff.top_regression is None
        assert any("cannot attribute" in note for note in diff.notes)

    def test_one_sided_runlog_cannot_attribute(self):
        # untraced run log vs. phase-profiled bench doc, both directions
        for old, new in (
            (run_log_records("old"), bench_doc("pr", 5.0, {"dedup": 1.0})),
            (bench_doc("seed", 4.0, {"dedup": 1.0}), run_log_records("new")),
        ):
            diff = diff_runs(old, new)
            assert diff.phases == []
            assert any("cannot attribute" in note for note in diff.notes)

    def test_rejects_unknown_artifact(self):
        with pytest.raises(ValueError, match="not a run artifact"):
            diff_runs({"format": "something-else"}, bench_doc("x", 1.0))


class TestTopPhaseDelta:
    def test_none_when_either_side_lacks_phases(self):
        assert top_phase_delta(None, {"dedup": 1.0}) is None
        assert top_phase_delta({"dedup": 1.0}, {}) is None

    def test_none_when_nothing_got_slower(self):
        assert top_phase_delta({"dedup": 2.0}, {"dedup": 1.0}) is None

    def test_picks_largest_positive_delta(self):
        top = top_phase_delta(
            {"dedup": 1.0, "collect": 1.0},
            {"dedup": 1.5, "collect": 4.0},
        )
        assert top.name == "collect"
        assert top.delta_ms == pytest.approx(3.0)

    def test_phase_delta_ratio_handles_zero_baseline(self):
        assert PhaseDelta("x", 0.0, 2.0).ratio == 0.0
        assert PhaseDelta("x", 2.0, 3.0).ratio == pytest.approx(0.5)


class TestCompareBenchAttribution:
    """``repro bench --compare`` failure output names the worst phase."""

    def test_regression_lines_name_the_phase(self):
        old = bench_doc("seed", 2.0, {"expand:hole": 0.5, "dedup": 0.5})
        new = bench_doc("pr", 10.0, {"expand:hole": 6.0, "dedup": 0.6})
        ok, lines = compare_bench(old, new)
        assert not ok
        text = "\n".join(lines)
        assert "REGRESSION" in text
        assert "top regressed phase: expand:hole" in text
        # the final verdict line carries the attribution too
        assert "top regressed phase: expand:hole (+5.50 ms)" in lines[-1]

    def test_attribution_degrades_without_baseline_phases(self):
        # the seed baseline predates phase profiles: the gate still
        # fires, with an explicit cannot-attribute note
        old = bench_doc("seed", 2.0)
        new = bench_doc("pr", 10.0, {"expand:hole": 6.0})
        ok, lines = compare_bench(old, new)
        assert not ok
        assert any("cannot attribute" in line for line in lines)

    def test_no_regression_keeps_verdict_clean(self):
        old = bench_doc("seed", 2.0, {"dedup": 0.5})
        new = bench_doc("pr", 2.1, {"dedup": 0.6})
        ok, lines = compare_bench(old, new)
        assert ok
        assert "top regressed phase" not in "\n".join(lines)


class TestArtifactLoading:
    def test_parse_sniffs_bench_json(self):
        artifact = parse_run_artifact(json.dumps(bench_doc("x", 1.0)))
        assert artifact["format"] == "repro-bench"

    def test_parse_sniffs_runlog_ndjson(self):
        text = "\n".join(
            json.dumps(record) for record in run_log_records("x")) + "\n"
        artifact = parse_run_artifact(text)
        assert artifact[0]["kind"] == "run"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_run_artifact("not json at all")
        with pytest.raises(ValueError):
            parse_run_artifact("")

    def test_load_prefixes_path_on_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="bad.json"):
            load_run_artifact(str(path))


class TestRendering:
    def test_text_and_markdown_agree_on_the_top_phase(self):
        old = bench_doc("seed", 4.0, {"expand:hole": 1.0})
        new = bench_doc("pr", 9.0, {"expand:hole": 3.0})
        diff = diff_runs(old, new)
        text = "\n".join(render_text(diff))
        markdown = render_markdown(diff)
        assert "top regressed phase: expand:hole" in text
        assert "top regressed phase: expand:hole" in markdown
        assert "## Phase deltas (worst first)" in markdown

    def test_markdown_growth_is_na_for_new_phases(self):
        diff = diff_runs(bench_doc("seed", 4.0, {"dedup": 1.0}),
                         bench_doc("pr", 5.0, {"dedup": 1.2, "parse": 0.5}))
        markdown = render_markdown(diff)
        assert "| `parse` | 0.00 | 0.50 | +0.50 | n/a |" in markdown
