"""Round-trip tests for universe/project serialization."""

import json

import pytest

from repro import Context, CompletionEngine, TypeSystem, parse, to_source
from repro.corpus.frameworks import build_paintdotnet
from repro.serialize import (
    dump_expr,
    dump_project,
    dump_type_system,
    load_expr,
    load_project,
    load_type_system,
    open_project,
    save_project,
)


@pytest.fixture(scope="module")
def paint_doc():
    ts = TypeSystem()
    build_paintdotnet(ts)
    return dump_type_system(ts), ts


class TestTypeSystemRoundTrip:
    def test_types_survive(self, paint_doc):
        doc, original = paint_doc
        loaded = load_type_system(doc)
        original_names = {t.full_name for t in original.all_types()}
        loaded_names = {t.full_name for t in loaded.all_types()}
        assert loaded_names == original_names

    def test_members_survive(self, paint_doc):
        doc, original = paint_doc
        loaded = load_type_system(doc)
        for typedef in original.all_types():
            twin = loaded.get(typedef.full_name)
            assert [f.name for f in twin.fields] == [
                f.name for f in typedef.fields
            ]
            assert [m.signature() for m in twin.methods] == [
                m.signature() for m in typedef.methods
            ]

    def test_hierarchy_survives(self, paint_doc):
        doc, original = paint_doc
        loaded = load_type_system(doc)
        bitmap = loaded.get("PaintDotNet.BitmapLayer")
        layer = loaded.get("PaintDotNet.Layer")
        assert loaded.implicitly_converts(bitmap, layer)
        assert loaded.type_distance(bitmap, layer) == 1

    def test_is_json_serialisable(self, paint_doc):
        doc, _ = paint_doc
        assert json.loads(json.dumps(doc)) == doc

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            load_type_system({"format": "something-else"})

    def test_engine_agrees_on_loaded_universe(self, paint_doc):
        """The same query yields the same ranked texts before/after."""
        doc, original = paint_doc
        loaded = load_type_system(doc)

        def top(ts):
            document = ts.get("PaintDotNet.Document")
            size = ts.get("System.Drawing.Size")
            ctx = Context(ts, locals={"img": document, "size": size})
            engine = CompletionEngine(ts)
            pe = parse("?({img, size})", ctx)
            return [
                (c.score, to_source(c.expr))
                for c in engine.complete(pe, ctx, n=15)
            ]

        assert top(original) == top(loaded)


class TestExprRoundTrip:
    def test_expressions(self, paint_doc):
        _doc, ts = paint_doc
        document = ts.get("PaintDotNet.Document")
        size = ts.get("System.Drawing.Size")
        ctx = Context(ts, locals={"img": document, "size": size})
        for source in [
            "img",
            "img.Size",
            "img.Size.Width",
            "img.Flatten()",
            "PaintDotNet.ColorBgra.White",
            "PaintDotNet.Actions.CanvasSizeAction.FlipDocument(img, true)",
            "img.Size.Width >= size.Width",
            "img.Size := size",
            '"hello"',
            "3",
        ]:
            expr = parse(source, ctx)
            data = json.loads(json.dumps(dump_expr(expr)))
            again = load_expr(ts, data)
            assert again == expr, source


class TestConstructorsAndOverrides:
    def test_constructor_round_trip(self):
        from repro.codemodel import LibraryBuilder

        ts = TypeSystem()
        lib = LibraryBuilder(ts)
        point = lib.struct("G.Point")
        lib.ctor(point, params=[("x", ts.primitive("double"))])
        loaded = load_type_system(dump_type_system(ts))
        twin = loaded.get("G.Point")
        ctor = next(m for m in twin.methods if m.is_constructor)
        assert ctor.is_static
        assert ctor.return_type is twin

    def test_overrides_round_trip(self):
        from repro.codemodel import LibraryBuilder

        ts = TypeSystem()
        lib = LibraryBuilder(ts)
        base = lib.cls("G.Base")
        derived = lib.cls("G.Derived", base=base)
        virtual = lib.method(base, "Render", params=[("x", ts.string_type)])
        lib.method(derived, "Render", params=[("x", ts.string_type)],
                   overrides=virtual)
        loaded = load_type_system(dump_type_system(ts))
        twin_override = loaded.get("G.Derived").declared_methods_named(
            "Render")[0]
        assert twin_override.overrides is not None
        assert twin_override.root_declaration().declaring_type.full_name == \
            "G.Base"

    def test_enum_round_trip_preserves_comparability(self):
        from repro.codemodel import LibraryBuilder

        ts = TypeSystem()
        lib = LibraryBuilder(ts)
        lib.enum("G.Mode", values=["On", "Off"])
        loaded = load_type_system(dump_type_system(ts))
        mode = loaded.get("G.Mode")
        assert mode.comparable
        assert [f.name for f in mode.fields] == ["On", "Off"]
        assert loaded.implicitly_converts(mode, loaded.enum_type)


class TestProjectRoundTrip:
    def test_project_round_trip(self, tiny_project):
        doc = json.loads(json.dumps(dump_project(tiny_project)))
        loaded = load_project(doc)
        assert loaded.name == tiny_project.name
        assert len(loaded.impls) == len(tiny_project.impls)
        original_sites = [
            (impl.method.full_name, index, expr.key())
            for impl, index, expr in tiny_project.iter_sites()
        ]
        loaded_sites = [
            (impl.method.full_name, index, expr.key())
            for impl, index, expr in loaded.iter_sites()
        ]
        assert loaded_sites == original_sites

    def test_loaded_project_evaluates_identically(self, tiny_project):
        from repro.eval import EvalConfig, run_method_prediction

        loaded = load_project(dump_project(tiny_project))
        cfg = EvalConfig(
            limit=25, max_calls_per_project=8,
            with_return_type=False, with_intellisense=False,
        )
        original = [
            (r.method_name, r.best_rank)
            for r in run_method_prediction([tiny_project], cfg)
        ]
        again = [
            (r.method_name, r.best_rank)
            for r in run_method_prediction([loaded], cfg)
        ]
        assert original == again

    def test_file_helpers(self, tiny_project, tmp_path):
        path = tmp_path / "tiny.json"
        save_project(tiny_project, str(path))
        loaded = open_project(str(path))
        assert len(loaded.impls) == len(tiny_project.impls)

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            load_project({"format": "nope"})

    def test_frontend_project_round_trip(self):
        """A source-read project (with bodies) survives serialization and
        still answers queries identically."""
        from repro import CompletionEngine, parse, to_source
        from repro.frontend import SourceReader

        source = """
        namespace Mini {
            class Node {
                int Depth;
                Node Next;
                static Node Root;
                Node(int depth) { }
                void Link(Node other) {
                    Node peer = Mini.Node.Root;
                    this.Next = peer;
                    if (peer.Depth >= other.Depth) {
                        this.Depth = other.Depth;
                    }
                }
            }
        }
        """
        original = SourceReader.read(source, project_name="Mini")
        loaded = load_project(dump_project(original))

        def answer(project):
            impl = next(i for i in project.impls if i.method.name == "Link")
            ctx = impl.context(project.ts)
            engine = CompletionEngine(project.ts)
            pe = parse("?({peer, other})", ctx)
            return [
                (c.score, to_source(c.expr))
                for c in engine.complete(pe, ctx, n=8)
            ]

        assert answer(original) == answer(loaded)
