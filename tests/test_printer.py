"""Printer tests, including print -> parse round-trips."""

import pytest

from repro import Context, TypeSystem, parse, to_source
from repro.codemodel import LibraryBuilder
from repro.lang import (
    Call,
    FieldAccess,
    Hole,
    Literal,
    TypeLiteral,
    Unfilled,
    UnknownCall,
    Var,
)


@pytest.fixture
def world():
    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    point = lib.struct("Geo.Point")
    lib.prop(point, "X", ts.primitive("double"))
    lib.field(point, "Origin", point, static=True)
    lib.method(point, "Length", returns=ts.primitive("double"))
    lib.method(point, "OnMoved", params=[("sender", ts.object_type)])
    math = lib.cls("Geo.Math")
    lib.static_method(math, "Distance", returns=ts.primitive("double"),
                      params=[("a", point), ("b", point)])
    context = Context(ts, locals={"p": point, "q": point})
    return ts, context, point


class TestRendering:
    def test_var(self, world):
        _ts, _ctx, point = world
        assert to_source(Var("p", point)) == "p"

    def test_hole_and_ignore(self, world):
        assert to_source(Hole()) == "?"
        assert to_source(Unfilled()) == "0"

    def test_static_field(self, world):
        _ts, ctx, point = world
        expr = parse("Geo.Point.Origin", ctx)
        assert to_source(expr) == "Geo.Point.Origin"

    def test_instance_call_receiver_style(self, world):
        _ts, ctx, _point = world
        expr = parse("p.Length()", ctx)
        assert to_source(expr) == "p.Length()"

    def test_static_call_qualified(self, world):
        _ts, ctx, _point = world
        expr = parse("Geo.Math.Distance(p, q)", ctx)
        assert to_source(expr) == "Geo.Math.Distance(p, q)"

    def test_unfilled_receiver_prints_flat(self, world):
        ts, ctx, point = world
        on_moved = next(m for m in point.methods if m.name == "OnMoved")
        call = Call(on_moved, (Unfilled(), Var("p", point)))
        assert to_source(call) == "Geo.Point.OnMoved(0, p)"

    def test_unknown_call(self, world):
        _ts, ctx, point = world
        expr = UnknownCall((Var("p", point), Hole()))
        assert to_source(expr) == "?({p, ?})"

    def test_string_literal_quoted(self, world):
        ts, *_ = world
        assert to_source(Literal("hi", ts.string_type)) == '"hi"'

    def test_bool_and_null_literals(self, world):
        ts, *_ = world
        assert to_source(Literal(True, ts.primitive("bool"))) == "true"
        assert to_source(Literal(None, ts.object_type)) == "null"

    def test_suffix_holes(self, world):
        _ts, ctx, _point = world
        for text in ["p.?f", "p.?*f", "p.?m", "p.?*m"]:
            assert to_source(parse(text, ctx)) == text


class TestRoundTrips:
    CASES = [
        "p",
        "?",
        "p.X",
        "p.Length()",
        "Geo.Point.Origin",
        "Geo.Point.Origin.X",
        "Geo.Math.Distance(p, q)",
        "Geo.Point.OnMoved(0, p)",
        "?({p, q})",
        "?({p.?*m, 0})",
        "p.?m",
        "p.X >= q.X",
        "p.X := q.X",
        "Distance(p, ?)",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_round_trip(self, world, source):
        _ts, ctx, _point = world
        expr = parse(source, ctx)
        printed = to_source(expr)
        again = parse(printed, ctx)
        assert again == expr
        assert to_source(again) == printed
