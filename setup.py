"""Setup shim for environments without the `wheel` package (offline)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Type-directed completion of partial expressions "
        "(PLDI 2012 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
