"""Quickstart: the paper's three running examples (Sec. 2).

Run:  python examples/quickstart.py

1. Synthesizing method names   — ?({img, size})          (Figure 2)
2. Synthesizing arguments      — Distance(point, ?)      (Figure 3)
3. Synthesizing field lookups  — point.?*m >= this.?*m   (Figure 4)
"""

from repro import Context, CompletionEngine, TypeSystem, parse, to_source
from repro.corpus.frameworks import build_geometry, build_paintdotnet


def show(title, engine, context, query, n=10):
    print("=" * 72)
    print("query: {}".format(query))
    print("-" * 72)
    pe = parse(query, context)
    for rank, completion in enumerate(engine.complete(pe, context, n=n), 1):
        print("{:>3}. (score {:>2})  {}".format(
            rank, completion.score, to_source(completion.expr)))
    print()


def method_name_example():
    """You want img.Shrink(size); the real API is ResizeDocument(...)."""
    ts = TypeSystem()
    paint = build_paintdotnet(ts)
    context = Context(ts, locals={"img": paint.document, "size": paint.size})
    engine = CompletionEngine(ts)
    show("methods", engine, context, "?({img, size})")


def argument_example():
    """You know Distance but not where the other endpoint lives."""
    ts = TypeSystem()
    geo = build_geometry(ts)
    context = Context(
        ts,
        locals={"point": geo.point, "shapeStyle": geo.shape_style},
        this_type=geo.ellipse_arc,
    )
    engine = CompletionEngine(ts)
    show("arguments", engine, context, "Distance(point, ?)")


def field_lookup_example():
    """Compare coordinates without remembering the field names."""
    ts = TypeSystem()
    geo = build_geometry(ts)
    context = Context(
        ts,
        locals={"point": geo.point, "shapeStyle": geo.shape_style},
        this_type=geo.ellipse_arc,
    )
    engine = CompletionEngine(ts)
    show("lookups", engine, context, "point.?*m >= this.?*m")


if __name__ == "__main__":
    method_name_example()
    argument_example()
    field_lookup_example()
