"""Abstract types in action: the paper's Family.Show example (Sec. 4.1).

Run:  python examples/abstract_types_demo.py

The corpus contains the paper's snippet::

    string appLocation = Path.Combine(
        Environment.GetFolderPath(Environment.SpecialFolder.MyDocuments),
        App.ApplicationFolderName);
    if (!Directory.Exists(appLocation)) Directory.CreateDirectory(appLocation);
    return Path.Combine(appLocation, Const.DataFileName);

Lackwit-style inference concludes that ``appLocation`` shares an abstract
type ("path") with ``Directory.Exists``'s parameter and ``Path.Combine``'s
first parameter and return — while ``App.ApplicationFolderName`` and
``Const.DataFileName`` belong to a different abstract type ("file name").
Both are plain strings to the C# type system; only abstract types can rank
``Directory.Exists(appLocation)`` above ``Directory.Exists(DataFileName)``.
"""

from repro import CompletionEngine, EngineConfig, RankingConfig
from repro.analysis import AbstractTypeAnalysis
from repro.corpus import ImplAbstractTypes
from repro.corpus.projects import build_familyshow_project
from repro.lang import Call, Hole, KnownCall, to_source


def main():
    project = build_familyshow_project()
    ts = project.ts
    impl = next(i for i in project.impls if i.method.name == "GetDataFilePath")
    context = impl.context(ts)

    analysis = AbstractTypeAnalysis(project)
    oracle = ImplAbstractTypes(analysis, impl)

    directory = ts.get("System.IO.Directory")
    exists = directory.declared_methods_named("Exists")[0]
    query = KnownCall((exists,), (Hole(),))

    print("query: Directory.Exists(?)   [inside Family.Show's GetDataFilePath]")
    print()
    print("abstract-type groups inferred for the snippet:")
    app_location = context.local_var("appLocation")
    print("  abstype(appLocation)        ==", oracle.of_expr(app_location))
    print("  abstype(Exists's parameter) ==", oracle.of_param(exists, 0, None))
    print()

    with_abs = CompletionEngine(ts)
    without_abs = CompletionEngine(
        ts, EngineConfig(ranking=RankingConfig.without("a"))
    )

    print("--- WITH abstract types " + "-" * 40)
    for rank, c in enumerate(
        with_abs.complete(query, context, n=5, abstypes=oracle), 1
    ):
        print("  {:>2}. (score {:>2}) {}".format(rank, c.score, to_source(c.expr)))

    print("--- WITHOUT abstract types " + "-" * 37)
    for rank, c in enumerate(without_abs.complete(query, context, n=5), 1):
        print("  {:>2}. (score {:>2}) {}".format(rank, c.score, to_source(c.expr)))

    print()
    print("with the oracle, the path-typed appLocation outranks the")
    print("file-name-typed string constants of the same C# type.")


if __name__ == "__main__":
    main()
