"""From source text to completions: the C#-subset frontend.

Run:  python examples/source_project.py

Reads a small C#-like project from an embedded string (the paper had to
decompile binaries; we parse source directly), then runs the whole
pipeline over it: abstract-type inference, and completion queries asked
from inside one of its method bodies.
"""

from repro import CompletionEngine, parse, to_source
from repro.analysis import AbstractTypeAnalysis
from repro.corpus import ImplAbstractTypes
from repro.frontend import SourceReader

SOURCE = """
namespace Mail {
    enum Priority { Low, Normal, High }

    class Address {
        string User;
        string Host;
        string Display() { return this.User; }
    }

    class Message {
        Address From;
        Address To { get; set; }
        string Subject;
        Priority Priority { get; set; }
        int SizeBytes;
    }

    class Mailbox {
        string Owner;
        int UnreadCount;
        static Mailbox Open(string path);
        void Deliver(Message message) {
            this.UnreadCount = this.UnreadCount;
        }
    }

    class Smtp {
        static void Send(Message message, Address via);
        static Message Compose(Address from, Address to, string subject);
    }

    class Client {
        Mailbox Inbox;
        void Forward(Message original, Address target) {
            Message copy = Mail.Smtp.Compose(original.From, target, original.Subject);
            Mail.Smtp.Send(copy, target);
            this.Inbox.Deliver(copy);
            if (copy.SizeBytes >= original.SizeBytes) {
                this.Inbox.UnreadCount = 0;
            }
        }
    }
}
"""


def main():
    project = SourceReader.read(SOURCE, project_name="Mail")
    print("parsed {} types, {} method bodies".format(
        len(project.ts.all_types()), len(project.impls)))

    forward = next(i for i in project.impls if i.method.name == "Forward")
    context = forward.context(project.ts)
    engine = CompletionEngine(project.ts)
    analysis = AbstractTypeAnalysis(project)
    oracle = ImplAbstractTypes(analysis, forward)

    for query in [
        "?({original, target})",        # which method takes both?
        "Send(copy, ?)",                # fill in the missing argument
        "copy.?*m >= original.?*m",     # comparable fields of the two
    ]:
        print()
        print("query:", query)
        pe = parse(query, context)
        for rank, c in enumerate(
            engine.complete(pe, context, n=5, abstypes=oracle), 1
        ):
            print("  {:>2}. (score {:>2}) {}".format(
                rank, c.score, to_source(c.expr)))


if __name__ == "__main__":
    main()
