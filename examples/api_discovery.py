"""API discovery shoot-out: partial expressions vs. Intellisense vs.
Prospector (the Sec. 2 comparison, on the "shrink an image" story).

Run:  python examples/api_discovery.py

The user wants ``img.Shrink(size)``.  That method does not exist; the real
API is ``PaintDotNet.Actions.CanvasSizeAction.ResizeDocument(Document,
Size, AnchorEdge, ColorBgra)``.  Three tools attack the problem:

* partial expressions: the query ``?({img, size})``;
* our model of Intellisense: alphabetised member lists of each receiver the
  user might try;
* a Prospector-style jungloid search: "convert Document to Document" (its
  closest encoding of resizing, as the paper notes).
"""

from repro import Context, CompletionEngine, TypeSystem, parse, to_source
from repro.baselines import ProspectorSearch, member_names
from repro.corpus.frameworks import build_paintdotnet


def partial_expressions(paint, context, engine):
    print("--- partial expressions: ?({img, size}) " + "-" * 30)
    pe = parse("?({img, size})", context)
    for rank, completion in enumerate(engine.complete(pe, context, n=5), 1):
        print("  {:>2}. {}".format(rank, to_source(completion.expr)))
    rank = engine.method_rank(pe, context, paint.resize_document, limit=50)
    print("  -> ResizeDocument found at rank {}".format(rank))


def intellisense(paint):
    print("--- Intellisense on the receiver the user would try " + "-" * 17)
    doc_members = sorted(
        {m.name for m in paint.ts.instance_methods(paint.document)}
        | {f.name for f in paint.ts.instance_lookups(paint.document)}
    )
    print("  img. lists {} members: {} ...".format(
        len(doc_members), ", ".join(doc_members[:8])))
    print("  -> no Shrink, no Resize: the user must browse namespaces")
    action_type = paint.ts.get("PaintDotNet.Actions.CanvasSizeAction")
    statics = sorted(m.name for m in action_type.methods if m.is_static)
    print("  CanvasSizeAction. (once found) lists: {}".format(
        ", ".join(statics)))


def prospector(paint):
    print("--- Prospector: convert Document -> Document " + "-" * 26)
    search = ProspectorSearch(paint.ts)
    results = search.query("img", paint.document, paint.document, n=6)
    for rank, expr in enumerate(results, 1):
        print("  {:>2}. {}".format(rank, to_source(expr)))
    print("  -> the jungloid view cannot say 'use size too'; ResizeDocument")
    print("     competes with every Document-to-Document chain")


def main():
    ts = TypeSystem()
    paint = build_paintdotnet(ts)
    context = Context(ts, locals={"img": paint.document, "size": paint.size})
    engine = CompletionEngine(ts)
    partial_expressions(paint, context, engine)
    print()
    intellisense(paint)
    print()
    prospector(paint)


if __name__ == "__main__":
    main()
