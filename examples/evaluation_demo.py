"""A miniature run of the paper's whole evaluation (Sec. 5).

Run:  python examples/evaluation_demo.py          (about a minute)
      python examples/evaluation_demo.py --full   (everything; several min)

Replays queries over the seven corpus projects and prints Table 1 and
Figures 9-16 in the paper's shapes, plus the speed summaries.
"""

import sys

from repro.corpus import build_all_projects
from repro.eval import (
    EvalConfig,
    corpus_census,
    format_census,
    argument_query_times,
    best_method_query_times,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    format_cdf_series,
    format_figure10,
    format_figure11,
    format_figure14,
    format_speed,
    format_table1,
    lookup_query_times,
    run_argument_prediction,
    run_assignment_prediction,
    run_comparison_prediction,
    run_method_prediction,
    speed_summary,
    table1,
)


def main(full: bool = False) -> None:
    projects = build_all_projects()
    if full:
        cfg = EvalConfig(limit=100)
    else:
        cfg = EvalConfig(
            limit=60,
            max_calls_per_project=60,
            max_arguments_per_project=80,
            max_assignments_per_project=40,
            max_comparisons_per_project=25,
        )

    print("## Corpus census")
    print(format_census(corpus_census(projects)))
    print()

    print("## Sec 5.1 — predicting method names")
    methods = run_method_prediction(projects, cfg)
    print(format_table1(table1(methods)))
    print()
    print(format_cdf_series("Figure 9", figure9(methods)))
    print()
    if full:
        from repro.eval import figure9_by_project

        print(format_cdf_series("Fig 9 (by project)",
                                figure9_by_project(methods)))
        print()
    print(format_figure10(figure10(methods)))
    print()
    print(format_figure11(figure11(methods), "Figure 11 (vs Intellisense)"))
    print(format_figure11(figure12(methods), "Figure 12 (known return type)"))
    print(format_speed("method queries",
                       speed_summary(best_method_query_times(methods))))
    print()

    print("## Sec 5.2 — predicting method arguments")
    arguments = run_argument_prediction(projects, cfg)
    print(format_cdf_series("Figure 13", figure13(arguments)))
    print()
    print(format_figure14(figure14(arguments)))
    print(format_speed("argument queries",
                       speed_summary(argument_query_times(arguments))))
    print()

    print("## Sec 5.3 — predicting field lookups")
    assignments = run_assignment_prediction(projects, cfg)
    print(format_cdf_series("Figure 15", figure15(assignments)))
    print()
    comparisons = run_comparison_prediction(projects, cfg)
    print(format_cdf_series("Figure 16", figure16(comparisons)))
    print(format_speed(
        "lookup queries",
        speed_summary(lookup_query_times(assignments + comparisons)),
    ))


if __name__ == "__main__":
    main(full="--full" in sys.argv)
