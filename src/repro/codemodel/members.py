"""Members of types: fields, properties, methods and parameters.

The paper treats the receiver of an instance method as its first argument
("the receiver of a method call is considered to be its first argument"), so
:meth:`Method.all_params` exposes a uniform parameter list with the receiver
prepended for instance methods.  Properties are modelled like fields (the
paper: "Properties are syntactic sugar for writing getters and setters like
fields").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .types import TypeDef


class Parameter:
    """A formal parameter: a name and a declared type."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: "TypeDef") -> None:
        self.name = name
        self.type = type

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Parameter {}: {}>".format(self.name, self.type.full_name)


class Member:
    """Common base for fields, properties and methods."""

    __slots__ = ("name", "declaring_type", "is_static")

    def __init__(self, name: str, is_static: bool = False) -> None:
        self.name = name
        self.declaring_type: Optional["TypeDef"] = None
        self.is_static = is_static

    @property
    def full_name(self) -> str:
        if self.declaring_type is None:
            return self.name
        return "{}.{}".format(self.declaring_type.full_name, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<{} {}>".format(type(self).__name__, self.full_name)


class Field(Member):
    """A field: a named, typed slot on a type."""

    __slots__ = ("type",)

    def __init__(self, name: str, type: "TypeDef", is_static: bool = False) -> None:
        super().__init__(name, is_static=is_static)
        self.type = type

    @property
    def is_property(self) -> bool:
        return False


class Property(Field):
    """A property; behaves exactly like a field for completion purposes."""

    __slots__ = ()

    @property
    def is_property(self) -> bool:
        return True


class Method(Member):
    """A method.

    ``return_type`` is ``None`` for ``void``.  ``params`` holds the declared
    parameters only; :meth:`all_params` prepends a synthetic ``this``
    parameter for instance methods so that completion and ranking can treat
    every call uniformly as ``m(e1, ..., en)``.
    """

    __slots__ = ("return_type", "params", "overrides", "is_constructor")

    def __init__(
        self,
        name: str,
        return_type: Optional["TypeDef"],
        params: Tuple[Parameter, ...] = (),
        is_static: bool = False,
        overrides: Optional["Method"] = None,
        is_constructor: bool = False,
    ) -> None:
        super().__init__(name, is_static=is_static)
        self.return_type = return_type
        self.params: Tuple[Parameter, ...] = tuple(params)
        #: the method this one overrides, if any (used to share abstract-type
        #: slots between a virtual method and its overrides)
        self.overrides: Optional[Method] = overrides
        #: constructors are modelled as static factory methods returning the
        #: declaring type, printed/parsed as ``new T(...)``; the engine only
        #: synthesises them when ``EngineConfig.generate_constructors`` is on
        self.is_constructor = is_constructor
        if is_constructor:
            assert is_static and return_type is not None

    @property
    def arity(self) -> int:
        """Number of arguments including the receiver for instance methods."""
        return len(self.params) + (0 if self.is_static else 1)

    def all_params(self) -> List[Parameter]:
        """Declared parameters, with the receiver prepended when instance."""
        if self.is_static:
            return list(self.params)
        assert self.declaring_type is not None, "method not attached to a type"
        return [Parameter("this", self.declaring_type)] + list(self.params)

    def root_declaration(self) -> "Method":
        """Walk the ``overrides`` chain to the original virtual declaration.

        Abstract-type inference keys formal-parameter and return terms on
        this root so that overriding methods share terms with the methods
        they override (Sec. 4.1 of the paper).
        """
        method: Method = self
        while method.overrides is not None:
            method = method.overrides
        return method

    @property
    def is_zero_arg_instance(self) -> bool:
        """True if callable as ``e.M()`` with no further arguments."""
        return not self.is_static and not self.params

    def signature(self) -> str:
        """A human-readable signature, for reports and debugging."""
        params = ", ".join(
            "{} {}".format(p.type.full_name, p.name) for p in self.params
        )
        ret = self.return_type.full_name if self.return_type else "void"
        prefix = "static " if self.is_static else ""
        return "{}{} {}({})".format(prefix, ret, self.full_name, params)
