"""C#-like code model: types, members, type system and a builder DSL.

This subpackage is the metadata substrate the completion engine searches
over.  It stands in for the .NET binaries + CCI stack the paper used.
"""

from .builder import LibraryBuilder
from .members import Field, Member, Method, Parameter, Property
from .types import TypeDef, TypeKind
from .typesystem import TypeSystem

__all__ = [
    "Field",
    "LibraryBuilder",
    "Member",
    "Method",
    "Parameter",
    "Property",
    "TypeDef",
    "TypeKind",
    "TypeSystem",
]
