"""The type system: registry, subtyping, implicit conversion, type distance.

``type_distance`` implements the paper's ``td(alpha, beta)``:

    td(a, b) = undefined   if there is no implicit conversion from a to b
             = 0           if a == b
             = 1 + td(s(a), b)   otherwise

where ``s(a)`` is the *declared immediate supertype* of ``a`` that minimises
``td(s(a), b)``; for primitive types the immediate supertypes are the
single-step implicit widening conversions (``int -> long``, ``float ->
double``, ...).  This makes ``td`` the shortest-path length from ``a`` to
``b`` in the declared-supertype graph, which is how we compute it (BFS,
memoised).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .members import Field, Method
from .types import TypeDef, TypeKind

#: Single-step implicit numeric widening conversions, C#-style.
_PRIMITIVE_WIDENINGS: Dict[str, Tuple[str, ...]] = {
    "byte": ("short",),
    "char": ("int",),
    "short": ("int",),
    "int": ("long", "float"),
    "long": ("float", "decimal"),
    "float": ("double",),
    "double": (),
    "decimal": (),
    "bool": (),
}

#: Numeric primitives, used for comparability checks.
_NUMERIC_PRIMITIVES = frozenset(
    ["byte", "char", "short", "int", "long", "float", "double", "decimal"]
)


class TypeSystem:
    """A registry of :class:`TypeDef` plus subtyping and distance queries.

    A fresh type system is seeded with the standard primitive types and the
    roots ``System.Object``, ``System.ValueType`` and ``System.Enum``, which
    every registered type ultimately derives from.
    """

    #: how many mutation-log entries are kept; ``mutations_since`` answers
    #: ``None`` (forcing coarse invalidation) once a window is truncated
    MUTATION_LOG_LIMIT = 256

    def __init__(self) -> None:
        self._types: Dict[str, TypeDef] = {}
        self._version = 0
        self._td_cache: Dict[Tuple[str, str], Optional[int]] = {}
        self._supertype_cache: Dict[str, Tuple[TypeDef, ...]] = {}
        self._lookup_cache: Dict[str, Tuple[Field, ...]] = {}
        self._method_cache: Dict[str, Tuple[Method, ...]] = {}
        #: (version, origin full name or None for structural,
        #: methods_changed) per mutation
        self._mutation_log: "deque[Tuple[int, Optional[str], bool]]" = deque(
            maxlen=self.MUTATION_LOG_LIMIT)
        self._fingerprint_memo: Optional[Tuple[int, str]] = None
        self._install_core()

    # ------------------------------------------------------------------
    # core types
    # ------------------------------------------------------------------
    def _install_core(self) -> None:
        self.object_type = self.register(TypeDef("Object", "System"))
        self.value_type = self.register(
            TypeDef("ValueType", "System", base=self.object_type)
        )
        self.enum_type = self.register(
            TypeDef("Enum", "System", base=self.value_type)
        )
        self.void_type = self.register(
            TypeDef("void", "", kind=TypeKind.PRIMITIVE)
        )
        self._primitives: Dict[str, TypeDef] = {}
        for name in _PRIMITIVE_WIDENINGS:
            comparable = name in _NUMERIC_PRIMITIVES
            self._primitives[name] = self.register(
                TypeDef(name, "", kind=TypeKind.PRIMITIVE, comparable=comparable)
            )
        self.string_type = self.register(
            TypeDef(
                "String",
                "System",
                base=self.object_type,
                treat_as_primitive=True,
            )
        )

    def primitive(self, name: str) -> TypeDef:
        """Fetch a primitive by its C# keyword name (``"int"``, ...)."""
        return self._primitives[name]

    @property
    def primitives(self) -> Tuple[TypeDef, ...]:
        return tuple(self._primitives.values())

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def register(self, typedef: TypeDef) -> TypeDef:
        """Register a type; full names must be unique.

        Registration wires the type back to this registry, so *later*
        mutations of the type (adding members, re-pointing ``base`` or
        ``interfaces``) also invalidate the memoised distance/lookup
        queries — a type system never serves stale answers.
        """
        key = typedef.full_name
        if key in self._types:
            raise ValueError("duplicate type registration: {}".format(key))
        self._types[key] = typedef
        typedef._registry = self
        self._invalidate_caches()
        return typedef

    def get(self, full_name: str) -> TypeDef:
        return self._types[full_name]

    def try_get(self, full_name: str) -> Optional[TypeDef]:
        return self._types.get(full_name)

    def all_types(self) -> List[TypeDef]:
        return list(self._types.values())

    def all_methods(self) -> Iterator[Method]:
        for typedef in self._types.values():
            yield from typedef.methods

    def _invalidate_caches(
        self,
        origin: Optional[TypeDef] = None,
        methods_changed: bool = True,
    ) -> None:
        """Bump the version and drop memoised queries.

        ``origin`` names the single mutated type for *member-level* edits
        (adding a field/property/method, reordering members); ``None``
        records a *structural* edit (registration, re-pointed ``base`` or
        ``interfaces``) for which consumers must fall back to coarse
        invalidation — structural edits move type distances globally.
        ``methods_changed`` records whether the edit may have changed the
        origin's *method list* (additions or reorders): only such edits
        can mint or re-rank unknown-call candidates, so consumers that
        track candidate sensitivity separately (the completion cache's
        *accepting* footprints, the method index) can skip field- and
        property-only edits.  ``True`` is the conservative default.
        """
        self._version += 1
        self._td_cache.clear()
        self._supertype_cache.clear()
        self._lookup_cache.clear()
        self._method_cache.clear()
        self._mutation_log.append(
            (self._version,
             origin.full_name if origin is not None else None,
             methods_changed)
        )

    def _mutation_window(
        self, version: int
    ) -> Optional[List[Tuple[int, Optional[str], bool]]]:
        """The log entries after ``version``, or ``None`` when the window
        cannot be answered precisely (future version, truncated log, or a
        structural edit inside the window)."""
        if version > self._version:
            return None
        entries = [entry for entry in self._mutation_log if entry[0] > version]
        if len(entries) != self._version - version:
            return None  # log truncated: some mutations are unaccounted for
        if any(name is None for _, name, _ in entries):
            return None  # structural edit in the window
        return entries

    def mutations_since(self, version: int) -> Optional[FrozenSet[str]]:
        """Full names of the types mutated after ``version``, or ``None``
        when the window cannot be answered precisely.

        ``None`` means a consumer holding state stamped at ``version`` must
        invalidate coarsely: the log was truncated past the window, or some
        edit in the window was structural (no single origin type).  An
        empty frozenset means nothing changed (``version`` is current).
        """
        if version == self._version:
            return frozenset()
        entries = self._mutation_window(version)
        if entries is None:
            return None
        return frozenset(name for _, name, _ in entries)

    def method_mutations_since(self, version: int) -> Optional[FrozenSet[str]]:
        """The subset of :meth:`mutations_since` whose edits may have
        changed a *method list* (method additions, member reorders) — the
        only member-level edits that can mint or re-rank unknown-call
        candidates.  ``None`` exactly when :meth:`mutations_since` is
        ``None``; an empty frozenset means every edit in the window was
        field- or property-only."""
        if version == self._version:
            return frozenset()
        entries = self._mutation_window(version)
        if entries is None:
            return None
        return frozenset(
            name for _, name, methods_changed in entries if methods_changed
        )

    @property
    def version(self) -> int:
        """Monotone mutation counter.

        Bumped on every registration *and* on every mutation of a
        registered type.  Derived structures (the method and reachability
        indexes) stamp the version they were built from and refresh when
        it moves, so they also never serve stale answers.
        """
        return self._version

    def fingerprint(self, fresh: bool = False) -> str:
        """Deterministic structural digest of the registered universe.

        Hashes the sorted type list with each type's kind, supertype
        edges and member signatures — but *not* registration order or
        per-type member order, which are incidental encoding choices.
        Two type systems with the same structure (however built or
        mutated into shape) share a fingerprint; fuzz repro files record
        it so a replay against a drifted universe says so explicitly.

        The digest is memoised against the version counter; pass
        ``fresh=True`` to force recomputation (how the RA104 drift check
        catches member-list mutations that bypassed ``_invalidate()`` and
        therefore did not move the version).
        """
        if not fresh:
            memo = self._fingerprint_memo
            if memo is not None and memo[0] == self._version:
                return memo[1]
        digest_hex = self._compute_fingerprint()
        self._fingerprint_memo = (self._version, digest_hex)
        return digest_hex

    def check_fingerprint_drift(self) -> Optional[Tuple[str, str]]:
        """Detect silent structural drift: mutations that bypassed the
        invalidation hooks (e.g. appending to ``TypeDef.fields`` directly).

        Compares a fresh digest against the digest memoised at the same
        version.  Returns ``(stamped, current)`` on drift — reported once;
        the memo is re-stamped so repeated checks do not re-report — or
        ``None`` when the universe is clean or no stamp exists yet.
        """
        memo = self._fingerprint_memo
        if memo is None or memo[0] != self._version:
            self.fingerprint()  # stamp the current state for later checks
            return None
        current = self._compute_fingerprint()
        if current == memo[1]:
            return None
        self._fingerprint_memo = (self._version, current)
        return memo[1], current

    def _compute_fingerprint(self) -> str:
        import hashlib

        digest = hashlib.sha256()
        for typedef in sorted(self._types.values(),
                              key=lambda t: t.full_name):
            lines = [
                "type {} kind={} base={} interfaces={} comparable={} "
                "primitive={}".format(
                    typedef.full_name,
                    typedef.kind.value,
                    typedef.base.full_name if typedef.base else "-",
                    ",".join(sorted(
                        i.full_name for i in typedef.interfaces)),
                    typedef.comparable,
                    typedef.treat_as_primitive,
                )
            ]
            for member in sorted(
                    list(typedef.fields) + list(typedef.properties),
                    key=lambda f: (f.name, f.type.full_name)):
                lines.append("lookup {}:{} static={} property={}".format(
                    member.name, member.type.full_name, member.is_static,
                    member.is_property))
            for method in sorted(
                    typedef.methods,
                    key=lambda m: (m.name,
                                   [p.type.full_name for p in m.params])):
                lines.append("method {}({}) -> {} static={} ctor={}".format(
                    method.name,
                    ",".join(p.type.full_name for p in method.params),
                    method.return_type.full_name
                    if method.return_type else "void",
                    method.is_static,
                    method.is_constructor,
                ))
            for line in lines:
                digest.update(line.encode("utf-8"))
                digest.update(b"\n")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # supertype structure
    # ------------------------------------------------------------------
    def immediate_supertypes(self, typedef: TypeDef) -> Tuple[TypeDef, ...]:
        """Declared one-step supertypes of ``typedef``.

        Classes/structs/enums: the base class (``Object`` implicitly when no
        base is declared) plus declared interfaces.  Interfaces: extended
        interfaces, or ``Object`` when they extend nothing (so that every
        type reaches ``Object``).  Primitives: the one-step widenings.
        """
        key = typedef.full_name
        cached = self._supertype_cache.get(key)
        if cached is not None:
            return cached

        supers: List[TypeDef] = []
        if typedef.kind is TypeKind.PRIMITIVE:
            for target in _PRIMITIVE_WIDENINGS.get(typedef.name, ()):
                supers.append(self._primitives[target])
        else:
            if typedef.base is not None:
                supers.append(typedef.base)
            elif typedef is not self.object_type:
                # a class/struct/enum without a declared base derives
                # Object; interfaces are convertible to Object too
                supers.append(self.object_type)
            supers.extend(
                i for i in typedef.interfaces if i not in supers
            )
        result = tuple(supers)
        self._supertype_cache[key] = result
        return result

    def supertype_closure(self, typedef: TypeDef) -> Set[TypeDef]:
        """``typedef`` plus everything it implicitly converts to."""
        seen: Set[TypeDef] = set()
        queue = deque([typedef])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.immediate_supertypes(current))
        return seen

    def implicitly_converts(self, source: TypeDef, target: TypeDef) -> bool:
        """True iff a value of ``source`` is usable where ``target`` is
        expected (identity, widening, subclassing, interface implementation).
        """
        return self.type_distance(source, target) is not None

    def is_subtype(self, source: TypeDef, target: TypeDef) -> bool:
        """Alias of :meth:`implicitly_converts` for non-primitive intuition."""
        return self.implicitly_converts(source, target)

    # ------------------------------------------------------------------
    # type distance (the paper's td)
    # ------------------------------------------------------------------
    def type_distance(self, source: TypeDef, target: TypeDef) -> Optional[int]:
        """``td(source, target)``: BFS depth in the supertype graph.

        Returns ``None`` when undefined (no implicit conversion).
        """
        key = (source.full_name, target.full_name)
        if key in self._td_cache:
            return self._td_cache[key]

        distance: Optional[int] = None
        if source is target:
            distance = 0
        else:
            seen: Set[TypeDef] = {source}
            frontier = [source]
            depth = 0
            while frontier and distance is None:
                depth += 1
                next_frontier: List[TypeDef] = []
                for node in frontier:
                    for parent in self.immediate_supertypes(node):
                        if parent is target:
                            distance = depth
                            break
                        if parent not in seen:
                            seen.add(parent)
                            next_frontier.append(parent)
                    if distance is not None:
                        break
                frontier = next_frontier
        self._td_cache[key] = distance
        return distance

    # ------------------------------------------------------------------
    # comparability (for the `<` / `>=` operator)
    # ------------------------------------------------------------------
    def join(self, left: TypeDef, right: TypeDef) -> Optional[TypeDef]:
        """The "more general type" of the two, per the paper's operator rule.

        Returns the nearest common supertype reachable from both sides, or
        ``None`` when the only common supertype is ``Object`` for reference
        types (handled by callers deciding comparability).
        """
        if left is right:
            return left
        left_closure = self.supertype_closure(left)
        if right in left_closure:
            return right
        if left in self.supertype_closure(right):
            return left
        # BFS from both; nearest common node by combined distance
        common = left_closure & self.supertype_closure(right)
        if not common:
            return None
        best: Optional[TypeDef] = None
        best_cost = None
        for candidate in common:
            left_d = self.type_distance(left, candidate)
            right_d = self.type_distance(right, candidate)
            if left_d is None or right_d is None:
                continue
            cost = left_d + right_d
            if best_cost is None or cost < best_cost or (
                cost == best_cost and candidate.full_name < best.full_name
            ):
                best = candidate
                best_cost = cost
        return best

    def comparable(self, left: TypeDef, right: TypeDef) -> bool:
        """Can ``left < right`` type-check?

        Numeric primitives compare with one another; other types compare
        only when both sides are flagged ``comparable`` and one side
        converts to the other (e.g. ``DateTime >= DateTime``, same enum).
        """
        if left.name in _NUMERIC_PRIMITIVES and right.name in _NUMERIC_PRIMITIVES:
            if left.kind is TypeKind.PRIMITIVE and right.kind is TypeKind.PRIMITIVE:
                return True
        if not (left.comparable and right.comparable):
            return False
        return self.implicitly_converts(left, right) or self.implicitly_converts(
            right, left
        )

    def comparison_distance(self, left: TypeDef, right: TypeDef) -> Optional[int]:
        """Type distance between the two operands of a comparison.

        The paper scores binary operators as methods with two parameters of
        "the more general type, so the type distance between the two
        arguments to the operator is used".
        """
        if not self.comparable(left, right):
            return None
        direct = self.type_distance(left, right)
        if direct is None:
            direct = self.type_distance(right, left)
        if direct is not None:
            return direct
        general = self.join(left, right)
        if general is None:
            return None
        left_d = self.type_distance(left, general)
        right_d = self.type_distance(right, general)
        if left_d is None or right_d is None:
            return None
        return left_d + right_d

    # ------------------------------------------------------------------
    # member lookup through the hierarchy
    # ------------------------------------------------------------------
    def instance_lookups(self, typedef: TypeDef) -> Tuple[Field, ...]:
        """All instance fields/properties visible on ``typedef`` (declared
        plus inherited through base classes and interfaces)."""
        key = typedef.full_name
        cached = self._lookup_cache.get(key)
        if cached is not None:
            return cached
        seen_names: Set[str] = set()
        result: List[Field] = []
        for holder in self._mro(typedef):
            for member in holder.declared_lookups():
                assert isinstance(member, Field)
                if member.is_static or member.name in seen_names:
                    continue
                seen_names.add(member.name)
                result.append(member)
        final = tuple(result)
        self._lookup_cache[key] = final
        return final

    def instance_methods(self, typedef: TypeDef) -> Tuple[Method, ...]:
        """All instance methods visible on ``typedef`` (incl. inherited)."""
        key = typedef.full_name
        cached = self._method_cache.get(key)
        if cached is not None:
            return cached
        seen: Set[Tuple[str, int]] = set()
        result: List[Method] = []
        for holder in self._mro(typedef):
            for method in holder.methods:
                if method.is_static:
                    continue
                sig = (method.name, len(method.params))
                if sig in seen:
                    continue
                seen.add(sig)
                result.append(method)
        final = tuple(result)
        self._method_cache[key] = final
        return final

    def zero_arg_instance_methods(self, typedef: TypeDef) -> List[Method]:
        return [m for m in self.instance_methods(typedef) if not m.params]

    def static_members(self, typedef: TypeDef) -> Tuple[List[Field], List[Method]]:
        """Static fields/properties and static methods declared on a type."""
        fields = [f for f in typedef.fields if f.is_static]
        fields += [p for p in typedef.properties if p.is_static]
        methods = [m for m in typedef.methods if m.is_static]
        return fields, methods

    def _mro(self, typedef: TypeDef) -> List[TypeDef]:
        """Deterministic linearisation: the type, base chain, then
        interfaces breadth-first."""
        order: List[TypeDef] = []
        seen: Set[TypeDef] = set()
        queue = deque([typedef])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            if current.kind is not TypeKind.PRIMITIVE:
                if current.base is not None:
                    queue.append(current.base)
                queue.extend(current.interfaces)
                if current.base is None and current is not self.object_type:
                    queue.append(self.object_type)
        return order
