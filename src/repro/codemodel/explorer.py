"""Universe exploration: render namespace trees and type hierarchies.

The paper's motivation is that frameworks are too big to browse ("searching
for a needle in a haystack"); these renderers are the browsing complement —
the REPL's ``:types`` / ``:tree`` commands and the CLI census use them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .types import TypeDef
from .typesystem import TypeSystem


def namespace_tree(ts: TypeSystem, root: Optional[str] = None) -> str:
    """An indented namespace → type listing.

    ``root`` filters to namespaces under the given prefix.
    """
    by_namespace: Dict[str, List[TypeDef]] = {}
    for typedef in ts.all_types():
        namespace = typedef.namespace or "(global)"
        if root is not None:
            if not (namespace == root or namespace.startswith(root + ".")):
                continue
        by_namespace.setdefault(namespace, []).append(typedef)

    lines: List[str] = []
    for namespace in sorted(by_namespace):
        lines.append(namespace)
        for typedef in sorted(by_namespace[namespace], key=lambda t: t.name):
            members = len(typedef.fields) + len(typedef.properties)
            methods = len(typedef.methods)
            lines.append(
                "  {} {}  ({} lookups, {} methods)".format(
                    typedef.kind.value, typedef.name, members, methods
                )
            )
    return "\n".join(lines)


def type_tree(ts: TypeSystem, typedef: TypeDef) -> str:
    """One type's hierarchy and member listing::

        class PaintDotNet.BitmapLayer : PaintDotNet.Layer
          Surface : PaintDotNet.Surface
          Name : System.String            (inherited from PaintDotNet.Layer)
          ...
    """
    lines = ["{} {}".format(typedef.kind.value, typedef.full_name)]
    parents = []
    if typedef.base is not None:
        parents.append(typedef.base.full_name)
    parents.extend(i.full_name for i in typedef.interfaces)
    if parents:
        lines[0] += " : " + ", ".join(parents)

    for member in ts.instance_lookups(typedef):
        suffix = ""
        if member.declaring_type is not typedef:
            suffix = "    (from {})".format(member.declaring_type.full_name)
        lines.append("  {} : {}{}".format(
            member.name, member.type.full_name, suffix))
    for method in ts.instance_methods(typedef):
        suffix = ""
        if method.declaring_type is not typedef:
            suffix = "    (from {})".format(method.declaring_type.full_name)
        lines.append("  {}{}".format(_short_signature(method), suffix))
    static_fields, static_methods = ts.static_members(typedef)
    for field in static_fields:
        lines.append("  static {} : {}".format(field.name,
                                               field.type.full_name))
    for method in static_methods:
        lines.append("  static {}".format(_short_signature(method)))
    return "\n".join(lines)


def _short_signature(method) -> str:
    params = ", ".join(p.type.name for p in method.params)
    returns = method.return_type.name if method.return_type else "void"
    return "{}({}) : {}".format(method.name, params, returns)


def subtype_tree(ts: TypeSystem, root: TypeDef, indent: str = "") -> str:
    """The inheritance tree rooted at a type (direct subtypes, recursively)."""
    lines = [indent + root.full_name]
    children = sorted(
        (
            t
            for t in ts.all_types()
            if t.base is root or root in t.interfaces
        ),
        key=lambda t: t.full_name,
    )
    for child in children:
        lines.append(subtype_tree(ts, child, indent + "  "))
    return "\n".join(lines)
