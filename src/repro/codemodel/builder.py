"""A fluent DSL for declaring framework libraries.

Hand-built frameworks (``repro.corpus.frameworks``) and the synthetic
project generator both use this builder so the declaration code stays flat
and readable::

    ts = TypeSystem()
    lib = LibraryBuilder(ts)
    doc = lib.cls("PaintDotNet.Document")
    size = lib.struct("System.Drawing.Size", comparable=False)
    lib.static_method(
        "PaintDotNet.Actions.CanvasSizeAction", "ResizeDocument",
        returns=doc, params=[("document", doc), ("newSize", size)])
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from .members import Field, Method, Parameter, Property
from .types import TypeDef, TypeKind
from .typesystem import TypeSystem

ParamSpec = Union[Parameter, Tuple[str, TypeDef]]


def _split_full_name(full_name: str) -> Tuple[str, str]:
    """``"A.B.C"`` -> ``("A.B", "C")``; ``"C"`` -> ``("", "C")``."""
    if "." in full_name:
        namespace, _, name = full_name.rpartition(".")
        return namespace, name
    return "", full_name


def _as_params(specs: Optional[Iterable[ParamSpec]]) -> Tuple[Parameter, ...]:
    if not specs:
        return ()
    params = []
    for spec in specs:
        if isinstance(spec, Parameter):
            params.append(spec)
        else:
            name, typedef = spec
            params.append(Parameter(name, typedef))
    return tuple(params)


class LibraryBuilder:
    """Declares types and members into a :class:`TypeSystem`.

    Type-declaring methods take namespace-qualified names and are idempotent
    on the *type system* only in the sense that re-declaring an existing name
    raises — libraries are built once.
    """

    def __init__(self, type_system: TypeSystem) -> None:
        self.ts = type_system

    # ------------------------------------------------------------------
    # type declarations
    # ------------------------------------------------------------------
    def cls(
        self,
        full_name: str,
        base: Optional[TypeDef] = None,
        interfaces: Sequence[TypeDef] = (),
        comparable: bool = False,
    ) -> TypeDef:
        """Declare a class."""
        namespace, name = _split_full_name(full_name)
        return self.ts.register(
            TypeDef(
                name,
                namespace,
                kind=TypeKind.CLASS,
                base=base,
                interfaces=tuple(interfaces),
                comparable=comparable,
            )
        )

    def struct(
        self,
        full_name: str,
        interfaces: Sequence[TypeDef] = (),
        comparable: bool = False,
    ) -> TypeDef:
        """Declare a struct (value type; base is ``System.ValueType``)."""
        namespace, name = _split_full_name(full_name)
        return self.ts.register(
            TypeDef(
                name,
                namespace,
                kind=TypeKind.STRUCT,
                base=self.ts.value_type,
                interfaces=tuple(interfaces),
                comparable=comparable,
            )
        )

    def iface(
        self, full_name: str, extends: Sequence[TypeDef] = ()
    ) -> TypeDef:
        """Declare an interface."""
        namespace, name = _split_full_name(full_name)
        return self.ts.register(
            TypeDef(
                name,
                namespace,
                kind=TypeKind.INTERFACE,
                interfaces=tuple(extends),
            )
        )

    def enum(self, full_name: str, values: Sequence[str] = ()) -> TypeDef:
        """Declare an enum; its values become static fields of the enum."""
        namespace, name = _split_full_name(full_name)
        typedef = self.ts.register(
            TypeDef(
                name,
                namespace,
                kind=TypeKind.ENUM,
                base=self.ts.enum_type,
                comparable=True,
            )
        )
        for value in values:
            typedef.add_field(Field(value, typedef, is_static=True))
        return typedef

    # ------------------------------------------------------------------
    # member declarations
    # ------------------------------------------------------------------
    def _resolve(self, owner: Union[TypeDef, str]) -> TypeDef:
        if isinstance(owner, TypeDef):
            return owner
        existing = self.ts.try_get(owner)
        if existing is not None:
            return existing
        return self.cls(owner)

    def field(
        self,
        owner: Union[TypeDef, str],
        name: str,
        type: TypeDef,
        static: bool = False,
    ) -> Field:
        return self._resolve(owner).add_field(Field(name, type, is_static=static))

    def prop(
        self,
        owner: Union[TypeDef, str],
        name: str,
        type: TypeDef,
        static: bool = False,
    ) -> Property:
        return self._resolve(owner).add_property(
            Property(name, type, is_static=static)
        )

    def method(
        self,
        owner: Union[TypeDef, str],
        name: str,
        returns: Optional[TypeDef] = None,
        params: Optional[Iterable[ParamSpec]] = None,
        overrides: Optional[Method] = None,
    ) -> Method:
        """Declare an instance method (``returns=None`` means ``void``)."""
        return self._resolve(owner).add_method(
            Method(
                name,
                returns,
                params=_as_params(params),
                is_static=False,
                overrides=overrides,
            )
        )

    def static_method(
        self,
        owner: Union[TypeDef, str],
        name: str,
        returns: Optional[TypeDef] = None,
        params: Optional[Iterable[ParamSpec]] = None,
    ) -> Method:
        """Declare a static method."""
        return self._resolve(owner).add_method(
            Method(name, returns, params=_as_params(params), is_static=True)
        )

    def ctor(
        self,
        owner: Union[TypeDef, str],
        params: Optional[Iterable[ParamSpec]] = None,
    ) -> Method:
        """Declare a constructor (``new Owner(params)``)."""
        typedef = self._resolve(owner)
        return typedef.add_method(
            Method(
                typedef.name,
                typedef,
                params=_as_params(params),
                is_static=True,
                is_constructor=True,
            )
        )
