"""Type definitions for the C#-like code model.

The paper's algorithm consumes static metadata about a .NET-style framework:
classes, interfaces, structs, enums and primitive types arranged in
namespaces, each carrying fields, properties and methods.  ``TypeDef`` is the
single node type for all of these; the :class:`TypeKind` enum distinguishes
the flavours.

Types are created through :class:`repro.codemodel.builder.LibraryBuilder` or
directly and registered with a :class:`repro.codemodel.typesystem.TypeSystem`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .members import Field, Method, Property


class TypeKind(enum.Enum):
    """The flavour of a :class:`TypeDef`."""

    CLASS = "class"
    INTERFACE = "interface"
    STRUCT = "struct"
    ENUM = "enum"
    PRIMITIVE = "primitive"


class TypeDef:
    """A named type in the code model.

    Parameters
    ----------
    name:
        The simple (unqualified) name, e.g. ``"Document"``.
    namespace:
        The dotted namespace, e.g. ``"PaintDotNet.Actions"``.  The empty
        string means the global namespace.
    kind:
        The :class:`TypeKind`.
    base:
        The declared base type (``None`` for ``Object``, interfaces without
        an ``Object`` edge get one implicitly in the type system).
    interfaces:
        Interfaces this type declares it implements / extends.
    comparable:
        Whether values of this type can appear on either side of a
        relational operator (``<``, ``>=``, ...).  Numeric primitives,
        ``DateTime``-style types and enums set this.
    treat_as_primitive:
        The paper's namespace feature ignores "primitive types, including
        string"; ``String`` sets this without being a ``PRIMITIVE`` kind.
    """

    __slots__ = (
        "name",
        "namespace",
        "kind",
        "_base",
        "_interfaces",
        "comparable",
        "treat_as_primitive",
        "fields",
        "properties",
        "methods",
        "_member_cache",
        "_registry",
    )

    def __init__(
        self,
        name: str,
        namespace: str = "",
        kind: TypeKind = TypeKind.CLASS,
        base: Optional["TypeDef"] = None,
        interfaces: Tuple["TypeDef", ...] = (),
        comparable: bool = False,
        treat_as_primitive: bool = False,
    ) -> None:
        self.name = name
        self.namespace = namespace
        self.kind = kind
        self._base = base
        self._interfaces: Tuple[TypeDef, ...] = tuple(interfaces)
        self.comparable = comparable
        self.treat_as_primitive = treat_as_primitive
        self.fields: List["Field"] = []
        self.properties: List["Property"] = []
        self.methods: List["Method"] = []
        self._member_cache: Optional[Dict[str, object]] = None
        #: the TypeSystem this type is registered with; mutating the type
        #: after registration invalidates the registry's memoised queries
        self._registry = None

    # ------------------------------------------------------------------
    # supertype edges (mutations invalidate the owning registry's caches)
    # ------------------------------------------------------------------
    @property
    def base(self) -> Optional["TypeDef"]:
        """The declared base type."""
        return self._base

    @base.setter
    def base(self, value: Optional["TypeDef"]) -> None:
        self._base = value
        self._invalidate(structural=True)

    @property
    def interfaces(self) -> Tuple["TypeDef", ...]:
        """Interfaces this type declares it implements / extends."""
        return self._interfaces

    @interfaces.setter
    def interfaces(self, value: Tuple["TypeDef", ...]) -> None:
        self._interfaces = tuple(value)
        self._invalidate(structural=True)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def full_name(self) -> str:
        """The namespace-qualified name used for registry lookups."""
        if self.namespace:
            return "{}.{}".format(self.namespace, self.name)
        return self.name

    @property
    def namespace_parts(self) -> Tuple[str, ...]:
        """The namespace as a tuple of segments (empty for the global ns)."""
        if not self.namespace:
            return ()
        return tuple(self.namespace.split("."))

    @property
    def is_primitive(self) -> bool:
        """True for primitive kinds *and* primitive-like types (string).

        This is the notion of "primitive" used by the ranking function's
        common-namespace feature.
        """
        return self.kind is TypeKind.PRIMITIVE or self.treat_as_primitive

    @property
    def is_interface(self) -> bool:
        return self.kind is TypeKind.INTERFACE

    @property
    def is_enum(self) -> bool:
        return self.kind is TypeKind.ENUM

    # ------------------------------------------------------------------
    # member management
    # ------------------------------------------------------------------
    def _invalidate(
        self, structural: bool = False, methods: bool = False
    ) -> None:
        """Report a mutation to the owning registry.

        Member-level edits name this type as the mutation *origin* so the
        completion cache and indexes can invalidate only the entries whose
        dependency footprint touches it; structural edits (supertype-edge
        changes) carry no origin, forcing the coarse path — they can move
        type distances between arbitrary pairs of types.  ``methods``
        flags edits that may have changed this type's method list — the
        only member edits able to mint or re-rank unknown-call candidates
        (field and property edits can only be *read*).
        """
        self._member_cache = None
        if self._registry is not None:
            self._registry._invalidate_caches(
                None if structural else self,
                methods_changed=structural or methods)

    def add_field(self, field: "Field") -> "Field":
        field.declaring_type = self
        self.fields.append(field)
        self._invalidate()
        return field

    def add_property(self, prop: "Property") -> "Property":
        prop.declaring_type = self
        self.properties.append(prop)
        self._invalidate()
        return prop

    def add_method(self, method: "Method") -> "Method":
        method.declaring_type = self
        self.methods.append(method)
        self._invalidate(methods=True)
        return method

    def set_member_order(
        self,
        fields: Optional[List["Field"]] = None,
        properties: Optional[List["Property"]] = None,
        methods: Optional[List["Method"]] = None,
    ) -> None:
        """Reorder declared members in place, invalidating caches.

        Mutating the member lists directly bypasses invalidation — the
        registry's memoised lookups and any warm completion cache would
        serve the old declaration order.  Such silent drift is detected
        after the fact by the RA104 fingerprint-drift lint
        (:func:`repro.analysis.deps.lint_dependencies` compares
        ``TypeSystem.fingerprint(fresh=True)`` against the digest stamped
        at the same version).  Each replacement list must be a permutation
        of the current one (same member objects, new order); ``None``
        leaves that list untouched.
        """
        for label, current, replacement in (
            ("fields", self.fields, fields),
            ("properties", self.properties, properties),
            ("methods", self.methods, methods),
        ):
            if replacement is None:
                continue
            if sorted(map(id, replacement)) != sorted(map(id, current)):
                raise ValueError(
                    "set_member_order: new {} list is not a permutation "
                    "of the declared {} of {}".format(
                        label, label, self.full_name))
            current[:] = replacement
        # a method reorder changes declaration order, the tie-break among
        # equal-scoring same-name candidates — flag it like an addition
        self._invalidate(methods=methods is not None)

    # ------------------------------------------------------------------
    # member lookup (declared members only; inherited lookup lives in the
    # TypeSystem which knows the full hierarchy)
    # ------------------------------------------------------------------
    def declared_lookups(self) -> Iterator[object]:
        """Fields and properties declared directly on this type."""
        yield from self.fields
        yield from self.properties

    def declared_methods_named(self, name: str) -> List["Method"]:
        return [m for m in self.methods if m.name == name]

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TypeDef {} {}>".format(self.kind.value, self.full_name)

    def __str__(self) -> str:
        return self.full_name
