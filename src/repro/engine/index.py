"""Indexes over the library universe.

:class:`MethodIndex` is Figure 8's structure: "An index is maintained that
maps every type to a set of methods for which at least one of the arguments
may be of that type" — organised by *exact* parameter type, with the
supertype walk performed at query time so that "each method index visited
will give progressively worse ranked results".  Given a query's argument
types, the index picks the argument whose candidate set is smallest.

:class:`ReachabilityIndex` is the optional index sketched at the end of
Sec. 4.2 ("queries for multiple field lookups could also be made more
efficient using an index that indicates for each type which types are
reachable by a ``.?*f`` or ``.?*m`` query, [and] how many lookups are
needed").  The completion engine uses it to prune chain search when a
target type is known.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..codemodel.members import Method
from ..codemodel.types import TypeDef
from ..codemodel.typesystem import TypeSystem
from ..testing import faults
from .budget import QueryBudget


class MethodIndex:
    """type -> methods with a parameter of exactly that type (Fig. 8)."""

    def __init__(self, ts: TypeSystem) -> None:
        self.ts = ts
        self._by_exact_type: Dict[str, List[Method]] = {}
        self._by_declaring: Dict[str, List[Method]] = {}
        self._all_methods: List[Method] = []
        #: refreshes served by patching only the mutated types' regions
        self.patches = 0
        #: refreshes that rebuilt the whole index
        self.rebuilds = 0
        self._build()

    @classmethod
    def from_snapshot(
        cls, ts: TypeSystem, by_exact_type: Dict[str, List[Method]]
    ) -> "MethodIndex":
        """Restore an index from persisted parameter buckets
        (:mod:`repro.pack`) instead of scanning every method signature.

        ``by_exact_type`` must hold each bucket in whole-universe
        declaration order — the order :meth:`_build` produces — so
        ranking ties that fall back to bucket order cannot diverge
        between a restored and a cold index.  The declaring-type map and
        the flat method list are rebuilt with one cheap pass (they are
        pure declaration order, no signature walk).
        """
        self = cls.__new__(cls)
        self.ts = ts
        self._by_exact_type = by_exact_type
        self._by_declaring = {}
        self._all_methods = []
        for method in ts.all_methods():
            self._all_methods.append(method)
            if method.declaring_type is not None:
                self._by_declaring.setdefault(
                    method.declaring_type.full_name, []).append(method)
        self.patches = 0
        self.rebuilds = 0
        self.built_version = ts.version
        return self

    def _build(self) -> None:
        self.built_version = self.ts.version
        for method in self.ts.all_methods():
            self._all_methods.append(method)
            self._index_method(method)

    def _index_method(self, method: Method) -> None:
        if method.declaring_type is not None:
            self._by_declaring.setdefault(
                method.declaring_type.full_name, []).append(method)
        seen_types = set()
        for param in method.all_params():
            key = param.type.full_name
            if key in seen_types:
                continue
            seen_types.add(key)
            self._by_exact_type.setdefault(key, []).append(method)

    def refresh(self) -> None:
        """Reconcile the buckets when the type system has moved on.

        A cheap version compare on the hot path keeps the index honest
        against types/members registered after construction.  The index
        depends only on method lists, so it reconciles from
        ``TypeSystem.method_mutations_since``: a window of field- and
        property-only edits just restamps the version, a fully
        member-level window rewrites only the mutated types' regions,
        and anything else (structural edit, truncated log) rebuilds the
        whole index.
        """
        if self.built_version == self.ts.version:
            return
        mutated = self.ts.method_mutations_since(self.built_version)
        if mutated is None:
            self._by_exact_type = {}
            self._by_declaring = {}
            self._all_methods = []
            self.rebuilds += 1
            self._build()
        else:
            if mutated:
                self._patch(mutated)
                self.patches += 1
            self.built_version = self.ts.version

    def _patch(self, mutated_names) -> None:
        """Rewrite only the regions touched by the named types: drop
        their previously-indexed methods from the parameter buckets,
        re-add their current declarations, and restore each touched
        bucket to whole-universe declaration order — the order a full
        rebuild would produce, so ranking ties that fall back to bucket
        order cannot diverge between a patched and a cold index."""
        touched: set = set()
        for name in mutated_names:
            old = self._by_declaring.pop(name, [])
            if old:
                old_ids = {id(method) for method in old}
                bucket_keys = set()
                for method in old:
                    for param in method.all_params():
                        bucket_keys.add(param.type.full_name)
                touched |= bucket_keys
                for key in bucket_keys:
                    bucket = self._by_exact_type.get(key)
                    if bucket is None:
                        continue
                    kept = [m for m in bucket if id(m) not in old_ids]
                    if kept:
                        self._by_exact_type[key] = kept
                    else:
                        del self._by_exact_type[key]
            typedef = self.ts.try_get(name)
            if typedef is not None:
                for method in typedef.methods:
                    self._index_method(method)
                    for param in method.all_params():
                        touched.add(param.type.full_name)
        self._all_methods = list(self.ts.all_methods())
        position = {
            id(method): index
            for index, method in enumerate(self._all_methods)
        }
        for key in touched:
            bucket = self._by_exact_type.get(key)
            if bucket is not None and len(bucket) > 1:
                bucket.sort(key=lambda m: position.get(id(m), -1))

    def methods_with_exact_param(self, typedef: TypeDef) -> List[Method]:
        """Methods having at least one parameter of exactly this type."""
        self.refresh()
        return list(self._by_exact_type.get(typedef.full_name, ()))

    def methods_accepting(
        self, typedef: TypeDef, budget: Optional[QueryBudget] = None
    ) -> List[Method]:
        """Methods with a parameter the given type implicitly converts to —
        the union over the supertype walk, nearest types first.

        A tripped ``budget`` cuts the walk short: the methods gathered so
        far (the *nearest*, best-ranked ones) are returned.
        """
        self.refresh()
        result: List[Method] = []
        seen: set = set()
        for holder in self._supertype_order(typedef):
            if budget is not None and not budget.tick():
                break
            for method in self._by_exact_type.get(holder.full_name, ()):
                if id(method) not in seen:
                    seen.add(id(method))
                    result.append(method)
        return result

    def _supertype_order(self, typedef: TypeDef) -> List[TypeDef]:
        """BFS order over the supertype graph (self first)."""
        order: List[TypeDef] = []
        seen = {typedef}
        queue = deque([typedef])
        while queue:
            current = queue.popleft()
            order.append(current)
            for parent in self.ts.immediate_supertypes(current):
                if parent not in seen:
                    seen.add(parent)
                    queue.append(parent)
        return order

    def candidate_methods(
        self,
        arg_types: Sequence[Optional[TypeDef]],
        budget: Optional[QueryBudget] = None,
    ) -> List[Method]:
        """Candidate methods for an unknown call with these argument types.

        "Each of the argument types is looked up to see how many methods
        would have to be considered for that type and the smallest set is
        chosen."  ``None`` entries (wildcard ``0`` arguments) are skipped;
        when every argument is a wildcard, all methods are candidates.
        """
        faults.fire("index_lookup")
        self.refresh()
        best: Optional[List[Method]] = None
        for arg_type in arg_types:
            if arg_type is None:
                continue
            candidates = self.methods_accepting(arg_type, budget)
            if best is None or len(candidates) < len(best):
                best = candidates
        if best is None:
            return list(self._all_methods)
        return best

    def all_methods(self) -> List[Method]:
        self.refresh()
        return list(self._all_methods)

    def __len__(self) -> int:
        self.refresh()
        return len(self._all_methods)

    def stats(self) -> Dict[str, float]:
        """Index shape: how much the per-type buckets narrow the search
        relative to scanning every method."""
        sizes = [len(bucket) for bucket in self._by_exact_type.values()]
        if not sizes:
            return {"methods": float(len(self._all_methods)),
                    "indexed_types": 0.0, "largest_bucket": 0.0,
                    "mean_bucket": 0.0,
                    "patches": float(self.patches),
                    "rebuilds": float(self.rebuilds)}
        return {
            "methods": float(len(self._all_methods)),
            "indexed_types": float(len(sizes)),
            "largest_bucket": float(max(sizes)),
            "mean_bucket": sum(sizes) / len(sizes),
            "patches": float(self.patches),
            "rebuilds": float(self.rebuilds),
        }


class ReachabilityIndex:
    """Which types are reachable from a type by lookup chains, and in how
    many steps.  Memoised per (source, allow_methods)."""

    def __init__(self, ts: TypeSystem, max_depth: int = 4) -> None:
        self.ts = ts
        self.max_depth = max_depth
        self.built_version = ts.version
        self._cache: Dict[Tuple[str, bool], Dict[str, int]] = {}
        self._target_cache: Dict[Tuple[str, str, bool], Optional[int]] = {}
        #: per-walk footprint: every type whose member list fed the BFS
        #: (the reached types plus their supertype closures — lookups and
        #: zero-arg methods are inherited, so an edit anywhere up the
        #: lattice of a reached type can open new steps from it)
        self._walk_fp: Dict[Tuple[str, bool], frozenset] = {}
        #: pack-restored walks, still int-encoded (``(dists_csv,
        #: fp_csv)`` per key); decoded into ``_cache`` on first access so
        #: a pack load never pays for walks no query asks about
        self._packed: Dict[Tuple[str, bool], Tuple[str, str]] = {}
        self._pack_strings: List[str] = []
        #: memo hit/miss counters for ``steps_to_target`` (bench reporting)
        self.hits = 0
        self.misses = 0
        #: refreshes that dropped only the walks a mutation could touch
        self.patches = 0
        #: refreshes that cleared every memoised walk
        self.rebuilds = 0

    @classmethod
    def from_snapshot(
        cls,
        ts: TypeSystem,
        max_depth: int,
        packed: Dict[Tuple[str, bool], Tuple[str, str]],
        strings: List[str],
    ) -> "ReachabilityIndex":
        """Restore an index from persisted walks (:mod:`repro.pack`).

        ``packed`` maps ``(source_name, allow_methods)`` to the walk's
        still-encoded ``(distances_csv, footprint_csv)`` pair —
        comma-joined indexes into ``strings``, distances interleaved as
        ``sid,dist,...``.  Decoding is deferred to the first
        :meth:`reachable` call per key, which keeps pack cold starts
        proportional to what queries touch rather than universe size.
        """
        self = cls(ts, max_depth=max_depth)
        self._packed = packed
        self._pack_strings = strings
        return self

    def _unpack_walk(
        self, key: Tuple[str, bool], encoded: Tuple[str, str]
    ) -> Dict[str, int]:
        strings = self._pack_strings
        dists_csv, fp_csv = encoded
        distances: Dict[str, int] = {}
        if dists_csv:
            flat = dists_csv.split(",")
            for index in range(0, len(flat), 2):
                distances[strings[int(flat[index])]] = int(flat[index + 1])
        self._cache[key] = distances
        self._walk_fp[key] = (
            frozenset(strings[int(x)] for x in fp_csv.split(","))
            if fp_csv else frozenset()
        )
        return distances

    def refresh(self) -> None:
        """Drop memoised walks when the type system has been mutated.

        Member-level mutation windows drop only the walks whose footprint
        intersects the mutated types; structural edits (or a truncated
        window) clear everything.  A walk from an untouched region is
        unaffected by a member edit elsewhere: new steps can only appear
        from types whose member lists fed the BFS, and those are exactly
        the footprint.
        """
        if self.built_version == self.ts.version:
            return
        mutated = self.ts.mutations_since(self.built_version)
        self.built_version = self.ts.version
        if mutated is None:
            self._cache.clear()
            self._target_cache.clear()
            self._walk_fp.clear()
            self._packed.clear()
            self.rebuilds += 1
            return
        dropped = set()
        for key in list(self._cache):
            fp = self._walk_fp.get(key)
            if fp is None or fp & mutated:
                del self._cache[key]
                self._walk_fp.pop(key, None)
                dropped.add(key)
        if self._packed:
            # packed walks carry their footprint in encoded form; decode
            # just the footprint to apply the same intersection test
            strings = self._pack_strings
            for key in list(self._packed):
                fp_csv = self._packed[key][1]
                fp_ids = fp_csv.split(",") if fp_csv else []
                if any(strings[int(x)] in mutated for x in fp_ids):
                    del self._packed[key]
                    dropped.add(key)
        if dropped:
            for tkey in list(self._target_cache):
                if (tkey[0], tkey[2]) in dropped:
                    del self._target_cache[tkey]
        self.patches += 1

    def reachable(
        self, source: TypeDef, allow_methods: bool
    ) -> Dict[str, int]:
        """Map from reachable type full-name to minimum number of lookups
        (0 for the source itself), bounded by ``max_depth``."""
        self.refresh()
        key = (source.full_name, allow_methods)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._packed:
            encoded = self._packed.pop(key, None)
            if encoded is not None:
                return self._unpack_walk(key, encoded)
        distances: Dict[str, int] = {source.full_name: 0}
        frontier = [source]
        for depth in range(1, self.max_depth + 1):
            next_frontier: List[TypeDef] = []
            for typedef in frontier:
                for step_type in self._step_types(typedef, allow_methods):
                    name = step_type.full_name
                    if name not in distances:
                        distances[name] = depth
                        next_frontier.append(step_type)
            frontier = next_frontier
        self._cache[key] = distances
        footprint = set(distances)
        for name in distances:
            reached = self.ts.try_get(name)
            if reached is not None:
                for holder in self.ts.supertype_closure(reached):
                    footprint.add(holder.full_name)
        self._walk_fp[key] = frozenset(footprint)
        return distances

    def _step_types(self, typedef: TypeDef, allow_methods: bool) -> List[TypeDef]:
        types: List[TypeDef] = []
        for member in self.ts.instance_lookups(typedef):
            types.append(member.type)
        if allow_methods:
            for method in self.ts.zero_arg_instance_methods(typedef):
                if method.return_type is not None:
                    types.append(method.return_type)
        return types

    def steps_to_target(
        self,
        source: TypeDef,
        target: TypeDef,
        allow_methods: bool,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[int]:
        """Minimum lookups from ``source`` to *some type convertible to*
        ``target``, or ``None`` if unreachable within ``max_depth``.

        The budget is charged one step per query (the underlying BFS is
        memoised engine-wide, so it is never interrupted mid-build — a
        partial result must not poison the cache).
        """
        if budget is not None:
            budget.tick()
        self.refresh()
        key = (source.full_name, target.full_name, allow_methods)
        if key in self._target_cache:
            self.hits += 1
            return self._target_cache[key]
        self.misses += 1
        best: Optional[int] = None
        for name, steps in self.reachable(source, allow_methods).items():
            if best is not None and steps >= best:
                continue
            reached = self.ts.try_get(name)
            if reached is not None and self.ts.implicitly_converts(reached, target):
                best = steps
        self._target_cache[key] = best
        return best

    def can_reach(
        self,
        source: TypeDef,
        target: TypeDef,
        within: int,
        allow_methods: bool,
        budget: Optional[QueryBudget] = None,
    ) -> bool:
        """Can a chain from ``source`` produce a value usable as ``target``
        within the given number of lookups?"""
        faults.fire("index_lookup")
        steps = self.steps_to_target(source, target, allow_methods, budget)
        return steps is not None and steps <= within

    def stats(self) -> Dict[str, float]:
        """Memo shape and hit rate of the target queries."""
        total = self.hits + self.misses
        return {
            "sources": float(len(self._cache)),
            "targets": float(len(self._target_cache)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hits / total if total else 0.0,
            "patches": float(self.patches),
            "rebuilds": float(self.rebuilds),
        }
