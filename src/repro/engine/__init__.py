"""Completion engine: ranking, indexes, score-ordered generators."""

from .algorithm1 import Algorithm1
from .budget import (
    CancellationToken,
    QueryBudget,
    TRUNCATED_BUDGET,
    TRUNCATED_CANCELLED,
    TRUNCATED_TIMEOUT,
)
from .completer import Completion, CompletionEngine, EngineConfig, QueryOutcome
from .index import MethodIndex, ReachabilityIndex
from .ranking import AbstractTypeOracle, Ranker, RankingConfig
from .streams import check_stream, sanitize_streams, sanitizer_active

__all__ = [
    "AbstractTypeOracle",
    "Algorithm1",
    "CancellationToken",
    "Completion",
    "CompletionEngine",
    "EngineConfig",
    "MethodIndex",
    "QueryBudget",
    "QueryOutcome",
    "Ranker",
    "RankingConfig",
    "ReachabilityIndex",
    "TRUNCATED_BUDGET",
    "TRUNCATED_CANCELLED",
    "TRUNCATED_TIMEOUT",
    "check_stream",
    "sanitize_streams",
    "sanitizer_active",
]
