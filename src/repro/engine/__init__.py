"""Completion engine: ranking, indexes, score-ordered generators."""

from .algorithm1 import Algorithm1
from .budget import (
    CancellationToken,
    QueryBudget,
    TRUNCATED_BUDGET,
    TRUNCATED_CANCELLED,
    TRUNCATED_TIMEOUT,
)
from .cache import CacheStats, CompletionCache, context_signature
from .completer import (
    Completion,
    CompletionEngine,
    CompletionRequest,
    EngineConfig,
    QueryOutcome,
    QueryStatus,
)
from .index import MethodIndex, ReachabilityIndex
from .ranking import AbstractTypeOracle, Ranker, RankingConfig
from .streams import (
    SharedStream,
    check_stream,
    sanitize_streams,
    sanitizer_active,
)

__all__ = [
    "AbstractTypeOracle",
    "Algorithm1",
    "CacheStats",
    "CancellationToken",
    "Completion",
    "CompletionCache",
    "CompletionEngine",
    "CompletionRequest",
    "EngineConfig",
    "MethodIndex",
    "QueryBudget",
    "QueryOutcome",
    "QueryStatus",
    "Ranker",
    "RankingConfig",
    "ReachabilityIndex",
    "SharedStream",
    "TRUNCATED_BUDGET",
    "TRUNCATED_CANCELLED",
    "TRUNCATED_TIMEOUT",
    "check_stream",
    "context_signature",
    "sanitize_streams",
    "sanitizer_active",
]
