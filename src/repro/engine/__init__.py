"""Completion engine: ranking, indexes, score-ordered generators."""

from .algorithm1 import Algorithm1
from .completer import Completion, CompletionEngine, EngineConfig
from .index import MethodIndex, ReachabilityIndex
from .ranking import AbstractTypeOracle, Ranker, RankingConfig

__all__ = [
    "AbstractTypeOracle",
    "Algorithm1",
    "Completion",
    "CompletionEngine",
    "EngineConfig",
    "MethodIndex",
    "Ranker",
    "RankingConfig",
    "ReachabilityIndex",
]
