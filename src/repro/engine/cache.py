"""Cross-query completion cache.

The paper's speed argument is per-query laziness: only the top *n*
completions are ever computed.  This module adds the *cross*-query half
of the story (the direction Prospector-style engines take — see
PAPERS.md): queries against the same universe repeat the same work — the
global chain-root pool is rescored from scratch, identical sub-streams
are re-expanded, and the same (method, argument-types) placements are
re-solved.  :class:`CompletionCache` memoises all three across queries
on one engine:

* **scored global roots** — the static fields / zero-argument static
  calls every ``?`` hole starts from.  Their scores depend only on the
  ``depth`` ranking switch (locals are scored per query; they are
  cheap), so one pool per depth flag serves every context.
* **sub-streams** — completions of a subexpression under a given
  (context, target type, config) key, kept as re-playable
  :class:`~repro.engine.streams.SharedStream` prefixes.  A second query
  asking for the same sub-stream replays the computed prefix from
  memory and only extends it past the known frontier.  Whole-query
  result streams are cached the same way under a distinct tag.
* **placements** — the cheapest injective argument placement per
  (method, argument-type tuple): position vector plus placement cost,
  independent of the concrete argument expressions once the
  abstract-type oracle is out of the picture.

Invalidation is by the :class:`~repro.codemodel.typesystem.TypeSystem`
version counter: every public lookup first compares the type system's
current version against the version the cache was filled under and
drops *everything* on mismatch.  Mutating a universe mid-session is
rare and coarse invalidation is obviously correct; fine-grained
dependency tracking is not worth its bug surface.  The observable
contract — a mutation landing between ``warm()`` and a batched
``complete_many`` never lets the batch see pre-mutation answers — is
pinned in ``tests/test_cache_mutation.py`` and fuzzed on random
universes by ``repro fuzz``'s mutation mode (docs/FUZZING.md); any
future fine-grained scheme must keep both green.

The cache is deliberately **bypassed** by the engine when a query
cannot safely share state (see ``CompletionEngine._stream_cache``):

* a :class:`~repro.engine.budget.QueryBudget` is attached — budget
  ticks happen inside the stream generators, so a replayed prefix would
  truncate at different points than a cold run;
* an abstract-type oracle is supplied — scores then depend on the
  oracle, which is per-call-site;
* a fault-injection plan is armed — a cached clean result must not
  mask an injected fault (and a faulted result must not poison the
  cache).

Everything is guarded by one re-entrant lock so ``complete_many`` can
shard a batch across threads; stream *pulls* are serialised by each
``SharedStream``'s own lock (the cache lock is never held while
pulling, so the two levels cannot deadlock).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from ..analysis.scope import Context
from ..codemodel.typesystem import TypeSystem
from .streams import Scored, SharedStream

#: sentinel distinguishing "cached None" from "not cached"
_MISSING = object()


def context_signature(context: Context) -> Tuple:
    """A hashable key for everything in a :class:`Context` that can
    influence completion results: the locals (order matters — it is the
    tie-break order of chain roots), ``this``, and the enclosing type
    (the in-scope-static ranking term)."""
    return (
        tuple(
            (name, typedef.full_name)
            for name, typedef in context.locals.items()
        ),
        context.this_type.full_name if context.this_type else None,
        context.enclosing_type.full_name if context.enclosing_type else None,
    )


@dataclass
class CacheStats:
    """Hit/miss counters per cache kind, plus lifecycle events."""

    stream_hits: int = 0
    stream_misses: int = 0
    roots_hits: int = 0
    roots_misses: int = 0
    placement_hits: int = 0
    placement_misses: int = 0
    #: whole-cache clears triggered by a TypeSystem version change
    invalidations: int = 0
    #: entries dropped by the LRU bound (streams + placements)
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.stream_hits + self.roots_hits + self.placement_hits

    @property
    def misses(self) -> int:
        return self.stream_misses + self.roots_misses + self.placement_misses

    @property
    def hit_rate(self) -> float:
        """Overall hit rate in [0, 1]; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "stream_hits": self.stream_hits,
            "stream_misses": self.stream_misses,
            "roots_hits": self.roots_hits,
            "roots_misses": self.roots_misses,
            "placement_hits": self.placement_hits,
            "placement_misses": self.placement_misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


class CompletionCache:
    """Version-synchronised cross-query memo for one engine.

    ``max_streams`` / ``max_placements`` bound the two LRU maps; the
    root pools are at most two entries (one per depth flag) and are
    never evicted.
    """

    def __init__(
        self, max_streams: int = 512, max_placements: int = 8192
    ) -> None:
        self.max_streams = max_streams
        self.max_placements = max_placements
        self.stats = CacheStats()
        self._version: Optional[int] = None
        self._streams: "OrderedDict[Hashable, SharedStream]" = OrderedDict()
        self._roots: Dict[Hashable, List[Scored]] = {}
        self._placements: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def _sync(self, ts: TypeSystem) -> None:
        """Drop everything when the type system has been mutated since
        the cache was filled.  Caller holds the lock."""
        if self._version != ts.version:
            if self._version is not None and (
                self._streams or self._roots or self._placements
            ):
                self.stats.invalidations += 1
            self._streams.clear()
            self._roots.clear()
            self._placements.clear()
            self._version = ts.version

    def clear(self) -> None:
        """Forget every cached entry (stats are kept)."""
        with self._lock:
            self._streams.clear()
            self._roots.clear()
            self._placements.clear()
            self._version = None

    # ------------------------------------------------------------------
    # the three memo kinds
    # ------------------------------------------------------------------
    def stream(
        self,
        ts: TypeSystem,
        key: Hashable,
        make: Callable[[], Iterable[Scored]],
    ) -> Tuple[SharedStream, bool]:
        """The shared re-playable stream under ``key``, creating it from
        ``make()`` on a miss.  Returns ``(stream, was_hit)``.

        A stream whose underlying generator raised is replaced rather
        than replayed (its error would otherwise re-raise forever, even
        after the cause — say, a transient oracle failure — is gone).
        """
        with self._lock:
            self._sync(ts)
            shared = self._streams.get(key)
            if shared is not None and not shared.broken:
                self._streams.move_to_end(key)
                self.stats.stream_hits += 1
                return shared, True
            self.stats.stream_misses += 1
            shared = SharedStream(make())
            self._streams[key] = shared
            while len(self._streams) > self.max_streams:
                self._streams.popitem(last=False)
                self.stats.evictions += 1
            return shared, False

    def peek(
        self, ts: TypeSystem, key: Hashable
    ) -> Optional[SharedStream]:
        """The shared stream under ``key`` if present and healthy, else
        ``None`` — a read-only probe that never creates an entry.

        Traced queries use this: they may *replay* a stream some earlier
        untraced query populated (marked as a cache hit in the trace),
        but on a miss they run privately and must not publish streams
        containing tracer wrappers.
        """
        with self._lock:
            self._sync(ts)
            shared = self._streams.get(key)
            if shared is not None and not shared.broken:
                self._streams.move_to_end(key)
                self.stats.stream_hits += 1
                return shared
            self.stats.stream_misses += 1
            return None

    def global_roots(
        self,
        ts: TypeSystem,
        key: Hashable,
        make: Callable[[], List[Scored]],
    ) -> List[Scored]:
        """The scored global chain-root pool under ``key`` (the pool is
        returned by reference; callers must not mutate it)."""
        with self._lock:
            self._sync(ts)
            pool = self._roots.get(key)
            if pool is not None:
                self.stats.roots_hits += 1
                return pool
            self.stats.roots_misses += 1
            pool = make()
            self._roots[key] = pool
            return pool

    def placement(
        self,
        ts: TypeSystem,
        key: Hashable,
        compute: Callable[[], Any],
    ) -> Any:
        """The memoised placement result under ``key`` (which may
        legitimately be ``None`` — "no valid placement" is cached too)."""
        with self._lock:
            self._sync(ts)
            value = self._placements.get(key, _MISSING)
            if value is not _MISSING:
                self._placements.move_to_end(key)
                self.stats.placement_hits += 1
                return value
        # compute outside the lock: placement search can recurse into the
        # ranker and is the one memo whose maker does real work eagerly
        value = compute()
        with self._lock:
            if self._version == ts.version:
                self.stats.placement_misses += 1
                self._placements[key] = value
                while len(self._placements) > self.max_placements:
                    self._placements.popitem(last=False)
                    self.stats.evictions += 1
        return value

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Stats plus current sizes, for ``:cache`` and the bench
        harness."""
        with self._lock:
            data = self.stats.to_dict()
            data["streams"] = float(len(self._streams))
            data["root_pools"] = float(len(self._roots))
            data["placements"] = float(len(self._placements))
            return data
