"""Cross-query completion cache with dependency-footprint invalidation.

The paper's speed argument is per-query laziness: only the top *n*
completions are ever computed.  This module adds the *cross*-query half
of the story (the direction Prospector-style engines take — see
PAPERS.md): queries against the same universe repeat the same work — the
global chain-root pool is rescored from scratch, identical sub-streams
are re-expanded, and the same (method, argument-types) placements are
re-solved.  :class:`CompletionCache` memoises all three across queries
on one engine:

* **scored global roots** — the static fields / zero-argument static
  calls every ``?`` hole starts from.  Their scores depend only on the
  ``depth`` ranking switch (locals are scored per query; they are
  cheap), so one pool per depth flag serves every context.  The pool is
  stored as per-declaring-type *groups* so a member edit re-scores only
  the edited types' groups.
* **sub-streams** — completions of a subexpression under a given
  (context, target type, config) key, kept as re-playable
  :class:`~repro.engine.streams.SharedStream` prefixes.  A second query
  asking for the same sub-stream replays the computed prefix from
  memory and only extends it past the known frontier.  Whole-query
  result streams are cached the same way under a distinct tag.
* **placements** — the cheapest injective argument placement per
  (method, argument-type tuple): position vector plus placement cost,
  independent of the concrete argument expressions once the
  abstract-type oracle is out of the picture.

**Invalidation** is two-tier.  Every public lookup compares the
:class:`~repro.codemodel.typesystem.TypeSystem` version counter against
the version the cache was filled under.  On mismatch the cache asks the
type system *which* types changed (``TypeSystem.mutations_since``):

* **fine-grained** (the default; ``fine=False`` restores the old
  behaviour): when every mutation in the window was member-level, the
  cache drops only the entries whose recorded
  :class:`~repro.analysis.deps.QueryFootprint` an edit can reach —
  either the entry's **reads** closure (the
  :class:`~repro.analysis.deps.DependencyGraph` forward closure of its
  seed types, captured at population time) meets the mutated names, or
  its **accepting** set (unknown-call argument supertype closures)
  meets the mutated types' method parameter types
  (:func:`~repro.analysis.deps.method_param_types`) — the path by which
  a method newly added to a previously-unrelated type becomes a
  candidate.  Entries with no footprint (``None``: hole queries that
  can read the whole universe) are always dropped.  Root-pool groups of
  the mutated types are dropped and regenerated lazily.
* **coarse** (the documented fallback): everything is dropped when the
  mutation window contains a *structural* edit (registration,
  ``base``/``interfaces`` re-pointing — type distances move globally),
  when the mutation log has been truncated, or when fine invalidation
  is disabled.

The observable contract — a mutation landing between ``warm()`` and a
batched ``complete_many`` never lets the batch see pre-mutation
answers — is pinned in ``tests/test_cache_mutation.py`` and fuzzed on
random universes by ``repro fuzz``'s mutation mode (docs/FUZZING.md);
the fine-grained scheme keeps both green because a preserved entry's
footprint provably excludes every mutated type (docs/PERFORMANCE.md
spells out the argument).  :class:`CacheStats` attributes each
invalidation to its tier and counts the entries preserved.

The cache is deliberately **bypassed** by the engine when a query
cannot safely share state (see ``CompletionEngine._stream_cache``):

* a :class:`~repro.engine.budget.QueryBudget` is attached — budget
  ticks happen inside the stream generators, so a replayed prefix would
  truncate at different points than a cold run;
* an abstract-type oracle is supplied — scores then depend on the
  oracle, which is per-call-site;
* a fault-injection plan is armed — a cached clean result must not
  mask an injected fault (and a faulted result must not poison the
  cache).

Everything is guarded by one re-entrant lock so ``complete_many`` can
shard a batch across threads; stream *pulls* are serialised by each
``SharedStream``'s own lock (the cache lock is never held while
pulling, so the two levels cannot deadlock).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..analysis.deps import QueryFootprint, method_param_types
from ..analysis.scope import Context
from ..codemodel.typesystem import TypeSystem
from .streams import Scored, SharedStream

#: sentinel distinguishing "cached None" from "not cached"
_MISSING = object()

#: a per-entry dependency footprint (reads closure + accepting set), or
#: ``None`` for universe-wide entries
Footprint = Optional[QueryFootprint]


def context_signature(context: Context) -> Tuple:
    """A hashable key for everything in a :class:`Context` that can
    influence completion results: the locals (order matters — it is the
    tie-break order of chain roots), ``this``, and the enclosing type
    (the in-scope-static ranking term)."""
    return (
        tuple(
            (name, typedef.full_name)
            for name, typedef in context.locals.items()
        ),
        context.this_type.full_name if context.this_type else None,
        context.enclosing_type.full_name if context.enclosing_type else None,
    )


@dataclass
class CacheStats:
    """Hit/miss counters per cache kind, plus lifecycle events."""

    stream_hits: int = 0
    stream_misses: int = 0
    roots_hits: int = 0
    roots_misses: int = 0
    placement_hits: int = 0
    placement_misses: int = 0
    #: whole-cache clears triggered by a TypeSystem version change whose
    #: mutation window could not be invalidated selectively
    invalidations_coarse: int = 0
    #: version changes handled by dropping only footprint-affected entries
    invalidations_fine: int = 0
    #: entries (streams + placements + root-pool groups) kept alive across
    #: fine-grained invalidations
    entries_preserved: int = 0
    #: entries dropped by fine-grained invalidations
    entries_dropped: int = 0
    #: entries dropped by the LRU bound (streams + placements)
    evictions: int = 0

    @property
    def invalidations(self) -> int:
        """Total version-change invalidations, either tier."""
        return self.invalidations_coarse + self.invalidations_fine

    @property
    def hits(self) -> int:
        return self.stream_hits + self.roots_hits + self.placement_hits

    @property
    def misses(self) -> int:
        return self.stream_misses + self.roots_misses + self.placement_misses

    @property
    def hit_rate(self) -> float:
        """Overall hit rate in [0, 1]; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "stream_hits": self.stream_hits,
            "stream_misses": self.stream_misses,
            "roots_hits": self.roots_hits,
            "roots_misses": self.roots_misses,
            "placement_hits": self.placement_hits,
            "placement_misses": self.placement_misses,
            "invalidations": self.invalidations,
            "invalidations_coarse": self.invalidations_coarse,
            "invalidations_fine": self.invalidations_fine,
            "entries_preserved": self.entries_preserved,
            "entries_dropped": self.entries_dropped,
            "evictions": self.evictions,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


class _RootPool:
    """One cached global-root pool, grouped by declaring type.

    ``groups`` maps a declaring type's full name to its scored root
    expressions; ``missing`` names types whose groups must be
    regenerated before the pool can be served flat (set by fine-grained
    invalidation — a mutated type may have gained its first static
    member, so every mutated name lands here, grouped or not).  ``flat``
    memoises the concatenation in current registration order, so the
    served pool is byte-for-byte the order a cold engine would build.
    """

    __slots__ = ("groups", "missing", "flat")

    def __init__(self, groups: Dict[str, List[Scored]]) -> None:
        self.groups = groups
        self.missing: set = set()
        self.flat: Optional[List[Scored]] = None


class CompletionCache:
    """Version-synchronised cross-query memo for one engine.

    ``max_streams`` / ``max_placements`` bound the two LRU maps; the
    root pools are at most two entries (one per depth flag) and are
    never evicted.  ``fine=False`` disables footprint tracking and
    restores unconditional clear-on-mutation (the bench harness uses
    this to measure the coarse baseline).
    """

    def __init__(
        self,
        max_streams: int = 512,
        max_placements: int = 8192,
        fine: bool = True,
    ) -> None:
        self.max_streams = max_streams
        self.max_placements = max_placements
        self.fine = fine
        self.stats = CacheStats()
        self._version: Optional[int] = None
        self._streams: "OrderedDict[Hashable, SharedStream]" = OrderedDict()
        self._stream_fp: Dict[Hashable, Footprint] = {}
        self._roots: Dict[Hashable, _RootPool] = {}
        self._placements: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._placement_fp: Dict[Hashable, Footprint] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def _sync(self, ts: TypeSystem) -> None:
        """Reconcile with the type system's version.  Caller holds the
        lock.  Fine-grained when the mutation window is fully
        member-level, coarse otherwise."""
        if self._version == ts.version:
            return
        populated = bool(self._streams or self._roots or self._placements)
        mutated = (
            ts.mutations_since(self._version)
            if self.fine and self._version is not None and populated
            else None
        )
        if mutated is None:
            if self._version is not None and populated:
                self.stats.invalidations_coarse += 1
            self._streams.clear()
            self._stream_fp.clear()
            self._roots.clear()
            self._placements.clear()
            self._placement_fp.clear()
        else:
            self._invalidate_fine(ts, mutated)
        self._version = ts.version

    def _invalidate_fine(
        self, ts: TypeSystem, mutated: FrozenSet[str]
    ) -> None:
        """Drop exactly the entries a member-level mutation window can
        have affected.  Caller holds the lock.

        The accepting half of the drop test only fires for types whose
        *method list* changed inside the window: field and property
        edits cannot mint unknown-call candidates, so matching their
        declaring type's pre-existing method parameters (``Object``,
        ``string``, ... on almost any type) would needlessly gut the
        accepting entries on every edit."""
        method_mutated = ts.method_mutations_since(self._version)
        params = method_param_types(
            ts, method_mutated if method_mutated is not None else mutated
        )
        dropped = 0
        preserved = 0
        for key in list(self._streams):
            footprint = self._stream_fp.get(key)
            if footprint is None or footprint.affected_by(mutated, params):
                del self._streams[key]
                self._stream_fp.pop(key, None)
                dropped += 1
            else:
                preserved += 1
        for key in list(self._placements):
            footprint = self._placement_fp.get(key)
            if footprint is None or footprint.affected_by(mutated, params):
                del self._placements[key]
                self._placement_fp.pop(key, None)
                dropped += 1
            else:
                preserved += 1
        for pool in self._roots.values():
            # a static root's score depends only on its declaring type
            # (one dot off a TypeLiteral), so the raw mutated set — not
            # the widened one — names every group that can change
            for name in mutated:
                if pool.groups.pop(name, None) is not None:
                    dropped += 1
            preserved += len(pool.groups)
            pool.missing |= set(mutated)
            pool.flat = None
        self.stats.invalidations_fine += 1
        self.stats.entries_dropped += dropped
        self.stats.entries_preserved += preserved

    def clear(self) -> None:
        """Forget every cached entry (stats are kept)."""
        with self._lock:
            self._streams.clear()
            self._stream_fp.clear()
            self._roots.clear()
            self._placements.clear()
            self._placement_fp.clear()
            self._version = None

    # ------------------------------------------------------------------
    # the three memo kinds
    # ------------------------------------------------------------------
    def stream(
        self,
        ts: TypeSystem,
        key: Hashable,
        make: Callable[[], Iterable[Scored]],
        footprint: Optional[Callable[[], Footprint]] = None,
    ) -> Tuple[SharedStream, bool]:
        """The shared re-playable stream under ``key``, creating it from
        ``make()`` on a miss.  Returns ``(stream, was_hit)``.

        ``footprint`` is evaluated once, on the miss, to record the
        entry's dependency footprint; omitted (or returning ``None``)
        the entry is treated as universe-wide and dropped on every
        fine-grained invalidation.

        A stream whose underlying generator raised is replaced rather
        than replayed (its error would otherwise re-raise forever, even
        after the cause — say, a transient oracle failure — is gone).
        """
        with self._lock:
            self._sync(ts)
            shared = self._streams.get(key)
            if shared is not None and not shared.broken:
                self._streams.move_to_end(key)
                self.stats.stream_hits += 1
                return shared, True
            self.stats.stream_misses += 1
            shared = SharedStream(make())
            self._streams[key] = shared
            self._stream_fp[key] = (
                footprint() if footprint is not None and self.fine else None
            )
            while len(self._streams) > self.max_streams:
                evicted, _ = self._streams.popitem(last=False)
                self._stream_fp.pop(evicted, None)
                self.stats.evictions += 1
            return shared, False

    def peek(
        self, ts: TypeSystem, key: Hashable
    ) -> Optional[SharedStream]:
        """The shared stream under ``key`` if present and healthy, else
        ``None`` — a read-only probe that never creates an entry.

        Traced queries use this: they may *replay* a stream some earlier
        untraced query populated (marked as a cache hit in the trace),
        but on a miss they run privately and must not publish streams
        containing tracer wrappers.
        """
        with self._lock:
            self._sync(ts)
            shared = self._streams.get(key)
            if shared is not None and not shared.broken:
                self._streams.move_to_end(key)
                self.stats.stream_hits += 1
                return shared
            self.stats.stream_misses += 1
            return None

    def global_roots(
        self,
        ts: TypeSystem,
        key: Hashable,
        make_groups: Callable[[], Dict[str, List[Scored]]],
        make_missing: Optional[
            Callable[[Iterable[str]], Dict[str, List[Scored]]]
        ] = None,
    ) -> List[Scored]:
        """The scored global chain-root pool under ``key`` (the pool is
        returned by reference; callers must not mutate it).

        ``make_groups`` builds the whole pool grouped by declaring-type
        full name; ``make_missing`` regenerates just the named groups
        after a fine-grained invalidation (falling back to a full
        rebuild when not supplied).  The flat pool is always served in
        current registration order — identical to what a cold engine
        would enumerate.
        """
        with self._lock:
            self._sync(ts)
            pool = self._roots.get(key)
            if pool is not None and pool.missing and make_missing is None:
                pool = None  # cannot patch: rebuild below
            if pool is not None:
                if pool.missing:
                    self.stats.roots_misses += 1
                    regenerated = make_missing(sorted(pool.missing))
                    for name, group in regenerated.items():
                        if group:
                            pool.groups[name] = group
                        else:
                            pool.groups.pop(name, None)
                    pool.missing.clear()
                    pool.flat = None
                else:
                    self.stats.roots_hits += 1
                if pool.flat is None:
                    pool.flat = self._flatten(ts, pool)
                return pool.flat
            self.stats.roots_misses += 1
            pool = _RootPool(make_groups())
            self._roots[key] = pool
            pool.flat = self._flatten(ts, pool)
            return pool.flat

    @staticmethod
    def _flatten(ts: TypeSystem, pool: _RootPool) -> List[Scored]:
        flat: List[Scored] = []
        for typedef in ts.all_types():
            group = pool.groups.get(typedef.full_name)
            if group:
                flat.extend(group)
        return flat

    def placement(
        self,
        ts: TypeSystem,
        key: Hashable,
        compute: Callable[[], Any],
        footprint: Optional[Callable[[], Footprint]] = None,
    ) -> Any:
        """The memoised placement result under ``key`` (which may
        legitimately be ``None`` — "no valid placement" is cached too).
        ``footprint`` works as in :meth:`stream`."""
        with self._lock:
            self._sync(ts)
            value = self._placements.get(key, _MISSING)
            if value is not _MISSING:
                self._placements.move_to_end(key)
                self.stats.placement_hits += 1
                return value
        # compute outside the lock: placement search can recurse into the
        # ranker and is the one memo whose maker does real work eagerly
        value = compute()
        with self._lock:
            if self._version == ts.version:
                self.stats.placement_misses += 1
                self._placements[key] = value
                self._placement_fp[key] = (
                    footprint()
                    if footprint is not None and self.fine else None
                )
                while len(self._placements) > self.max_placements:
                    evicted, _ = self._placements.popitem(last=False)
                    self._placement_fp.pop(evicted, None)
                    self.stats.evictions += 1
        return value

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def entry_footprints(self) -> List[Footprint]:
        """A snapshot of every live entry's dependency footprint —
        streams and placements as recorded (``None`` = universe-wide),
        root-pool groups as singleton reads of their declaring type.
        Feeds the RA103 blast-radius lint and ``impact()`` cache
        estimates."""
        with self._lock:
            footprints: List[Footprint] = [
                self._stream_fp.get(key) for key in self._streams
            ]
            footprints.extend(
                self._placement_fp.get(key) for key in self._placements
            )
            for pool in self._roots.values():
                footprints.extend(
                    QueryFootprint(reads=frozenset((name,)))
                    for name in pool.groups
                )
            return footprints

    def root_pool_groups(self) -> Dict[Hashable, int]:
        """Live group count per root pool key (test introspection)."""
        with self._lock:
            return {
                key: len(pool.groups) for key, pool in self._roots.items()
            }

    def snapshot(self) -> Dict[str, float]:
        """Stats plus current sizes, for ``:cache`` and the bench
        harness."""
        with self._lock:
            data = self.stats.to_dict()
            data["streams"] = float(len(self._streams))
            data["root_pools"] = float(len(self._roots))
            data["root_pool_groups"] = float(sum(
                len(pool.groups) for pool in self._roots.values()
            ))
            data["placements"] = float(len(self._placements))
            return data
