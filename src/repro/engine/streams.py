"""Score-ordered lazy stream combinators.

The completion algorithm (Sec. 4.2, Algorithm 1) enumerates completions in
ascending score order without materialising the (potentially infinite)
result set.  These combinators are the machinery: every stream yields
``(score, value)`` pairs with non-decreasing integer scores, and each
combinator preserves that invariant:

* :func:`merge` — lazy k-way merge of sorted streams;
* :class:`Materialized` — memoises a stream for random access;
* :func:`ordered_product` — tuples from several streams in order of total
  score (the "all choices of exactly one completion for each subexpression"
  loop of Algorithm 1);
* :func:`merge_nested` — a sorted outer stream where each item expands to a
  finite batch of results costing at least the item's own score (the "all
  type-correct completions of e using concreteSubs" loop);
* :func:`reorder_with_slack` — restores exact order when a bounded extra
  cost is added to an almost-sorted stream (used for comparison/assignment
  pair terms);
* :func:`best_first` — Dijkstra-style closure for the ``.?*`` suffixes.

Ties are broken by arrival order (a monotone sequence number), which makes
all downstream rankings deterministic.

Every combinator accepts an optional :class:`~repro.engine.budget.QueryBudget`
and charges it one step per unit of internal work (heap pop, frontier
expansion).  When the budget trips, the combinator stops pulling from its
inputs and returns: because every heap drains in score order, the items
already yielded are exactly the best-so-far prefix of the full stream —
truncation never reorders or corrupts results.

The nondecreasing-score promise can be *asserted at runtime* with the
opt-in sanitizer: inside a :func:`sanitize_streams` block every combinator
yields through :func:`check_stream`, which raises
:class:`~repro.errors.StreamInvariantViolation` on the first score that
goes backwards.  The test suite and ``repro lint --sanitize`` run with it
enabled; production queries leave it off.
"""

from __future__ import annotations

import heapq
import threading
from contextlib import contextmanager
from functools import wraps
from itertools import count
from typing import (
    Callable,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import StreamInvariantViolation
from .budget import QueryBudget

T = TypeVar("T")
U = TypeVar("U")

#: A scored item: ``(score, value)``.
Scored = Tuple[int, T]
ScoredIter = Iterator[Scored]


# ----------------------------------------------------------------------
# stream-invariant sanitizer (opt-in; see docs/ANALYSIS.md)
# ----------------------------------------------------------------------
#: when True, every combinator's output is wrapped in a monotonicity
#: check; flipped by :func:`sanitize_streams` (the test suite and the
#: ``repro lint --sanitize`` probes turn it on)
_SANITIZING = False


def sanitizer_active() -> bool:
    """Is the stream-invariant sanitizer currently enabled?"""
    return _SANITIZING


@contextmanager
def sanitize_streams(enabled: bool = True):
    """Enable (or force off) the nondecreasing-score sanitizer.

    While active, every combinator in this module yields through
    :func:`check_stream`, which raises
    :class:`~repro.errors.StreamInvariantViolation` the moment a score
    goes backwards.  Off by default: the check costs one comparison per
    emitted item, and production queries rely on the invariant being
    *tested* rather than re-asserted per item.
    """
    global _SANITIZING
    previous = _SANITIZING
    _SANITIZING = enabled
    try:
        yield
    finally:
        _SANITIZING = previous


def check_stream(name: str, stream: Iterable[Scored]) -> ScoredIter:
    """Yield ``stream`` through, asserting nondecreasing scores.

    Usable directly on any scored iterable (the lint probes and property
    tests do); the combinators below route through it automatically while
    :func:`sanitize_streams` is active.
    """
    previous: Optional[int] = None
    for item in stream:
        score = item[0]
        if previous is not None and score < previous:
            raise StreamInvariantViolation(name, previous, score)
        previous = score
        yield item


def _monotone(fn):
    """Wrap a combinator so its output is checked when sanitizing.

    When the sanitizer is off the original generator is returned as-is —
    zero per-item overhead.
    """

    @wraps(fn)
    def wrapper(*args, **kwargs):
        stream = fn(*args, **kwargs)
        if not _SANITIZING:
            return stream
        return check_stream(fn.__name__, stream)

    return wrapper


def take(stream: Iterable[Scored], n: int) -> List[Scored]:
    """The first ``n`` items of a scored stream."""
    result: List[Scored] = []
    for item in stream:
        result.append(item)
        if len(result) >= n:
            break
    return result


@_monotone
def merge(
    streams: Sequence[Iterable[Scored]],
    budget: Optional[QueryBudget] = None,
) -> ScoredIter:
    """Lazy k-way merge of sorted scored streams."""
    heap: List[Tuple[int, int, Scored, Iterator[Scored]]] = []
    seq = count()
    for stream in streams:
        iterator = iter(stream)
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (first[0], next(seq), first, iterator))
    while heap:
        if budget is not None and not budget.tick():
            return
        _, _, item, iterator = heapq.heappop(heap)
        yield item
        following = next(iterator, None)
        if following is not None:
            heapq.heappush(heap, (following[0], next(seq), following, iterator))


class Materialized(Generic[T]):
    """Random access over a scored stream, pulling lazily and memoising."""

    def __init__(self, stream: Iterable[Scored]) -> None:
        self._iterator = iter(stream)
        self._items: List[Scored] = []
        self._exhausted = False

    def get(self, index: int) -> Optional[Scored]:
        """Item at ``index``, or ``None`` when the stream is shorter."""
        while not self._exhausted and len(self._items) <= index:
            item = next(self._iterator, None)
            if item is None:
                self._exhausted = True
            else:
                self._items.append(item)
        if index < len(self._items):
            return self._items[index]
        return None

    def known_length(self) -> int:
        """Items pulled so far (a lower bound on the true length)."""
        return len(self._items)

    def __iter__(self) -> ScoredIter:
        index = 0
        while True:
            item = self.get(index)
            if item is None:
                return
            yield item
            index += 1


class SharedStream(Generic[T]):
    """A :class:`Materialized` that many queries (and threads) can replay.

    The cross-query cache (:mod:`repro.engine.cache`) hands the same
    ``SharedStream`` to every query asking for the same sub-stream: the
    prefix pulled so far is replayed from memory, and only pulls past the
    known prefix advance the shared underlying iterator.  Pulling is
    serialised by a re-entrant lock — a generator being advanced from two
    batch-sharded threads at once would corrupt its frame.  Lock nesting
    follows strict subexpression containment (a stream only ever pulls
    streams of its own subexpressions), so ordering is acyclic and
    deadlock-free.

    If the underlying iterator raises, the error is remembered and
    re-raised on every later pull past the computed prefix: a stream that
    failed mid-computation must not silently replay as a short stream.
    """

    def __init__(self, stream: Iterable[Scored]) -> None:
        self._iterator = iter(stream)
        self._items: List[Scored] = []
        self._exhausted = False
        self._error: Optional[BaseException] = None
        self._lock = threading.RLock()

    def get(self, index: int) -> Optional[Scored]:
        """Item at ``index``, or ``None`` when the stream is shorter."""
        with self._lock:
            while not self._exhausted and len(self._items) <= index:
                if self._error is not None:
                    raise self._error
                try:
                    item = next(self._iterator)
                except StopIteration:
                    self._exhausted = True
                except BaseException as error:
                    self._error = error
                    raise
                else:
                    self._items.append(item)
            if index < len(self._items):
                return self._items[index]
            return None

    def known_length(self) -> int:
        """Items pulled so far (a lower bound on the true length)."""
        with self._lock:
            return len(self._items)

    @property
    def broken(self) -> bool:
        """Did the underlying iterator raise?  (Broken streams are evicted
        from the cross-query cache rather than replayed.)"""
        return self._error is not None

    def __iter__(self) -> ScoredIter:
        index = 0
        while True:
            item = self.get(index)
            if item is None:
                return
            yield item
            index += 1


@_monotone
def ordered_product(
    streams: Sequence[Materialized],
    budget: Optional[QueryBudget] = None,
) -> Iterator[Tuple[int, tuple]]:
    """Yield ``(total_score, (v1, ..., vk))`` over the cartesian product of
    ``streams`` in non-decreasing total score (frontier search over index
    vectors)."""
    k = len(streams)
    if k == 0:
        yield 0, ()
        return
    origin = (0,) * k
    first = [s.get(0) for s in streams]
    if any(item is None for item in first):
        return
    start_score = sum(item[0] for item in first)  # type: ignore[index]
    heap: List[Tuple[int, Tuple[int, ...]]] = [(start_score, origin)]
    visited = {origin}
    while heap:
        if budget is not None and not budget.tick():
            return
        score, indices = heapq.heappop(heap)
        values = tuple(
            streams[j].get(indices[j])[1] for j in range(k)  # type: ignore[index]
        )
        yield score, values
        for j in range(k):
            successor = indices[:j] + (indices[j] + 1,) + indices[j + 1 :]
            if successor in visited:
                continue
            item = streams[j].get(successor[j])
            if item is None:
                continue
            previous = streams[j].get(indices[j])
            assert previous is not None
            next_score = score - previous[0] + item[0]
            visited.add(successor)
            heapq.heappush(heap, (next_score, successor))


@_monotone
def merge_nested(
    outer: Iterable[Scored],
    expand: Callable[[int, T], Iterable[Tuple[int, U]]],
    budget: Optional[QueryBudget] = None,
) -> Iterator[Tuple[int, U]]:
    """Expand each outer item into results and yield all results globally
    sorted.

    Requires: ``outer`` is sorted, and every result of ``expand(score, v)``
    costs at least ``score`` (costs only grow — true of every ranking term,
    all of which are non-negative).
    """
    heap: List[Tuple[int, int, U]] = []
    seq = count()
    for base, value in outer:
        if budget is not None and not budget.tick():
            return
        while heap and heap[0][0] <= base:
            score, _, result = heapq.heappop(heap)
            yield score, result
        for score, result in expand(base, value):
            assert score >= base, "expand produced a result cheaper than its base"
            heapq.heappush(heap, (score, next(seq), result))
    while heap:
        if budget is not None and not budget.tick():
            return
        score, _, result = heapq.heappop(heap)
        yield score, result


@_monotone
def reorder_with_slack(
    stream: Iterable[Tuple[int, int, T]],
    slack: int,
    budget: Optional[QueryBudget] = None,
) -> ScoredIter:
    """Restore exact order for an almost-sorted stream.

    ``stream`` yields ``(base, final, value)`` where the *bases* are
    non-decreasing and ``base <= final <= base + slack``.  Emits
    ``(final, value)`` in non-decreasing ``final`` order.
    """
    heap: List[Tuple[int, int, T]] = []
    seq = count()
    for base, final, value in stream:
        if budget is not None and not budget.tick():
            return
        assert base <= final <= base + slack, "slack contract violated"
        while heap and heap[0][0] <= base:
            score, _, item = heapq.heappop(heap)
            yield score, item
        heapq.heappush(heap, (final, next(seq), value))
    while heap:
        if budget is not None and not budget.tick():
            return
        score, _, item = heapq.heappop(heap)
        yield score, item


@_monotone
def best_first(
    roots: Iterable[Scored],
    expand: Callable[[int, T], Iterable[Scored]],
    budget: Optional[QueryBudget] = None,
) -> ScoredIter:
    """Dijkstra-style closure: yield roots and everything reachable through
    ``expand`` in non-decreasing score order.

    ``expand(score, value)`` returns successors costing at least ``score``.
    Used for the ``.?*f`` / ``.?*m`` chains, whose completion sets are
    unbounded: callers simply stop pulling after *n* results — or hand in
    a budget, which bounds even a caller that never stops pulling.
    """
    heap: List[Tuple[int, int, T]] = []
    seq = count()
    for score, value in roots:
        heapq.heappush(heap, (score, next(seq), value))
    while heap:
        if budget is not None and not budget.tick():
            return
        score, _, value = heapq.heappop(heap)
        yield score, value
        for next_score, successor in expand(score, value):
            assert next_score >= score, "closure produced a cheaper successor"
            heapq.heappush(heap, (next_score, next(seq), successor))
