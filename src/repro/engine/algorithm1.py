"""A literal transcription of the paper's Algorithm 1 (the naive form).

The paper presents ``AllCompletions`` as: recursively compute the
completion sets of the subexpressions, then *for each score from 0
upwards*, emit every completion of the whole expression whose score equals
that value.  The production engine (:mod:`repro.engine.completer`) replaces
the score loop with lazy best-first machinery; this module keeps the naive
shape — enumerate everything up to a score bound, bucket by score, yield in
order — as an executable specification.

It is exponentially slower (it materialises whole completion sets) and
bounded (a ``max_score`` takes the role of the paper's "called only n
times"), but on any universe where it finishes it must agree with the
production engine — an equivalence the test suite checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..analysis.scope import Context
from ..codemodel.types import TypeDef
from .budget import QueryBudget
from ..lang.ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Unfilled,
    Var,
    is_complete,
)
from ..lang.partial import (
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
)
from .ranking import AbstractTypeOracle, Ranker, RankingConfig


class Algorithm1:
    """The naive completion enumerator.

    Parameters bound the otherwise-infinite sets: ``max_score`` truncates
    the outer score loop, ``max_chain_depth`` the ``.?*`` chains.
    """

    def __init__(
        self,
        context: Context,
        ranking: Optional[RankingConfig] = None,
        abstypes: Optional[AbstractTypeOracle] = None,
        max_score: int = 12,
        max_chain_depth: int = 3,
        budget: Optional[QueryBudget] = None,
    ) -> None:
        self.context = context
        self.ts = context.ts
        self.ranker = Ranker(context, ranking, abstypes)
        self.max_score = max_score
        self.max_chain_depth = max_chain_depth
        self.budget = budget

    # ------------------------------------------------------------------
    # the paper's AllCompletions
    # ------------------------------------------------------------------
    def all_completions(self, pe: Expr) -> Iterator[Tuple[int, Expr]]:
        """Completions in ascending score order (the outer ``foreach score
        in [0, inf)`` loop, truncated at ``max_score``).

        A tripped budget stops both the scoring pass and the emit loop;
        unlike the production engine, the naive enumerator cannot offer a
        best-so-far *prefix* guarantee (it buckets before emitting), so a
        truncated run may miss arbitrary results — it only promises not
        to hang.
        """
        by_score: Dict[int, List[Expr]] = {}
        seen = set()
        budget = self.budget
        for expr in self._completions(pe):
            if budget is not None and not budget.tick():
                break
            key = expr.key()
            if key in seen:
                continue
            seen.add(key)
            score = self.ranker.score(expr)
            if score <= self.max_score:
                by_score.setdefault(score, []).append(expr)
        for score in range(0, self.max_score + 1):
            for expr in by_score.get(score, ()):  # insertion order per level
                if budget is not None and not budget.tick():
                    return
                yield score, expr

    # ------------------------------------------------------------------
    # completion sets (unordered, exhaustive within the bounds)
    # ------------------------------------------------------------------
    def _completions(self, pe: Expr) -> List[Expr]:
        if isinstance(pe, Hole):
            return self._chains(self.context.chain_roots(), methods=True,
                                steps=self.max_chain_depth)
        if isinstance(pe, SuffixHole):
            bases = self._completions(pe.base)
            steps = self.max_chain_depth if pe.star else 1
            return self._chains(bases, methods=pe.methods, steps=steps)
        if isinstance(pe, UnknownCall):
            return self._unknown_calls(pe)
        if isinstance(pe, KnownCall):
            return self._known_calls(pe)
        if isinstance(pe, PartialAssign):
            return self._assignments(pe)
        if isinstance(pe, PartialCompare):
            return self._comparisons(pe)
        if is_complete(pe):
            return [pe]
        raise TypeError("cannot complete {!r}".format(type(pe).__name__))

    def _chains(
        self, roots: List[Expr], methods: bool, steps: int
    ) -> List[Expr]:
        everything = list(roots)
        frontier = list(roots)
        for _ in range(steps):
            next_frontier: List[Expr] = []
            for expr in frontier:
                base_type = expr.type
                if base_type is None:
                    continue
                for member in self.ts.instance_lookups(base_type):
                    next_frontier.append(FieldAccess(expr, member))
                if methods:
                    for method in self.ts.zero_arg_instance_methods(base_type):
                        if method.return_type is not None:
                            next_frontier.append(Call(method, (expr,)))
            everything.extend(next_frontier)
            frontier = next_frontier
        return everything

    def _unknown_calls(self, pe: UnknownCall) -> List[Expr]:
        from itertools import permutations, product

        arg_sets = [self._completions(arg) for arg in pe.args]
        results: List[Expr] = []
        for method in self.ts.all_methods():
            if method.is_constructor:
                continue
            arity = method.arity
            if arity < len(pe.args):
                continue
            for combo in product(*arg_sets):
                for positions in permutations(range(arity), len(combo)):
                    full: List[Expr] = [Unfilled()] * arity
                    for position, value in zip(positions, combo):
                        full[position] = value
                    call = Call(method, tuple(full))
                    if self._call_ok(call):
                        results.append(call)
        return results

    def _call_ok(self, call: Call) -> bool:
        if (
            call.method.is_zero_arg_instance
            and isinstance(call.args[0], Unfilled)
        ):
            return False
        try:
            return (
                self.ranker.call_completion_cost(
                    call.method, [a.type for a in call.args], call.args
                )
                is not None
            )
        except ValueError:  # pragma: no cover - defensive
            return False

    def _known_calls(self, pe: KnownCall) -> List[Expr]:
        from itertools import product

        results: List[Expr] = []
        for method in pe.candidates:
            if method.arity != len(pe.args):
                continue
            arg_sets = [self._completions(arg) for arg in pe.args]
            for combo in product(*arg_sets):
                call = Call(method, tuple(combo))
                if self._call_ok(call):
                    results.append(call)
        return results

    def _assignments(self, pe: PartialAssign) -> List[Expr]:
        results: List[Expr] = []
        for lhs in self._completions(pe.lhs):
            if not isinstance(lhs, (Var, FieldAccess)):
                continue
            if isinstance(lhs, Var) and lhs.is_this:
                continue
            for rhs in self._completions(pe.rhs):
                lhs_type, rhs_type = lhs.type, rhs.type
                if lhs_type is None or rhs_type is None:
                    continue
                if self.ts.implicitly_converts(rhs_type, lhs_type):
                    results.append(Assign(lhs, rhs))
        return results

    def _comparisons(self, pe: PartialCompare) -> List[Expr]:
        results: List[Expr] = []
        for lhs in self._completions(pe.lhs):
            for rhs in self._completions(pe.rhs):
                lhs_type, rhs_type = lhs.type, rhs.type
                if lhs_type is None or rhs_type is None:
                    continue
                if self.ts.comparable(lhs_type, rhs_type):
                    results.append(Compare(lhs, rhs, pe.op))
        return results
