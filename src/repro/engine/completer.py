"""The completion engine (Sec. 4.2, Algorithm 1).

``CompletionEngine.all_completions`` is the paper's ``AllCompletions``: a
generator of well-typed completions of a partial expression in ascending
score order.  Callers pull the top *n*; for ``.?*`` suffixes the underlying
stream is unbounded and exploration is bounded only by the configured chain
depth.

The implementation uses the optimizations the paper describes:

* subexpression scores are computed once (streams memoise, Materialized);
* completions are generated best-first rather than by looping over every
  integer score (``best_first`` / ``merge_nested`` in
  :mod:`repro.engine.streams` deliver the same order);
* the method index narrows unknown-call candidates to methods that can
  accept at least one argument (smallest candidate set wins);
* the reachability index prunes ``.?*`` chains when a target type is known;
* completions of each subexpression are grouped (per tuple) so type checks
  run once per type combination.

On top sits the resilience layer (``docs/RESILIENCE.md``): every query
may carry a :class:`~repro.engine.budget.QueryBudget` (deadline + step
budget + cancellation) that the stream combinators and index traversals
check cooperatively, and the optional subsystems — abstract-type oracle,
method index narrowing, reachability pruning, target-type checks — are
guarded so a failure degrades the query (recorded in
``QueryOutcome.degraded``) instead of aborting it.
"""

from __future__ import annotations

import copy
import enum
import time
from dataclasses import astuple, dataclass, field, replace
from itertools import islice
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..analysis.scope import Context
from ..deprecation import warn_deprecated
from ..obs.attribution import ScoreBreakdown
from ..obs.metrics import DEFAULT_BOUNDS, Metrics
from ..obs.runlog import RunLog
from ..obs.trace import Span, Tracer
from ..testing import faults
from ..codemodel.members import Method
from ..codemodel.types import TypeDef
from ..codemodel.typesystem import TypeSystem
from ..lang.ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Unfilled,
    Var,
    is_complete,
    iter_subtree,
)
from ..lang.partial import (
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
)
from .budget import CancellationToken, QueryBudget
from .cache import CompletionCache, context_signature
from .index import MethodIndex, ReachabilityIndex
from .ranking import AbstractTypeOracle, Ranker, RankingConfig
from .streams import (
    Materialized,
    Scored,
    best_first,
    merge,
    merge_nested,
    ordered_product,
    reorder_with_slack,
)


@dataclass
class EngineConfig:
    """Tunables of the completion engine.

    The bounds exist because some completion streams are infinite (the
    paper's generator "will usually continue producing more completions
    forever"): ``max_chain_depth`` bounds lookup chains, and the two
    candidate caps bound how many subexpression completions feed the
    cartesian stages.  When a cap truncates a search, lower-ranked
    completions are dropped — raise the caps to explore deeper.
    """

    ranking: RankingConfig = field(default_factory=RankingConfig)
    #: maximum lookups a `.?*f` / `.?*m` / `?` chain may add
    max_chain_depth: int = 3
    #: maximum argument tuples expanded per unknown/known call query
    max_tuple_candidates: int = 2000
    #: maximum completions considered per side of an assignment/comparison
    max_side_candidates: int = 500
    #: prune chains with the reachability index when a target type is known
    use_reachability: bool = True
    #: allow completions like ``Document.OnDeserialization(0, size)`` where
    #: the receiver slot itself is left ``0`` (the paper permits any unfilled
    #: argument position)
    allow_unfilled_receiver: bool = True
    #: extension: let unknown-call queries complete to constructors
    #: (``new T(...)``) — "the version used for our experiments does not
    #: generate constructor calls when asked for an unknown method"
    generate_constructors: bool = False
    #: prove provably-empty queries empty before searching (see
    #: :mod:`repro.analysis.preflight`): ``complete_query`` then returns
    #: an empty outcome without expanding a single stream
    preflight: bool = True
    #: memoise root pools, sub-streams, and argument placements across
    #: queries (see :mod:`repro.engine.cache` and docs/PERFORMANCE.md);
    #: budgeted and oracle-backed queries bypass the cache automatically
    enable_cache: bool = True
    #: invalidate the cache selectively on member-level TypeSystem
    #: mutations using per-entry dependency footprints
    #: (:mod:`repro.analysis.deps`); off = always clear coarsely on any
    #: mutation, the pre-dependency-analysis behaviour
    fine_invalidation: bool = True
    #: trace every query with a :class:`~repro.obs.trace.Tracer` (span
    #: timings + counters attached as ``QueryOutcome.trace``); off by
    #: default — disabled tracing costs nothing on the query path.
    #: Never part of the cache key: tracing cannot change results.
    trace: bool = False


class Completion(NamedTuple):
    """One ranked completion.

    ``breakdown`` is ``None`` on the ordinary query path; the
    attribution APIs (:meth:`CompletionEngine.explain`, the CLI's
    ``--explain``) return copies with a
    :class:`~repro.obs.attribution.ScoreBreakdown` attached whose terms
    sum to ``score``.
    """

    score: int
    expr: Expr
    breakdown: Optional[ScoreBreakdown] = None


class QueryStatus(enum.Enum):
    """How a query concluded — the one field consolidating the legacy
    ``QueryOutcome.truncated`` / ``.unsatisfiable`` flags.

    ``OK`` also covers an empty-but-complete answer; the three
    truncation members carry the same wire values the budget layer uses
    (``docs/RESILIENCE.md``), and ``UNSATISFIABLE`` means pre-flight
    proved the query empty and the search never ran
    (``docs/ANALYSIS.md``).
    """

    OK = "ok"
    TIMEOUT = "timeout"
    BUDGET = "budget"
    CANCELLED = "cancelled"
    UNSATISFIABLE = "unsatisfiable"

    @classmethod
    def from_truncation(cls, reason: Optional[str]) -> "QueryStatus":
        """Map a budget trip reason (or ``None``) to a status."""
        return cls.OK if reason is None else cls(reason)

    @property
    def truncation(self) -> Optional[str]:
        """The budget trip reason, or ``None`` when not truncated."""
        value = self.value
        return value if self in _TRUNCATED_STATUSES else None

    @property
    def is_truncated(self) -> bool:
        return self in _TRUNCATED_STATUSES


_TRUNCATED_STATUSES = frozenset(
    {QueryStatus.TIMEOUT, QueryStatus.BUDGET, QueryStatus.CANCELLED}
)


class QueryOutcome:
    """The full result of a budgeted query.

    ``status`` says how the query concluded (:class:`QueryStatus`):
    complete, truncated by its budget (``completions`` is then the
    best-so-far prefix), or proven empty by pre-flight analysis
    (``preflight_report`` carries the RA020/RA023 proof and ``steps``
    stays 0).  ``degraded`` names the optional features that failed and
    were neutralised during ranking (see :class:`Ranker`).  ``trace``
    is the exported span list when the query ran with tracing on
    (``None`` otherwise; see ``docs/OBSERVABILITY.md``).

    The pre-facade spellings — ``.truncated``, ``.unsatisfiable``,
    ``.preflight`` — remain as read-only properties that emit a
    ``DeprecationWarning``.
    """

    def __init__(
        self,
        completions: List[Completion],
        status: QueryStatus = QueryStatus.OK,
        elapsed_ms: float = 0.0,
        steps: int = 0,
        degraded: Optional[Set[str]] = None,
        preflight_report: Optional[object] = None,
        cached: bool = False,
        trace: Optional[List[dict]] = None,
    ) -> None:
        self.completions = completions
        self.status = status
        self.elapsed_ms = elapsed_ms
        self.steps = steps
        self.degraded: Set[str] = degraded if degraded is not None else set()
        self.preflight_report = preflight_report
        #: the whole result stream was replayed from the cross-query
        #: cache (``steps`` is then the cost of the replay: usually 0)
        self.cached = cached
        self.trace = trace

    # -- deprecated spellings (the facade consolidated these) ----------
    @property
    def truncated(self) -> Optional[str]:
        warn_deprecated("QueryOutcome.truncated",
                        "QueryOutcome.status.truncation")
        return self.status.truncation

    @property
    def unsatisfiable(self) -> bool:
        warn_deprecated("QueryOutcome.unsatisfiable",
                        "QueryOutcome.status is QueryStatus.UNSATISFIABLE")
        return self.status is QueryStatus.UNSATISFIABLE

    @property
    def preflight(self) -> Optional[object]:
        warn_deprecated("QueryOutcome.preflight",
                        "QueryOutcome.preflight_report")
        return self.preflight_report

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryOutcome):
            return NotImplemented
        return (
            self.completions == other.completions
            and self.status == other.status
            and self.elapsed_ms == other.elapsed_ms
            and self.steps == other.steps
            and self.degraded == other.degraded
            and self.cached == other.cached
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("QueryOutcome({} completions, status={}, steps={}, "
                "cached={})".format(len(self.completions), self.status.name,
                                    self.steps, self.cached))


@dataclass
class CompletionRequest:
    """One query of a :meth:`CompletionEngine.complete_many` batch.

    Budget *parameters* rather than a :class:`QueryBudget` instance: the
    budget starts its clock at construction, so the engine builds it when
    the query actually runs — not when the batch is assembled (under a
    thread pool the two can be far apart).
    """

    pe: Expr
    context: Context
    n: int = 10
    abstypes: Optional[AbstractTypeOracle] = None
    expected_type: Optional[TypeDef] = None
    keyword: Optional[str] = None
    timeout_ms: Optional[float] = None
    max_steps: Optional[int] = None
    token: Optional[CancellationToken] = None
    #: per-request tracing override (None = follow ``EngineConfig.trace``)
    trace: Optional[bool] = None

    def make_budget(self) -> Optional[QueryBudget]:
        if (
            self.timeout_ms is None
            and self.max_steps is None
            and self.token is None
        ):
            return None
        return QueryBudget(
            deadline_ms=self.timeout_ms,
            max_steps=self.max_steps,
            token=self.token,
        )


class CompletionEngine:
    """Completes partial expressions against a library universe.

    The engine is long-lived (it owns the method/reachability indexes built
    from the type system); per-query state — scope context, abstract-type
    oracle, expected result type — is passed to each call.
    """

    def __init__(
        self,
        ts: TypeSystem,
        config: Optional[EngineConfig] = None,
        index: Optional[MethodIndex] = None,
        reachability: Optional[ReachabilityIndex] = None,
        cache: Optional[CompletionCache] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.ts = ts
        self.config = config or EngineConfig()
        self.index = index or MethodIndex(ts)
        self.reachability = reachability or ReachabilityIndex(
            ts, max_depth=self.config.max_chain_depth + 1
        )
        self.cache = cache or (
            CompletionCache(fine=self.config.fine_invalidation)
            if self.config.enable_cache else None
        )
        #: lazily (re)built whole-universe dependency graph backing the
        #: cache's footprints and the ``impact()`` surface
        self._dep_graph = None
        #: engine-wide observability counters and histograms (always on
        #: — per-query cost is a handful of dict increments); metric
        #: names are listed in docs/OBSERVABILITY.md
        self.metrics = metrics or Metrics()
        #: structured run log (:mod:`repro.obs.runlog`): when attached,
        #: every finished query appends one ``kind == "query"`` record
        #: (with its span tree when traced) and ``complete_many``
        #: records batch events; None = off, zero cost
        self.run_log: Optional[RunLog] = None
        # memoised _config_signature: astuple deep-copies every config
        # leaf, far too slow to pay on every query's cache key
        self._cfg_sig: Optional[tuple] = None
        self._cfg_sig_snapshot: Optional[EngineConfig] = None

    # ------------------------------------------------------------------
    # dependency analysis plumbing
    # ------------------------------------------------------------------
    def dependency_graph(self):
        """The whole-universe :class:`~repro.analysis.deps.DependencyGraph`
        at the current type-system version, rebuilt lazily when the
        version moves.  Backs cache footprints, ``impact()``, and the
        RA1xx lints."""
        from ..analysis.deps import DependencyGraph

        graph = self._dep_graph
        if graph is None or graph.built_version != self.ts.version:
            graph = DependencyGraph(self.ts)
            self._dep_graph = graph
        return graph

    def impact(self, type_names: Sequence[str]):
        """What editing these types can touch
        (:class:`~repro.analysis.deps.ImpactReport`), including how many
        live cache entries a member-level edit would invalidate."""
        return self.dependency_graph().impact(type_names, cache=self.cache)

    def _footprint(self, pe: Expr, target: Optional[TypeDef] = None):
        """The :class:`~repro.analysis.deps.QueryFootprint` of a
        cacheable stream for ``pe`` — its directly-read signature types,
        the forward closure of any suffix-hole chain seeds, and the
        supertype closure of any unknown-call argument types — or
        ``None`` when the search is universe-wide (hole queries)."""
        from ..analysis.deps import QueryFootprint, footprint_seeds

        parts = footprint_seeds(pe)
        if parts is None:
            return None
        reads, chains, accepting = parts
        if target is not None:
            # the expected type only contributes conversion distances
            # (structural, hence coarse), but keep the direct read so an
            # edit to the target type itself refreshes the entry
            reads = reads | {target.full_name}
        if chains:
            reads = reads | self.dependency_graph().footprint(chains)
        closed_accepting = set()
        for name in accepting:
            typedef = self.ts.try_get(name)
            if typedef is None:
                closed_accepting.add(name)
                continue
            for parent in self.ts.supertype_closure(typedef):
                closed_accepting.add(parent.full_name)
        return QueryFootprint(
            reads=frozenset(reads),
            accepting=frozenset(closed_accepting),
        )

    def _footprint_names(self, names: Iterable[str]):
        """Direct-reads footprint of explicit seed names, no closure —
        placement memos score one pinned method against fixed argument
        types (conversion distances only, structural hence coarse), so
        they can neither gain candidates from new methods nor read
        member lists beyond the named types."""
        from ..analysis.deps import QueryFootprint

        return QueryFootprint(reads=frozenset(names))

    def _root_group_makers(self, ranker: Ranker):
        """Builders for the grouped global-root pool: the full pool and
        the regenerate-named-groups patcher the cache calls after a
        fine-grained invalidation.  Root scores are context-independent
        (one dot off a ``TypeLiteral``), so any query's ranker serves."""
        from ..analysis.scope import global_roots_of

        ts = self.ts

        def make_groups():
            groups = {}
            for typedef in ts.all_types():
                roots = global_roots_of(ts, typedef)
                if roots:
                    groups[typedef.full_name] = [
                        (ranker.score(root), root) for root in roots
                    ]
            return groups

        def make_missing(names):
            regenerated = {}
            for name in names:
                typedef = ts.try_get(name)
                roots = (
                    global_roots_of(ts, typedef)
                    if typedef is not None else []
                )
                regenerated[name] = [
                    (ranker.score(root), root) for root in roots
                ]
            return regenerated

        return make_groups, make_missing

    # ------------------------------------------------------------------
    # cross-query cache plumbing
    # ------------------------------------------------------------------
    def _config_signature(self) -> tuple:
        """The engine tunables as a hashable cache-key component, so a
        config mutated between queries never serves stale entries.
        ``trace`` is normalised out: tracing observes a query without
        changing its results, so traced and untraced queries must share
        cache entries.  The tuple is memoised against a deep snapshot of
        the config — value equality, so in-place mutation of nested
        tunables still invalidates it."""
        if self._cfg_sig is not None and self.config == self._cfg_sig_snapshot:
            return self._cfg_sig
        self._cfg_sig_snapshot = copy.deepcopy(self.config)
        self._cfg_sig = astuple(replace(self.config, trace=False))
        return self._cfg_sig

    def _stream_cache(
        self,
        abstypes: Optional[AbstractTypeOracle],
        budget: Optional[QueryBudget],
    ) -> Optional[CompletionCache]:
        """The cache, iff this query may share streams (see
        :mod:`repro.engine.cache` for why each condition exists)."""
        if self.cache is None or not self.config.enable_cache:
            return None
        if abstypes is not None or budget is not None:
            return None
        if faults.active_plan() is not None:
            return None
        return self.cache

    def _placement_cache(
        self, abstypes: Optional[AbstractTypeOracle]
    ) -> Optional[CompletionCache]:
        """Placement memoisation also works for *budgeted* queries — the
        placement search never ticks a budget — but still needs the
        oracle and fault conditions."""
        if self.cache is None or not self.config.enable_cache:
            return None
        if abstypes is not None or faults.active_plan() is not None:
            return None
        return self.cache

    def _query_key(
        self,
        pe: Expr,
        context: Context,
        expected_type: Optional[TypeDef],
        keyword: Optional[str],
    ) -> tuple:
        return (
            "query",
            pe.key(),
            context_signature(context),
            expected_type.full_name if expected_type is not None else None,
            keyword,
            self._config_signature(),
        )

    def _completion_stream(
        self,
        pe: Expr,
        context: Context,
        abstypes: Optional[AbstractTypeOracle],
        expected_type: Optional[TypeDef],
        keyword: Optional[str],
        budget: Optional[QueryBudget],
        tracer: Optional[Tracer] = None,
    ) -> Tuple[Iterator[Completion], Optional["_Query"], bool]:
        """The deduplicated result stream, via the whole-query cache when
        the query is shareable.  Returns ``(iterator, query, cached)``;
        ``query`` is ``None`` on a warm replay (no per-query state was
        built).

        A *traced* query still replays from the whole-query cache (the
        replay is marked with a ``cache`` span and the outcome's
        ``cached`` flag), but on a miss it runs entirely on private
        streams and does **not** populate the cache: the tracer's
        counting wrappers must never be baked into streams that later,
        untraced queries would replay through.
        """
        cache = self._stream_cache(abstypes, budget)
        if cache is None:
            query = _Query(self, context, abstypes, expected_type, keyword,
                           budget, tracer)
            return query.result_stream(pe), query, False
        key = self._query_key(pe, context, expected_type, keyword)
        if tracer is not None:
            with tracer.span("cache") as span:
                shared = cache.peek(self.ts, key)
                span.set("hit", 1 if shared is not None else 0)
            if shared is not None:
                return iter(shared), None, True
            query = _Query(self, context, abstypes, expected_type, keyword,
                           None, tracer)
            return query.result_stream(pe), query, False
        made: List[_Query] = []

        def make() -> Iterator[Completion]:
            query = _Query(self, context, abstypes, expected_type, keyword,
                           None)
            made.append(query)
            return query.result_stream(pe)

        shared, hit = cache.stream(
            self.ts, key, make,
            footprint=lambda: self._footprint(pe, expected_type),
        )
        return iter(shared), (made[0] if made else None), hit

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def preflight(
        self,
        pe: Expr,
        context: Context,
        expected_type: Optional[TypeDef] = None,
        keyword: Optional[str] = None,
    ):
        """Static pre-flight analysis of a query (no search, no budget).

        Returns a :class:`~repro.analysis.preflight.PreflightReport`:
        proven-empty verdicts (RA020/RA023) plus advisory diagnostics.
        Imported lazily — the analysis layer depends on the engine, not
        the other way around.
        """
        from ..analysis.preflight import preflight_query

        return preflight_query(self, pe, context, expected_type, keyword)

    def _try_preflight(
        self,
        pe: Expr,
        context: Context,
        expected_type: Optional[TypeDef],
        keyword: Optional[str],
    ):
        """Pre-flight guarded like every optional subsystem: an analysis
        failure means "no proof", never a failed query."""
        try:
            return self.preflight(pe, context, expected_type, keyword)
        except Exception:
            return None

    def all_completions(
        self,
        pe: Expr,
        context: Context,
        abstypes: Optional[AbstractTypeOracle] = None,
        expected_type: Optional[TypeDef] = None,
        keyword: Optional[str] = None,
        budget: Optional[QueryBudget] = None,
    ) -> Iterator[Completion]:
        """All completions in ascending score order, deduplicated.

        ``expected_type`` filters results to those producing that type
        (pass ``ts.void_type`` to ask for void-returning calls) — the
        Figure 12 "known return type" mode.

        ``keyword`` is an extension beyond the paper (it notes API
        Explorer's keyword filter as something partial expressions lack):
        when given, unknown-call completions are restricted to methods
        whose name contains the keyword, case-insensitively.

        ``budget`` bounds the query (wall clock, steps, cancellation);
        when it trips, the stream ends after the best-so-far prefix and
        the caller reads ``budget.tripped`` for the reason.
        """
        stream, _query, _cached = self._completion_stream(
            pe, context, abstypes, expected_type, keyword, budget
        )
        return stream

    def complete(
        self,
        pe: Expr,
        context: Context,
        n: int = 10,
        abstypes: Optional[AbstractTypeOracle] = None,
        expected_type: Optional[TypeDef] = None,
        keyword: Optional[str] = None,
        budget: Optional[QueryBudget] = None,
    ) -> List[Completion]:
        """The top ``n`` completions."""
        stream = self.all_completions(
            pe, context, abstypes, expected_type, keyword, budget
        )
        return list(islice(stream, n))

    def complete_query(
        self,
        pe: Expr,
        context: Context,
        n: int = 10,
        abstypes: Optional[AbstractTypeOracle] = None,
        expected_type: Optional[TypeDef] = None,
        keyword: Optional[str] = None,
        budget: Optional[QueryBudget] = None,
        strict: bool = False,
        trace: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
    ) -> QueryOutcome:
        """The top ``n`` completions plus resilience metadata.

        This is the service entry point: it never hangs (given a budget)
        and never raises for an optional-feature failure.  With
        ``strict=True`` a tripped budget raises the matching taxonomy
        error (:class:`QueryTimeout` / :class:`BudgetExhausted` /
        :class:`QueryCancelled`) instead of returning a truncated
        outcome.

        ``trace`` overrides ``EngineConfig.trace`` for this query;
        callers that already opened spans (the session's ``parse``) may
        hand in their own ``tracer`` instead.  Either way the exported
        span list lands in ``QueryOutcome.trace``.
        """
        wanted = trace if trace is not None else self.config.trace
        if tracer is None and wanted:
            tracer = Tracer()
        outcome = self._run_query(
            pe, context, n, abstypes, expected_type, keyword, budget,
            strict, tracer,
        )
        if tracer is not None:
            tracer.finish()
            outcome.trace = tracer.to_dicts()
        self._record_outcome(outcome)
        if self.run_log is not None:
            from ..lang.printer import to_source

            self.run_log.query_event(to_source(pe), outcome)
        return outcome

    def _run_query(
        self,
        pe: Expr,
        context: Context,
        n: int,
        abstypes: Optional[AbstractTypeOracle],
        expected_type: Optional[TypeDef],
        keyword: Optional[str],
        budget: Optional[QueryBudget],
        strict: bool,
        tracer: Optional[Tracer],
    ) -> QueryOutcome:
        started = time.monotonic()
        root_span: Optional[Span] = None
        if tracer is not None:
            root_span = tracer.start("query")
            tracer._stack.append(root_span)
        try:
            if self.config.preflight:
                if tracer is not None:
                    with tracer.span("preflight") as span:
                        report = self._try_preflight(
                            pe, context, expected_type, keyword)
                        if report is not None:
                            span.set("unsatisfiable",
                                     1 if report.unsatisfiable else 0)
                            span.set("diagnostics", len(report.diagnostics))
                else:
                    report = self._try_preflight(
                        pe, context, expected_type, keyword)
                if report is not None and report.unsatisfiable:
                    # proven empty: skip the search entirely — the budget
                    # is never ticked, so ``steps`` stays 0
                    return QueryOutcome(
                        completions=[],
                        status=QueryStatus.UNSATISFIABLE,
                        elapsed_ms=(time.monotonic() - started) * 1000.0,
                        steps=budget.steps if budget is not None else 0,
                        preflight_report=report,
                    )
            stream, query, cached = self._completion_stream(
                pe, context, abstypes, expected_type, keyword, budget, tracer
            )
            if tracer is not None:
                with tracer.span("collect") as span:
                    completions = list(islice(stream, n))
                    span.set("completions", len(completions))
                    span.set("cached", 1 if cached else 0)
            else:
                completions = list(islice(stream, n))
            truncated = budget.tripped if budget is not None else None
            if strict and budget is not None:
                budget.raise_if_tripped()
            if budget is not None:
                elapsed_ms = budget.elapsed_ms()
                steps = budget.steps
            else:
                elapsed_ms = (time.monotonic() - started) * 1000.0
                steps = query.meter.steps if query is not None else 0
            if root_span is not None:
                root_span.set("steps", steps)
                root_span.set("completions", len(completions))
                root_span.set("cached", 1 if cached else 0)
            return QueryOutcome(
                completions=completions,
                status=QueryStatus.from_truncation(truncated),
                elapsed_ms=elapsed_ms,
                steps=steps,
                degraded=set(query.degraded) if query is not None else set(),
                cached=cached,
            )
        finally:
            if tracer is not None and root_span is not None:
                if tracer._stack and tracer._stack[-1] is root_span:
                    tracer._stack.pop()
                tracer.end(root_span)

    def _record_outcome(self, outcome: QueryOutcome) -> None:
        """Tick the engine-wide metrics registry for one finished query
        (docs/OBSERVABILITY.md lists the names)."""
        counters = {
            "queries": 1,
            "completions_returned": len(outcome.completions),
        }
        if outcome.cached:
            counters["queries_cached"] = 1
        if outcome.status is QueryStatus.UNSATISFIABLE:
            counters["queries_unsatisfiable"] = 1
        reason = outcome.status.truncation
        if reason is not None:
            counters["queries_truncated"] = 1
            counters["queries_truncated_{}".format(reason)] = 1
        if outcome.degraded:
            counters["queries_degraded"] = 1
        observations = [
            ("steps_per_query", outcome.steps, DEFAULT_BOUNDS),
            ("elapsed_ms_per_query", outcome.elapsed_ms, _LATENCY_BOUNDS),
        ]
        for completion in outcome.completions:
            observations.append(
                ("completion_depth", _expr_depth(completion.expr),
                 _DEPTH_BOUNDS)
            )
        self.metrics.record(counters, observations)

    def explain(
        self,
        pe: Expr,
        context: Context,
        n: int = 10,
        rank: Optional[int] = None,
        abstypes: Optional[AbstractTypeOracle] = None,
        expected_type: Optional[TypeDef] = None,
        keyword: Optional[str] = None,
        budget: Optional[QueryBudget] = None,
    ) -> List[Completion]:
        """The top ``n`` completions with ranking attribution attached.

        Each returned :class:`Completion` carries a
        :class:`~repro.obs.attribution.ScoreBreakdown` whose per-term
        contributions sum exactly to ``score``.  Breakdowns are
        recomputed from the expression, so a cache-replayed outcome
        explains identically to a cold one (the breakdown is just
        marked ``cached``).  With ``rank`` given, only that 1-based
        rank is returned (empty list when out of range).
        """
        outcome = self.complete_query(
            pe, context, n=n, abstypes=abstypes,
            expected_type=expected_type, keyword=keyword, budget=budget,
        )
        ranker = Ranker(context, self.config.ranking, abstypes)
        explained = [
            completion._replace(breakdown=ScoreBreakdown.from_ranker(
                ranker, completion.expr, cached=outcome.cached))
            for completion in outcome.completions
        ]
        if rank is not None:
            if not 1 <= rank <= len(explained):
                return []
            return [explained[rank - 1]]
        return explained

    def warm(self) -> None:
        """Build the long-lived shared state up front: method and
        reachability indexes, and (when the cache is live) the scored
        global chain-root pool every ``?`` query starts from.  Idempotent
        and cheap when already warm; ``complete_many`` calls it once per
        batch so no query in the batch pays first-query costs."""
        self.index.refresh()
        self.reachability.refresh()
        cache = self._stream_cache(None, None)
        if cache is None:
            return
        context = Context(self.ts)
        ranker = Ranker(context, self.config.ranking)
        make_groups, make_missing = self._root_group_makers(ranker)
        cache.global_roots(
            self.ts, self.config.ranking.depth, make_groups, make_missing
        )

    def complete_many(
        self,
        requests: Sequence[CompletionRequest],
        parallelism: int = 1,
    ) -> List[QueryOutcome]:
        """Run a batch of queries against shared warm state.

        The engine is warmed once, every query shares the cross-query
        cache, and with ``parallelism > 1`` independent queries are
        sharded across a thread pool (each still under its own
        :class:`QueryBudget`, built from the request's budget parameters
        at the moment the query starts).  Outcomes are returned in
        request order.
        """
        requests = list(requests)
        if not requests:
            return []
        self.warm()
        self.metrics.incr("batches")
        self.metrics.observe("batch_size", len(requests))
        if self.run_log is not None:
            self.run_log.event("batch", size=len(requests),
                               parallelism=parallelism)

        def run(request: CompletionRequest) -> QueryOutcome:
            return self.complete_query(
                request.pe,
                request.context,
                n=request.n,
                abstypes=request.abstypes,
                expected_type=request.expected_type,
                keyword=request.keyword,
                budget=request.make_budget(),
                trace=request.trace,
            )

        if parallelism > 1 and len(requests) > 1:
            from concurrent.futures import ThreadPoolExecutor

            workers = min(parallelism, len(requests))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(run, requests))
        else:
            outcomes = [run(request) for request in requests]
        self._annotate_cache_attribution()
        return outcomes

    def _annotate_cache_attribution(self) -> None:
        """Stamp the run-log manifest with the cache's invalidation
        attribution (coarse vs fine, entries preserved) after a batch."""
        if self.run_log is None or self.cache is None:
            return
        snapshot = self.cache.snapshot()
        self.run_log.annotate(cache={
            key: snapshot[key] for key in (
                "invalidations", "invalidations_coarse",
                "invalidations_fine", "entries_preserved",
                "entries_dropped", "hit_rate",
            )
        })

    def cache_stats(self) -> Optional[dict]:
        """Current cross-query cache counters, or ``None`` when the
        cache is disabled."""
        return self.cache.snapshot() if self.cache is not None else None

    def rank_of(
        self,
        pe: Expr,
        context: Context,
        truth: Expr,
        limit: int = 100,
        abstypes: Optional[AbstractTypeOracle] = None,
        expected_type: Optional[TypeDef] = None,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[int]:
        """1-based rank of a known intended expression, or ``None`` when it
        is not among the first ``limit`` completions."""
        truth_key = truth.key()
        stream = self.all_completions(
            pe, context, abstypes, expected_type, budget=budget
        )
        for position, completion in enumerate(islice(stream, limit), start=1):
            if completion.expr.key() == truth_key:
                return position
        return None

    def method_rank(
        self,
        pe: Expr,
        context: Context,
        truth_method: Method,
        limit: int = 100,
        abstypes: Optional[AbstractTypeOracle] = None,
        expected_type: Optional[TypeDef] = None,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[int]:
        """1-based rank of a method among the *distinct methods* suggested
        for an unknown-call query (how the paper counts Fig. 9/Table 1:
        "the algorithm is able to give the correct method in the top 10
        choices")."""
        seen_methods: Set[int] = set()
        stream = self.all_completions(
            pe, context, abstypes, expected_type, budget=budget
        )
        for completion in stream:
            expr = completion.expr
            if not isinstance(expr, Call):
                continue
            if id(expr.method) in seen_methods:
                continue
            seen_methods.add(id(expr.method))
            if expr.method is truth_method:
                return len(seen_methods)
            if len(seen_methods) >= limit:
                return None
        return None


#: elapsed-ms histogram buckets (sub-ms through multi-second queries)
_LATENCY_BOUNDS = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
                   1000.0, 3000.0)
#: completion-depth histogram buckets (chains rarely exceed the
#: configured ``max_chain_depth`` + call nesting)
_DEPTH_BOUNDS = (0, 1, 2, 3, 4, 6, 8)


def _expr_depth(expr: Expr) -> int:
    """Lookup depth of a completion — the number of member lookups
    (field accesses and calls) in the expression tree, the quantity the
    ``completion_depth`` histogram tracks."""
    depth = 0
    for node in iter_subtree(expr):
        if isinstance(node, (FieldAccess, Call)):
            depth += 1
    return depth


def _node_kind(pe: Expr) -> str:
    """A short tag naming the query node for ``expand:<kind>`` spans."""
    if isinstance(pe, Hole):
        return "hole"
    if isinstance(pe, SuffixHole):
        kind = "methods" if pe.methods else "fields"
        return "suffix_star_" + kind if pe.star else "suffix_" + kind
    if isinstance(pe, UnknownCall):
        return "unknown_call"
    if isinstance(pe, KnownCall):
        return "known_call"
    if isinstance(pe, (PartialAssign, Assign)):
        return "assign"
    if isinstance(pe, (PartialCompare, Compare)):
        return "compare"
    return type(pe).__name__.lower()


def _dedup(
    stream: Iterator[Scored], span: Optional[Span] = None
) -> Iterator[Completion]:
    seen: Set[tuple] = set()
    for score, expr in stream:
        key = expr.key()
        if span is not None:
            span.add("in")
        if key in seen:
            if span is not None:
                span.add("duplicates")
            continue
        seen.add(key)
        if span is not None:
            span.add("out")
        yield Completion(score, expr)


class _Query:
    """Per-query state: context, ranker, budget, and the stream dispatcher.

    ``degraded`` is shared with the ranker, so every guarded subsystem
    (oracle, indexes, type checks) records failures into one per-query
    set.
    """

    def __init__(
        self,
        engine: CompletionEngine,
        context: Context,
        abstypes: Optional[AbstractTypeOracle],
        expected_type: Optional[TypeDef],
        keyword: Optional[str] = None,
        budget: Optional[QueryBudget] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.config = engine.config
        self.ts: TypeSystem = engine.ts
        self.context = context
        self.ranker = Ranker(context, engine.config.ranking, abstypes)
        self.expected_type = expected_type
        self.keyword = keyword.lower() if keyword else None
        self.budget = budget
        self.tracer = tracer
        #: what the combinators tick: the real budget when there is one,
        #: else a private unlimited budget so expansion-step counts are
        #: measured (and attributable) on every query
        self.meter = budget if budget is not None else QueryBudget()
        self.degraded = self.ranker.degraded
        #: cross-query memo handles (None = this query must run cold).
        #: A traced query always runs on private streams: the tracer's
        #: counting wrappers must never end up inside a SharedStream
        #: that later untraced queries would replay.  Placement memos
        #: carry no wrapped streams, so they stay on.
        self.cache = (
            None if tracer is not None
            else engine._stream_cache(abstypes, budget)
        )
        self.placements = engine._placement_cache(abstypes)
        if self.cache is not None or self.placements is not None:
            self._ctx_sig = context_signature(context)
            self._cfg_sig = engine._config_signature()

    def result_stream(self, pe: Expr) -> Iterator[Completion]:
        """The query's final stream: dispatch on ``pe``, then dedup."""
        stream = self.stream(pe, self.expected_type)
        if self.tracer is None:
            return _dedup(stream)
        return _dedup(stream, self.tracer.start("dedup"))

    # ------------------------------------------------------------------
    # cached sub-streams
    # ------------------------------------------------------------------
    def _shared(
        self,
        tag: str,
        pe: Expr,
        target: Optional[TypeDef],
        make: Callable[[], Iterable[Scored]],
    ):
        """A re-playable stream for a subexpression, shared across
        queries when caching is on, private otherwise.  Both shapes
        support ``get``/``known_length``/``__iter__``, so they slot into
        ``ordered_product`` interchangeably."""
        if self.cache is None:
            return Materialized(make())
        key = (
            tag,
            pe.key(),
            self._ctx_sig,
            target.full_name if target is not None else None,
            self.keyword,
            self._cfg_sig,
        )
        shared, _hit = self.cache.stream(
            self.ts, key, make,
            footprint=lambda: self.engine._footprint(pe, target),
        )
        return shared

    def _materialized(self, pe: Expr, target: Optional[TypeDef]):
        return self._shared("sub", pe, target, lambda: self.stream(pe, target))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def stream(self, pe: Expr, target: Optional[TypeDef]) -> Iterator[Scored]:
        """Completions of ``pe`` usable where ``target`` is expected
        (``None`` = anywhere), in ascending score order.

        Under tracing, every dispatch — the query root and each
        recursive subexpression — is wrapped in an ``expand:<kind>``
        span counting items yielded, pull time (``busy_ms``), and
        expansion steps charged while the stream was live."""
        if self.tracer is None:
            return self._expand(pe, target)
        meter = self.meter
        return self.tracer.wrap_stream(
            "expand:{}".format(_node_kind(pe)),
            self._expand(pe, target),
            steps=lambda: meter.steps,
        )

    def _expand(self, pe: Expr, target: Optional[TypeDef]) -> Iterator[Scored]:
        if isinstance(pe, Hole):
            return self._chain_stream(
                self._root_items(target),
                methods=True,
                max_steps=self.config.max_chain_depth,
                target=target,
            )
        if isinstance(pe, SuffixHole):
            return self._suffix_stream(pe, target)
        if isinstance(pe, UnknownCall):
            return self._unknown_call_stream(pe, target)
        if isinstance(pe, KnownCall):
            return self._known_call_stream(pe, target)
        if isinstance(pe, PartialAssign):
            assert target is None, "assignments cannot be subexpressions"
            return self._assign_stream(pe)
        if isinstance(pe, PartialCompare):
            assert target is None, "comparisons cannot be subexpressions"
            return self._compare_stream(pe)
        if isinstance(pe, Assign):
            return self._assign_stream(PartialAssign(pe.lhs, pe.rhs))
        if isinstance(pe, Compare):
            return self._compare_stream(PartialCompare(pe.lhs, pe.rhs, pe.op))
        if is_complete(pe):
            return self._singleton(pe, target)
        raise TypeError(
            "cannot complete {!r} nodes".format(type(pe).__name__)
        )

    def _singleton(self, expr: Expr, target: Optional[TypeDef]) -> Iterator[Scored]:
        if not self._fits(expr, target):
            return
        yield self.ranker.score(expr), expr

    def _fits(self, expr: Expr, target: Optional[TypeDef]) -> bool:
        if target is None:
            return True
        expr_type = expr.type
        if expr_type is None:  # Unfilled wildcard fits anywhere
            return True
        try:
            faults.fire("type_check")
            return self.ts.implicitly_converts(expr_type, target)
        except Exception:
            # conservative: an uncheckable candidate is dropped rather
            # than risking a type-incorrect suggestion
            self.degraded.add("type_check")
            return False

    # ------------------------------------------------------------------
    # chains: ?, .?f, .?m, .?*f, .?*m
    # ------------------------------------------------------------------
    def _root_items(self, target: Optional[TypeDef]) -> List[Scored]:
        """Scored chain roots for a ``?`` hole: locals then globals.

        The global pool (static fields and zero-argument static calls of
        *every* visible type — by far the expensive part of a fresh
        context) is shared across queries: its scores depend only on the
        ``depth`` ranking switch, never on the scope.
        """
        if self.tracer is None:
            return self._build_root_items()
        with self.tracer.span("root_pool") as span:
            items = self._build_root_items()
            span.set("roots", len(items))
        return items

    def _build_root_items(self) -> List[Scored]:
        items: List[Scored] = [
            (self.ranker.score(var), var) for var in self.context.local_vars()
        ]
        if self.cache is None:
            for root in self.context.global_roots():
                items.append((self.ranker.score(root), root))
        else:
            make_groups, make_missing = self.engine._root_group_makers(
                self.ranker)
            items.extend(self.cache.global_roots(
                self.ts,
                self.config.ranking.depth,
                make_groups,
                make_missing,
            ))
        return items

    def _suffix_stream(
        self, pe: SuffixHole, target: Optional[TypeDef]
    ) -> Iterator[Scored]:
        roots = list(self._materialized(pe.base, None))
        max_steps = self.config.max_chain_depth if pe.star else 1
        return self._chain_stream(
            roots, methods=pe.methods, max_steps=max_steps, target=target
        )

    def _chain_stream(
        self,
        roots: Sequence[Scored],
        methods: bool,
        max_steps: int,
        target: Optional[TypeDef],
    ) -> Iterator[Scored]:
        """Best-first closure over lookup chains (Dijkstra on expressions)."""
        ts = self.ts
        ranker = self.ranker
        prune = target is not None and self.config.use_reachability

        def expand(score: int, node: Tuple[Expr, int]) -> Iterator[Scored]:
            expr, steps = node
            if steps >= max_steps:
                return
            base_type = expr.type
            if base_type is None:
                return
            remaining = max_steps - steps - 1
            for member in ts.instance_lookups(base_type):
                if prune and not self._can_reach(
                    member.type, target, remaining, methods
                ):
                    continue
                cost = ranker.lookup_step_cost(base_type, member.declaring_type)
                yield score + cost, (FieldAccess(expr, member), steps + 1)
            if methods:
                for method in ts.zero_arg_instance_methods(base_type):
                    if method.return_type is None:
                        continue
                    if prune and not self._can_reach(
                        method.return_type, target, remaining, methods
                    ):
                        continue
                    cost = ranker.lookup_step_cost(
                        base_type, method.declaring_type
                    )
                    yield score + cost, (Call(method, (expr,)), steps + 1)

        seeds = [(score, (expr, 0)) for score, expr in roots]
        for score, (expr, _steps) in best_first(seeds, expand, self.meter):
            if self._fits(expr, target):
                yield score, expr

    def _can_reach(
        self, source: TypeDef, target: TypeDef, within: int, methods: bool
    ) -> bool:
        """Reachability pruning, degrading to *no pruning* (correct but
        slower) when the index fails."""
        try:
            return self.engine.reachability.can_reach(
                source, target, within, methods, self.meter
            )
        except Exception:
            self.degraded.add("reachability")
            return True

    # ------------------------------------------------------------------
    # unknown calls: ?({e1, ..., en})
    # ------------------------------------------------------------------
    def _unknown_call_stream(
        self, pe: UnknownCall, target: Optional[TypeDef]
    ) -> Iterator[Scored]:
        arg_streams = [self._materialized(arg, None) for arg in pe.args]
        tuples = islice(
            ordered_product(arg_streams, self.meter),
            self.config.max_tuple_candidates,
        )

        def expand(base: int, args: tuple) -> List[Scored]:
            return self._methods_for_args(base, args, target)

        return merge_nested(tuples, expand, self.meter)

    def _candidate_methods(self, arg_types: List[Optional[TypeDef]]):
        """The narrowed candidate set, degrading to a full scan of every
        method when the index fails."""
        try:
            return self.engine.index.candidate_methods(arg_types, self.meter)
        except Exception:
            self.degraded.add("method_index")
            return self.engine.index.all_methods()

    def _methods_for_args(
        self, base: int, args: tuple, target: Optional[TypeDef]
    ) -> List[Scored]:
        """All method completions using exactly these argument expressions
        (cheapest argument placement per method)."""
        arg_types = [a.type for a in args]
        results: List[Tuple[int, str, Expr]] = []
        for method in self._candidate_methods(arg_types):
            if method.arity < len(args):
                continue
            if method.is_constructor and not self.config.generate_constructors:
                continue
            if not self._return_matches(method, target):
                continue
            if self.keyword is not None and self.keyword not in method.name.lower():
                continue
            best = self._best_placement(method, args, arg_types)
            if best is not None:
                score, call = best
                results.append((base + score, method.full_name, call))
        results.sort(key=lambda item: (item[0], item[1]))
        return [(score, call) for score, _name, call in results]

    def _best_placement(
        self,
        method: Method,
        args: tuple,
        arg_types: List[Optional[TypeDef]],
    ) -> Optional[Tuple[int, Call]]:
        """Cheapest injective placement of the argument set into the
        method's parameter positions; remaining positions become ``0``.

        The search result — placement cost plus the position vector —
        depends only on the argument *types* (the oracle, the one
        expression-sensitive term, forces a cache bypass), so it is
        memoised across queries and the :class:`Call` is rebuilt around
        the actual argument expressions.
        """
        if self.placements is not None:
            key = (
                "place",
                id(method),
                tuple(
                    t.full_name if t is not None else None for t in arg_types
                ),
                self.context.enclosing_type.full_name
                if self.context.enclosing_type is not None
                else None,
                self._cfg_sig,
            )
            seed_names = {
                p.type.full_name for p in method.all_params()
            }
            if method.declaring_type is not None:
                seed_names.add(method.declaring_type.full_name)
            if method.return_type is not None:
                seed_names.add(method.return_type.full_name)
            seed_names.update(
                t.full_name for t in arg_types if t is not None
            )
            found = self.placements.placement(
                self.ts,
                key,
                lambda: self._placement_search(method, args, arg_types),
                footprint=lambda: self.engine._footprint_names(seed_names),
            )
        else:
            found = self._placement_search(method, args, arg_types)
        if found is None:
            return None
        extra, positions = found
        full_args: List[Expr] = [Unfilled()] * len(method.all_params())
        for position, arg in zip(positions, args):
            full_args[position] = arg
        return extra, Call(method, tuple(full_args))

    def _placement_search(
        self,
        method: Method,
        args: tuple,
        arg_types: List[Optional[TypeDef]],
    ) -> Optional[Tuple[int, Tuple[int, ...]]]:
        """Exhaustive search over injective placements; returns
        ``(cost, positions)`` for the cheapest one, or ``None``."""
        params = method.all_params()
        arity = len(params)
        compatible: List[List[int]] = []
        for arg_type in arg_types:
            positions = []
            for position, param in enumerate(params):
                if arg_type is None or self.ts.implicitly_converts(
                    arg_type, param.type
                ):
                    positions.append(position)
            if not positions:
                return None
            compatible.append(positions)

        best: Optional[Tuple[int, Tuple[int, ...]]] = None
        used: List[int] = []

        def assign(arg_index: int) -> None:
            nonlocal best
            if arg_index == len(args):
                full_args: List[Expr] = [Unfilled()] * arity
                for position, arg in zip(used, args):
                    full_args[position] = arg
                placed = tuple(full_args)
                types = [a.type for a in placed]
                if (
                    not method.is_static
                    and types[0] is None
                    and not self.config.allow_unfilled_receiver
                ):
                    return
                extra = self.ranker.call_completion_cost(method, types, placed)
                if extra is None:
                    return
                if best is None or extra < best[0]:
                    best = (extra, tuple(used))
                return
            for position in compatible[arg_index]:
                if position in used:
                    continue
                used.append(position)
                assign(arg_index + 1)
                used.pop()

        assign(0)
        return best

    def _return_matches(self, method: Method, target: Optional[TypeDef]) -> bool:
        if target is None:
            return True
        if target is self.ts.void_type:
            return method.return_type is None
        if method.return_type is None:
            return False
        return self.ts.implicitly_converts(method.return_type, target)

    # ------------------------------------------------------------------
    # known calls: Name(e1, ..., en) with partial arguments
    # ------------------------------------------------------------------
    def _known_call_stream(
        self, pe: KnownCall, target: Optional[TypeDef]
    ) -> Iterator[Scored]:
        per_candidate: List[Iterator[Scored]] = []
        for method in pe.candidates:
            if method.arity != len(pe.args):
                continue
            if not self._return_matches(method, target):
                continue
            per_candidate.append(self._candidate_call_stream(method, pe.args))
        return merge(per_candidate, self.meter)

    def _candidate_call_stream(
        self, method: Method, args: Tuple[Expr, ...]
    ) -> Iterator[Scored]:
        params = method.all_params()
        arg_streams = [
            self._materialized(arg, param.type)
            for arg, param in zip(args, params)
        ]
        tuples = islice(
            ordered_product(arg_streams, self.meter),
            self.config.max_tuple_candidates,
        )

        def expand(base: int, values: tuple) -> List[Scored]:
            types = [v.type for v in values]
            extra = self.ranker.call_completion_cost(method, types, values)
            if extra is None:
                return []
            return [(base + extra, Call(method, values))]

        return merge_nested(tuples, expand, self.meter)

    # ------------------------------------------------------------------
    # binary expressions
    # ------------------------------------------------------------------
    def _side_stream(self, pe: Expr):
        # a distinct tag: side streams are truncated at
        # ``max_side_candidates`` and must never be confused with the
        # unbounded "sub" streams of the same subexpression
        return self._shared(
            "side",
            pe,
            None,
            lambda: islice(
                self.stream(pe, None), self.config.max_side_candidates
            ),
        )

    def _assign_stream(self, pe: PartialAssign) -> Iterator[Scored]:
        left = self._side_stream(pe.lhs)
        right = self._side_stream(pe.rhs)
        slack = Ranker.PAIR_TERM_SLACK
        ts = self.ts

        def pairs() -> Iterator[Tuple[int, int, Expr]]:
            for base, (lhs, rhs) in ordered_product([left, right], self.meter):
                if not _is_lvalue(lhs):
                    continue
                lhs_type, rhs_type = lhs.type, rhs.type
                if (
                    lhs_type is not None
                    and rhs_type is not None
                    and not ts.implicitly_converts(rhs_type, lhs_type)
                ):
                    continue
                extra = self.ranker.assign_pair_cost(lhs, rhs)
                if extra > slack:
                    continue
                yield base, base + extra, Assign(lhs, rhs)

        return reorder_with_slack(pairs(), slack, self.meter)

    def _compare_stream(self, pe: PartialCompare) -> Iterator[Scored]:
        left = self._side_stream(pe.lhs)
        right = self._side_stream(pe.rhs)
        slack = Ranker.PAIR_TERM_SLACK
        ts = self.ts

        def pairs() -> Iterator[Tuple[int, int, Expr]]:
            for base, (lhs, rhs) in ordered_product([left, right], self.meter):
                lhs_type, rhs_type = lhs.type, rhs.type
                if (
                    lhs_type is not None
                    and rhs_type is not None
                    and not ts.comparable(lhs_type, rhs_type)
                ):
                    continue
                extra = self.ranker.compare_pair_cost(lhs, rhs)
                if extra > slack:
                    continue
                yield base, base + extra, Compare(lhs, rhs, pe.op)

        return reorder_with_slack(pairs(), slack, self.meter)


def _is_lvalue(expr: Expr) -> bool:
    """Assignment targets: locals and (non-static-qualifier) field lookups."""
    if isinstance(expr, Var):
        return not expr.is_this
    return isinstance(expr, FieldAccess)
