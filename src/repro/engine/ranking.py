"""The ranking function (Figure 7 of the paper).

Lower scores are better.  Every term is non-negative, so partial sums are
lower bounds usable for pruning — the property the lazy generators in
:mod:`repro.engine.completer` rely on.

Terms (Sec. 4.1), each behind a :class:`RankingConfig` switch so the Table 2
sensitivity analysis can run every ``-x`` / ``+x`` variant:

* ``type_distance`` (t): ``td(type(arg), type(param))`` per argument;
* ``abstract_types`` (a): +1 per argument whose abstract type differs from
  the parameter's (undefined counts as different);
* ``depth`` (d): 2 x the number of dots;
* ``in_scope_static`` (s): +1 per call unless it is a static method of the
  enclosing type;
* ``namespaces`` (n): ``3 - min(3, |common namespace prefix|)`` over the
  non-primitive argument types and the declaring class (similarity 0 when
  fewer than two non-primitive arguments);
* ``matching_name`` (m): +3 on comparisons whose sides do not end in
  same-named lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Set

from ..analysis.scope import Context
from ..testing import faults
from ..codemodel.members import Method
from ..codemodel.types import TypeDef
from ..codemodel.typesystem import TypeSystem
from ..lang.ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
    final_lookup_name,
)

#: cost of one dot (a lookup or an instance-call receiver)
DOT_COST = 2
#: penalty for comparisons whose sides end in differently-named lookups
NAME_MISMATCH_COST = 3
#: cap on the namespace similarity (and hence on the namespace term)
NAMESPACE_CAP = 3


@dataclass(frozen=True)
class RankingConfig:
    """Feature switches for the ranking terms (Table 2's n/s/d/m/t/a)."""

    namespaces: bool = True
    in_scope_static: bool = True
    depth: bool = True
    matching_name: bool = True
    type_distance: bool = True
    abstract_types: bool = True

    _LETTERS = {
        "n": "namespaces",
        "s": "in_scope_static",
        "d": "depth",
        "m": "matching_name",
        "t": "type_distance",
        "a": "abstract_types",
    }

    @classmethod
    def all_features(cls) -> "RankingConfig":
        return cls()

    @classmethod
    def without(cls, letters: str) -> "RankingConfig":
        """E.g. ``RankingConfig.without("at")`` is the paper's ``-at``."""
        config = cls()
        for letter in letters:
            config = replace(config, **{cls._LETTERS[letter]: False})
        return config

    @classmethod
    def only(cls, letters: str) -> "RankingConfig":
        """E.g. ``RankingConfig.only("d")`` is the paper's ``+d``."""
        config = cls(
            namespaces=False,
            in_scope_static=False,
            depth=False,
            matching_name=False,
            type_distance=False,
            abstract_types=False,
        )
        for letter in letters:
            config = replace(config, **{cls._LETTERS[letter]: True})
        return config

    def label(self) -> str:
        """The paper's column label, e.g. ``All``, ``-at``, ``+d``."""
        off = [l for l, attr in self._LETTERS.items() if not getattr(self, attr)]
        if not off:
            return "All"
        if len(off) < 3:
            return "-" + "".join(sorted(off))
        on = [l for l, attr in self._LETTERS.items() if getattr(self, attr)]
        return "+" + "".join(sorted(on))


class AbstractTypeOracle:
    """Interface the ranker uses to ask abstract-type questions.

    The default implementation knows nothing: every abstract type is
    undefined (and undefined abstract types count as mismatching, per the
    Figure 7 caption).
    """

    def of_expr(self, expr: Expr) -> Optional[int]:
        return None

    def of_param(
        self, method: Method, index: int, receiver_type: Optional[TypeDef]
    ) -> Optional[int]:
        return None


NULL_ORACLE = AbstractTypeOracle()


class Ranker:
    """Scores complete expressions (possibly containing ``Unfilled``).

    Also exposes the incremental per-term helpers the completion engine uses
    to cost candidates without re-walking whole trees.

    The optional signals (the abstract-type oracle, the namespace term,
    the same-name term) run behind guards: when one throws — broken
    oracle, injected fault, anything — the ranker substitutes the term's
    *neutral* score (exactly what a know-nothing oracle would produce),
    records the feature name in :attr:`degraded`, and the query carries
    on.  One broken signal degrades the ranking; it never kills a query.
    """

    def __init__(
        self,
        context: Context,
        config: Optional[RankingConfig] = None,
        abstypes: Optional[AbstractTypeOracle] = None,
    ) -> None:
        self.context = context
        self.ts: TypeSystem = context.ts
        self.config = config or RankingConfig()
        self.abstypes = abstypes or NULL_ORACLE
        #: names of features that failed this query and were neutralised
        self.degraded: Set[str] = set()

    # ------------------------------------------------------------------
    # full recursive score
    # ------------------------------------------------------------------
    def score(self, expr: Expr) -> int:
        """The Figure 7 score of a complete expression."""
        if isinstance(expr, (Var, Literal, Unfilled, TypeLiteral)):
            return 0
        if isinstance(expr, FieldAccess):
            return self._score_field_access(expr)
        if isinstance(expr, Call):
            return self._score_call(expr)
        if isinstance(expr, Assign):
            base = self.score(expr.lhs) + self.score(expr.rhs)
            return base + self.assign_pair_cost(expr.lhs, expr.rhs)
        if isinstance(expr, Compare):
            base = self.score(expr.lhs) + self.score(expr.rhs)
            return base + self.compare_pair_cost(expr.lhs, expr.rhs)
        raise TypeError("cannot score {!r}".format(type(expr).__name__))

    def _score_field_access(self, expr: FieldAccess) -> int:
        cost = DOT_COST if self.config.depth else 0
        if not isinstance(expr.base, TypeLiteral):
            cost += self.score(expr.base)
            cost += self.lookup_base_distance(expr.base.type, expr.member.declaring_type)
        return cost

    def _score_call(self, expr: Call) -> int:
        method = expr.method
        # Zero-argument calls are property-like navigation steps, scored as
        # lookups: the paper counts dots("this.bar.ToBaz()") = 2, treating
        # the call as one more dot, and allows zero-argument methods in
        # chains "because they are often used in place of properties".
        if method.is_zero_arg_instance:
            receiver = expr.args[0]
            return self.score(receiver) + self.lookup_step_cost(
                receiver.type, method.declaring_type
            )
        if method.is_static and not method.params:
            # a global chain root (`Type.Method()`), like a static field
            return DOT_COST if self.config.depth else 0
        cost = 0
        for arg in expr.args:
            cost += self.score(arg)
        extra = self.call_cost(method, [a.type for a in expr.args], expr.args)
        if extra is None:
            # type-incorrect expressions are not rankable; surface loudly
            raise ValueError(
                "scoring a type-incorrect call: {}".format(method.full_name)
            )
        return cost + extra

    # ------------------------------------------------------------------
    # incremental helpers
    # ------------------------------------------------------------------
    def lookup_step_cost(self, base_type: Optional[TypeDef], member_declaring: Optional[TypeDef]) -> int:
        """Cost of appending one lookup to a chain: a dot plus the type
        distance from the base's type to the member's declaring type."""
        cost = DOT_COST if self.config.depth else 0
        cost += self.lookup_base_distance(base_type, member_declaring)
        return cost

    def lookup_base_distance(
        self, base_type: Optional[TypeDef], declaring: Optional[TypeDef]
    ) -> int:
        if not self.config.type_distance:
            return 0
        if base_type is None or declaring is None:
            return 0
        distance = self.ts.type_distance(base_type, declaring)
        return distance or 0

    def call_cost(
        self,
        method: Method,
        arg_types: "list[Optional[TypeDef]]",
        args: "Optional[tuple]" = None,
    ) -> Optional[int]:
        """All call-level terms given the argument types (excluding the
        arguments' own subexpression scores).

        Returns ``None`` when the call does not type-check.  ``args`` (the
        actual expressions) is only needed for the abstract-type term; pass
        ``None`` to cost a call shape without abstract-type information
        about the arguments (every argument then counts as mismatching when
        the feature is on).
        """
        params = method.all_params()
        if len(params) != len(arg_types):
            return None
        cost = 0
        receiver_type = None if method.is_static else arg_types[0]
        for index, (param, arg_type) in enumerate(zip(params, arg_types)):
            if arg_type is None:
                distance = 0  # Unfilled wildcard
            else:
                maybe = self.ts.type_distance(arg_type, param.type)
                if maybe is None:
                    return None
                distance = maybe
            if self.config.type_distance:
                cost += distance
            if self.config.abstract_types:
                cost += self._abstype_mismatch(method, index, receiver_type, args)
        if self.config.depth and not method.is_static:
            cost += DOT_COST  # the receiver dot
        if self.config.in_scope_static:
            if not method.is_static or not self.context.is_in_scope_static(method):
                cost += 1
        if self.config.namespaces:
            cost += self._guarded_namespace_cost(method, arg_types)
        return cost

    def _guarded_namespace_cost(
        self, method: Method, arg_types: "list[Optional[TypeDef]]"
    ) -> int:
        try:
            faults.fire("namespaces")
            return self.namespace_cost(method, arg_types)
        except Exception:
            # neutral: similarity 0, the same as < 2 non-primitive args
            self.degraded.add("namespaces")
            return NAMESPACE_CAP

    def call_completion_cost(
        self,
        method: Method,
        arg_types: "list[Optional[TypeDef]]",
        args: "Optional[tuple]" = None,
    ) -> Optional[int]:
        """The call-node cost used by the engine, consistent with
        :meth:`score`: zero-argument instance calls cost like lookups,
        zero-argument static calls like global roots, everything else the
        full call terms."""
        if method.is_zero_arg_instance:
            receiver_type = arg_types[0]
            if receiver_type is None:
                return None  # a method cannot be invoked on `0`
            if self.ts.type_distance(receiver_type, method.declaring_type) is None:
                return None
            return self.lookup_step_cost(receiver_type, method.declaring_type)
        if method.is_static and not method.params:
            return DOT_COST if self.config.depth else 0
        return self.call_cost(method, arg_types, args)

    def _abstype_mismatch(
        self,
        method: Method,
        index: int,
        receiver_type: Optional[TypeDef],
        args: "Optional[tuple]",
    ) -> int:
        param_root = arg_root = None
        try:
            faults.fire("oracle")
            param_root = self.abstypes.of_param(method, index, receiver_type)
            if args is not None:
                arg_root = self.abstypes.of_expr(args[index])
        except Exception:
            # a broken oracle answers like NULL_ORACLE: undefined on both
            # sides, which counts as a mismatch below
            self.degraded.add("abstract_types")
            param_root = arg_root = None
        if param_root is None or arg_root is None or param_root != arg_root:
            return 1
        return 0

    def _abstype_pair_mismatch(self, lhs: Expr, rhs: Expr) -> int:
        """The abstract-type term for assignment/comparison pairs, with
        the same degradation contract as :meth:`_abstype_mismatch`."""
        left_root = right_root = None
        try:
            faults.fire("oracle")
            left_root = self.abstypes.of_expr(lhs)
            right_root = self.abstypes.of_expr(rhs)
        except Exception:
            self.degraded.add("abstract_types")
            left_root = right_root = None
        if left_root is None or right_root is None or left_root != right_root:
            return 1
        return 0

    def namespace_cost(
        self, method: Method, arg_types: "list[Optional[TypeDef]]"
    ) -> int:
        """``3 - min(3, |common namespace prefix|)``; similarity is 0 when
        fewer than two non-primitive argument types participate."""
        namespaces = [
            t.namespace_parts
            for t in arg_types
            if t is not None and not t.is_primitive
        ]
        if len(namespaces) < 2:
            return NAMESPACE_CAP
        declaring = method.declaring_type
        if declaring is not None:
            namespaces.append(declaring.namespace_parts)
        prefix_len = _common_prefix_length(namespaces)
        return NAMESPACE_CAP - min(NAMESPACE_CAP, prefix_len)

    # ------------------------------------------------------------------
    # binary operator terms
    # ------------------------------------------------------------------
    def assign_pair_cost(self, lhs: Expr, rhs: Expr) -> int:
        """Terms tying the two sides of an assignment together."""
        cost = 0
        lhs_type, rhs_type = lhs.type, rhs.type
        if self.config.type_distance and lhs_type is not None and rhs_type is not None:
            distance = self.ts.type_distance(rhs_type, lhs_type)
            if distance is None:
                raise ValueError("scoring a type-incorrect assignment")
            cost += distance
        if self.config.abstract_types:
            cost += self._abstype_pair_mismatch(lhs, rhs)
        return cost

    def compare_pair_cost(self, lhs: Expr, rhs: Expr) -> int:
        """Terms tying the two sides of a comparison together."""
        cost = 0
        lhs_type, rhs_type = lhs.type, rhs.type
        if self.config.type_distance and lhs_type is not None and rhs_type is not None:
            distance = self.ts.comparison_distance(lhs_type, rhs_type)
            if distance is None:
                raise ValueError("scoring a type-incorrect comparison")
            cost += distance
        if self.config.abstract_types:
            cost += self._abstype_pair_mismatch(lhs, rhs)
        if self.config.matching_name:
            try:
                faults.fire("matching_name")
                left_name = final_lookup_name(lhs)
                right_name = final_lookup_name(rhs)
            except Exception:
                # neutral: unknown names count as mismatching
                self.degraded.add("matching_name")
                left_name = right_name = None
            if left_name is None or left_name != right_name:
                cost += NAME_MISMATCH_COST
        return cost

    #: upper bound on the pair terms above, for reorder_with_slack
    PAIR_TERM_SLACK = NAME_MISMATCH_COST + 1 + 12

    # ------------------------------------------------------------------
    # explanation
    # ------------------------------------------------------------------
    def explain(self, expr: Expr) -> "dict[str, int]":
        """Decompose a score into its per-feature totals.

        Because every ranking term is gated by exactly one feature switch,
        scoring the expression under each single-feature configuration
        yields that feature's total contribution, and the contributions sum
        to the full score (a tested invariant).
        """
        breakdown = {}
        for letter, attr in RankingConfig._LETTERS.items():
            if not getattr(self.config, attr):
                continue
            solo = Ranker(self.context, RankingConfig.only(letter),
                          self.abstypes)
            breakdown[attr] = solo.score(expr)
        return breakdown


def _common_prefix_length(sequences: "list[tuple]") -> int:
    if not sequences:
        return 0
    shortest = min(len(s) for s in sequences)
    for index in range(shortest):
        segment = sequences[0][index]
        if any(s[index] != segment for s in sequences[1:]):
            return index
    return shortest
