"""Per-query resource budgets and cooperative cancellation.

The paper's generator of completions "will usually continue producing
more completions forever"; the static caps in :class:`EngineConfig`
happen to bound exploration, but nothing bounds *time*.  A
:class:`QueryBudget` gives every query a hard wall: a wall-clock
deadline, an expansion-step budget, and a cooperative
:class:`CancellationToken`, all checked inside the lazy stream
combinators and the index traversals.

The contract is *best-effort, never hang*: when a budget trips, the
combinators simply stop producing (their heaps drain in order, so the
results already emitted remain exactly the best-so-far prefix), the
engine returns what it has, and the tripped reason — one of the
:data:`TRUNCATED_TIMEOUT` / :data:`TRUNCATED_BUDGET` /
:data:`TRUNCATED_CANCELLED` constants — is reported on the query
outcome.  No exception crosses the query path unless a caller opts into
strict mode via :meth:`QueryBudget.raise_if_tripped`.

Budgets are cheap: :meth:`QueryBudget.tick` is a counter increment plus
(every ``CLOCK_CHECK_INTERVAL`` ticks) one monotonic-clock read.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import BudgetExhausted, QueryCancelled, QueryTimeout

#: machine-readable truncation reasons, surfaced end to end (engine ->
#: session -> CLI exit code)
TRUNCATED_TIMEOUT = "timeout"
TRUNCATED_BUDGET = "budget"
TRUNCATED_CANCELLED = "cancelled"

#: how many ticks pass between wall-clock reads (cancellation and the
#: step budget are checked on every tick — they are just comparisons)
CLOCK_CHECK_INTERVAL = 32


class CancellationToken:
    """Cooperative cancellation: the owner calls :meth:`cancel`, workers
    poll :attr:`cancelled` (via ``QueryBudget.tick``) and wind down."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CancellationToken {}>".format(
            "cancelled" if self._cancelled else "live"
        )


class QueryBudget:
    """Wall-clock + step budget + cancellation for one query.

    ``deadline_ms`` and ``max_steps`` may each be ``None`` (unlimited).
    ``clock`` is injectable (seconds, monotonic) so tests control time
    deterministically.  A budget is single-use: it starts timing at
    construction and remembers the first reason it tripped.
    """

    __slots__ = (
        "deadline_ms",
        "max_steps",
        "token",
        "_clock",
        "_started",
        "steps",
        "tripped",
        "_until_clock_check",
    )

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        max_steps: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline_ms = deadline_ms
        self.max_steps = max_steps
        self.token = token
        self._clock = clock
        self._started = clock()
        self.steps = 0
        #: the first trip reason, or ``None`` while within budget
        self.tripped: Optional[str] = None
        #: first tick reads the clock (so even tiny streams notice an
        #: already-expired deadline), then every CLOCK_CHECK_INTERVAL
        self._until_clock_check = 1

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def tick(self, cost: int = 1) -> bool:
        """Charge ``cost`` steps; ``True`` while within budget.

        Once tripped, stays tripped (and stops reading the clock).
        """
        if self.tripped is not None:
            return False
        self.steps += cost
        if self.token is not None and self.token.cancelled:
            self.tripped = TRUNCATED_CANCELLED
            return False
        if self.max_steps is not None and self.steps > self.max_steps:
            self.tripped = TRUNCATED_BUDGET
            return False
        if self.deadline_ms is not None:
            self._until_clock_check -= cost
            if self._until_clock_check <= 0:
                self._until_clock_check = CLOCK_CHECK_INTERVAL
                if self.elapsed_ms() > self.deadline_ms:
                    self.tripped = TRUNCATED_TIMEOUT
                    return False
        return True

    def ok(self) -> bool:
        """Within budget, without charging a step (re-checks the clock
        and the token, so long non-stream work can poll it)."""
        if self.tripped is not None:
            return False
        if self.token is not None and self.token.cancelled:
            self.tripped = TRUNCATED_CANCELLED
            return False
        if (
            self.deadline_ms is not None
            and self.elapsed_ms() > self.deadline_ms
        ):
            self.tripped = TRUNCATED_TIMEOUT
            return False
        return True

    def elapsed_ms(self) -> float:
        return (self._clock() - self._started) * 1000.0

    # ------------------------------------------------------------------
    # strict mode
    # ------------------------------------------------------------------
    def raise_if_tripped(self) -> None:
        """Map a trip to the structured taxonomy, for callers that want
        an exception rather than a truncated result."""
        if self.tripped == TRUNCATED_TIMEOUT:
            raise QueryTimeout(self.elapsed_ms(), self.deadline_ms or 0.0)
        if self.tripped == TRUNCATED_BUDGET:
            raise BudgetExhausted(self.steps, self.max_steps or 0)
        if self.tripped == TRUNCATED_CANCELLED:
            raise QueryCancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<QueryBudget steps={} tripped={!r}>".format(
            self.steps, self.tripped
        )


#: a shared no-op stand-in usable where a budget is optional
UNLIMITED = QueryBudget()
