"""Lackwit-style abstract type inference (Sec. 4.1 of the paper).

An abstract-type variable is assigned to every local variable, formal
parameter, formal return type and field; a type-equality constraint is added
whenever a value is assigned or used as a method-call argument.  All
constraints are equalities on atoms, solved by union-find.

Two paper-specified refinements:

* methods declared on ``Object`` (``ToString``, ``GetHashCode``, ...) are
  treated as distinct methods for every receiver type, so that calling
  ``.ToString()`` does not merge everything;
* overriding methods share the formal parameter / return terms of the
  method they override (via :meth:`Method.root_declaration`).

The evaluation re-runs inference per query "eliminating the expression and
all code that follows it in the enclosing method"; pass ``exclude_from`` for
that.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from ..codemodel.members import Method
from ..codemodel.types import TypeDef
from ..corpus.program import (
    AssignStatement,
    ExprStatement,
    IfStatement,
    LocalDecl,
    MethodImpl,
    Project,
    ReturnStatement,
    Statement,
)
from ..lang.ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
)
from .unionfind import UnionFind

TermKey = Hashable


class AbstractTypeAnalysis:
    """Runs inference over a project; answers abstract-type queries.

    Parameters
    ----------
    project:
        The corpus to analyse.
    exclude_from:
        ``(impl, statement_index)`` — skip that statement and everything
        after it in that impl, recreating the "code being written" state.
    """

    def __init__(
        self,
        project: Project,
        exclude_from: Optional[Tuple[MethodImpl, int]] = None,
    ) -> None:
        self.project = project
        self.ts = project.ts
        self.uf = UnionFind()
        self._exclude = exclude_from
        self._run()

    # ------------------------------------------------------------------
    # term keys
    # ------------------------------------------------------------------
    def _method_slot(
        self, method: Method, receiver_type: Optional[TypeDef]
    ) -> TermKey:
        root = method.root_declaration()
        if (
            not root.is_static
            and root.declaring_type is self.ts.object_type
            and receiver_type is not None
        ):
            # Object-declared methods are split per receiver type
            return ("objmethod", receiver_type.full_name, root.name, len(root.params))
        return ("slot", id(root))

    def param_key(
        self,
        method: Method,
        index: int,
        receiver_type: Optional[TypeDef] = None,
    ) -> TermKey:
        """Term of parameter ``index`` of ``method`` (``all_params`` index:
        0 is the receiver for instance methods)."""
        return ("param", self._method_slot(method, receiver_type), index)

    def return_key(
        self, method: Method, receiver_type: Optional[TypeDef] = None
    ) -> TermKey:
        return ("return", self._method_slot(method, receiver_type))

    def local_key(self, impl: MethodImpl, name: str) -> TermKey:
        return ("local", id(impl), name)

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _run(self) -> None:
        for impl in self.project.impls:
            self._seed_impl(impl)
        for impl in self.project.impls:
            limit = None
            if self._exclude is not None and self._exclude[0] is impl:
                limit = self._exclude[1]
            for index, stmt in enumerate(impl.body):
                if limit is not None and index >= limit:
                    break
                self._process_statement(impl, stmt)

    def extend(self, impl: MethodImpl) -> None:
        """Incrementally add one implementation's constraints.

        Union-find only ever merges, so feeding code in as it is written is
        sound — the paper: inference "can be done incrementally in the
        background".  The impl need not belong to the original project.
        """
        self._seed_impl(impl)
        for stmt in impl.body:
            self._process_statement(impl, stmt)

    def _seed_impl(self, impl: MethodImpl) -> None:
        """Link an impl's named parameters to its formal-parameter terms."""
        method = impl.method
        offset = 0 if method.is_static else 1
        for position, param in enumerate(method.params):
            self.uf.union(
                self.local_key(impl, param.name),
                self.param_key(method, position + offset, method.declaring_type),
            )
        if not method.is_static:
            self.uf.union(
                self.local_key(impl, "this"),
                self.param_key(method, 0, method.declaring_type),
            )

    def _process_statement(self, impl: MethodImpl, stmt: Statement) -> None:
        if isinstance(stmt, LocalDecl):
            if stmt.init is not None:
                init_term = self._process_expr(impl, stmt.init)
                self._unify(self.local_key(impl, stmt.name), init_term)
        elif isinstance(stmt, AssignStatement):
            self._process_expr(impl, stmt.assign)
        elif isinstance(stmt, IfStatement):
            self._process_expr(impl, stmt.condition)
        elif isinstance(stmt, ReturnStatement):
            term = self._process_expr(impl, stmt.expr)
            method = impl.method
            self._unify(
                self.return_key(method, method.declaring_type), term
            )
        elif isinstance(stmt, ExprStatement):
            self._process_expr(impl, stmt.expr)

    def _process_expr(self, impl: MethodImpl, expr: Expr) -> Optional[TermKey]:
        """Walk an expression adding constraints; return its term, if any."""
        if isinstance(expr, Var):
            return self.local_key(impl, expr.name)
        if isinstance(expr, (Literal, Unfilled, TypeLiteral)):
            return None
        if isinstance(expr, FieldAccess):
            if not isinstance(expr.base, TypeLiteral):
                self._process_expr(impl, expr.base)
            return ("field", id(expr.member))
        if isinstance(expr, Call):
            receiver_type = None
            if not expr.method.is_static:
                receiver_type = expr.args[0].type
            for index, arg in enumerate(expr.args):
                arg_term = self._process_expr(impl, arg)
                self._unify(
                    self.param_key(expr.method, index, receiver_type), arg_term
                )
            if expr.method.return_type is None:
                return None
            return self.return_key(expr.method, receiver_type)
        if isinstance(expr, Assign):
            lhs = self._process_expr(impl, expr.lhs)
            rhs = self._process_expr(impl, expr.rhs)
            self._unify(lhs, rhs)
            return lhs
        if isinstance(expr, Compare):
            # the paper adds constraints for assignments and argument
            # passing only; comparisons do not unify their sides
            self._process_expr(impl, expr.lhs)
            self._process_expr(impl, expr.rhs)
            return None
        return None

    def _unify(self, left: Optional[TermKey], right: Optional[TermKey]) -> None:
        if left is None or right is None:
            return
        self.uf.union(left, right)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def term_of_expr(self, impl: MethodImpl, expr: Expr) -> Optional[TermKey]:
        """The term key an expression *reads from* (no constraint added)."""
        if isinstance(expr, Var):
            return self.local_key(impl, expr.name)
        if isinstance(expr, FieldAccess):
            return ("field", id(expr.member))
        if isinstance(expr, Call):
            if expr.method.return_type is None:
                return None
            receiver_type = None
            if not expr.method.is_static:
                receiver_type = expr.args[0].type
            return self.return_key(expr.method, receiver_type)
        return None

    def abstype_of_expr(self, impl: MethodImpl, expr: Expr) -> Optional[int]:
        """Union-find root of the expression's abstract type, or ``None``."""
        term = self.term_of_expr(impl, expr)
        if term is None:
            return None
        return self.uf.find(term)

    def abstype_of_param(
        self,
        method: Method,
        index: int,
        receiver_type: Optional[TypeDef] = None,
    ) -> Optional[int]:
        return self.uf.find(self.param_key(method, index, receiver_type))

    def same_abstype(
        self, impl: MethodImpl, left: Expr, right: Expr
    ) -> bool:
        """Do two expressions provably share an abstract type?"""
        left_root = self.abstype_of_expr(impl, left)
        right_root = self.abstype_of_expr(impl, right)
        return left_root is not None and left_root == right_root
