"""Code-model linting: structural validation of a library universe.

The completion engine assumes the :class:`~repro.codemodel.typesystem.
TypeSystem` it searches is well-formed: the declared-supertype graph is
acyclic and rooted at ``System.Object``, supertype edges point at types of
the right kind, methods are unambiguous, and the per-type method index
agrees with the registry.  None of those assumptions is checked at
registration time (frameworks are built programmatically or loaded from
source/JSON), so a malformed universe surfaces as wrong rankings or — for
cycles — unbounded supertype walks inside budgeted queries.

:func:`lint_type_system` checks them all up front and reports stable
``RA00x`` diagnostics (catalogue in ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..codemodel.types import TypeDef, TypeKind
from ..codemodel.typesystem import TypeSystem
from .diagnostics import Diagnostic, diag, sort_diagnostics

#: a single union-find class holding at least this share of all abstract
#: type terms (with a minimum population) is reported as over-merged
_OVERMERGE_RATIO = 0.5
_OVERMERGE_MIN_TERMS = 8


def lint_type_system(
    ts: TypeSystem,
    index=None,
    project=None,
) -> List[Diagnostic]:
    """All code-model diagnostics for a universe, sorted.

    ``index`` is an optional :class:`~repro.engine.index.MethodIndex`
    already built over ``ts`` (e.g. a workspace's live engine index) to
    cross-check against the registry; when omitted a fresh one is built.
    ``project`` enables the abstract-type partition check (RA007).
    """
    diagnostics: List[Diagnostic] = []
    cycle_members = _check_cycles(ts, diagnostics)
    _check_edges(ts, diagnostics)
    _check_duplicate_signatures(ts, diagnostics)
    _check_object_reachability(ts, diagnostics, cycle_members)
    _check_orphans(ts, diagnostics)
    _check_method_index(ts, index, diagnostics)
    if project is not None:
        _check_partition(project, diagnostics)
    return sort_diagnostics(diagnostics)


# ----------------------------------------------------------------------
# RA001 — supertype cycles
# ----------------------------------------------------------------------
def _check_cycles(ts: TypeSystem, out: List[Diagnostic]) -> Set[str]:
    """Report every cycle in the declared-supertype graph; return the
    full names of all types on some cycle (for downstream suppression)."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    members: Set[str] = set()
    for start in ts.all_types():
        if color.get(start.full_name, WHITE) is not WHITE:
            continue
        # iterative DFS keeping the grey path so the cycle can be printed
        stack: List[Tuple[TypeDef, int]] = [(start, 0)]
        path: List[TypeDef] = []
        while stack:
            node, edge = stack[-1]
            if edge == 0:
                color[node.full_name] = GREY
                path.append(node)
            supers = _declared_supertypes(ts, node)
            if edge < len(supers):
                stack[-1] = (node, edge + 1)
                parent = supers[edge]
                state = color.get(parent.full_name, WHITE)
                if state is GREY:
                    # back edge: the cycle is the grey path from parent
                    cycle = path[path.index(parent):] + [parent]
                    names = [t.full_name for t in cycle]
                    if not members.issuperset(names):
                        members.update(names[:-1])
                        out.append(diag(
                            "RA001",
                            "supertype cycle: " + " -> ".join(names),
                            location=names[0],
                        ))
                elif state is WHITE:
                    stack.append((parent, 0))
            else:
                color[node.full_name] = BLACK
                path.pop()
                stack.pop()
    return members


def _declared_supertypes(ts: TypeSystem, typedef: TypeDef) -> List[TypeDef]:
    """Raw declared edges (not the memoised ``immediate_supertypes``, so
    linting never pollutes or trusts the caches it is auditing)."""
    if typedef.kind is TypeKind.PRIMITIVE:
        return list(ts.immediate_supertypes(typedef))  # widenings are fixed
    supers: List[TypeDef] = []
    if typedef.base is not None:
        supers.append(typedef.base)
    supers.extend(typedef.interfaces)
    return supers


# ----------------------------------------------------------------------
# RA002 — malformed supertype edges
# ----------------------------------------------------------------------
def _check_edges(ts: TypeSystem, out: List[Diagnostic]) -> None:
    for typedef in ts.all_types():
        base = typedef.base
        if base is not None:
            if base.is_interface or base.kind is TypeKind.PRIMITIVE:
                out.append(diag(
                    "RA002",
                    "base of {} is a {} ({})".format(
                        typedef.full_name, base.kind.value, base.full_name),
                    location=typedef.full_name,
                ))
            _check_registered(ts, typedef, base, "base", out)
        for iface in typedef.interfaces:
            if not iface.is_interface:
                out.append(diag(
                    "RA002",
                    "{} lists non-interface {} ({}) in its interface "
                    "list".format(typedef.full_name, iface.full_name,
                                  iface.kind.value),
                    location=typedef.full_name,
                ))
            _check_registered(ts, typedef, iface, "interface", out)


def _check_registered(
    ts: TypeSystem,
    typedef: TypeDef,
    target: TypeDef,
    role: str,
    out: List[Diagnostic],
) -> None:
    if ts.try_get(target.full_name) is not target:
        out.append(diag(
            "RA002",
            "{} of {} points at unregistered type {}".format(
                role, typedef.full_name, target.full_name),
            location=typedef.full_name,
        ))


# ----------------------------------------------------------------------
# RA003 — duplicate method signatures
# ----------------------------------------------------------------------
def _check_duplicate_signatures(ts: TypeSystem, out: List[Diagnostic]) -> None:
    for typedef in ts.all_types():
        seen: Dict[tuple, int] = {}
        for method in typedef.methods:
            signature = (
                method.name,
                method.is_static,
                tuple(p.type.full_name for p in method.params),
            )
            seen[signature] = seen.get(signature, 0) + 1
        for (name, is_static, params), count in seen.items():
            if count > 1:
                out.append(diag(
                    "RA003",
                    "{}{}({}) declared {} times on {}".format(
                        "static " if is_static else "", name,
                        ", ".join(params), count, typedef.full_name),
                    location="{}.{}".format(typedef.full_name, name),
                ))


# ----------------------------------------------------------------------
# RA004 — every non-primitive type must reach Object
# ----------------------------------------------------------------------
def _check_object_reachability(
    ts: TypeSystem, out: List[Diagnostic], cycle_members: Set[str]
) -> None:
    for typedef in ts.all_types():
        if typedef.kind is TypeKind.PRIMITIVE:
            continue  # primitives widen among themselves by design
        if typedef.full_name in cycle_members:
            continue  # already reported as RA001; closure is unreliable
        if ts.object_type not in ts.supertype_closure(typedef):
            out.append(diag(
                "RA004",
                "{} cannot reach System.Object through declared "
                "supertypes".format(typedef.full_name),
                location=typedef.full_name,
            ))


# ----------------------------------------------------------------------
# RA005 — orphan types
# ----------------------------------------------------------------------
_CORE_NAMES = frozenset(
    ["System.Object", "System.ValueType", "System.Enum", "System.String",
     "void"]
)


def _check_orphans(ts: TypeSystem, out: List[Diagnostic]) -> None:
    referenced: Set[str] = set()
    for typedef in ts.all_types():
        for parent in _declared_supertypes(ts, typedef):
            referenced.add(parent.full_name)
        for member in list(typedef.fields) + list(typedef.properties):
            referenced.add(member.type.full_name)
        for method in typedef.methods:
            if method.return_type is not None:
                referenced.add(method.return_type.full_name)
            for param in method.params:
                referenced.add(param.type.full_name)
    for typedef in ts.all_types():
        if typedef.kind is TypeKind.PRIMITIVE:
            continue
        if typedef.full_name in _CORE_NAMES:
            continue
        has_members = bool(
            typedef.fields or typedef.properties or typedef.methods
        )
        if has_members or typedef.full_name in referenced:
            continue
        out.append(diag(
            "RA005",
            "{} is unreferenced and has no members; completions can "
            "never produce or consume it".format(typedef.full_name),
            location=typedef.full_name,
        ))


# ----------------------------------------------------------------------
# RA006 — method-index consistency
# ----------------------------------------------------------------------
def _check_method_index(ts: TypeSystem, index, out: List[Diagnostic]) -> None:
    from ..engine.index import MethodIndex

    if index is None:
        index = MethodIndex(ts)
    registry_methods = {id(m) for m in ts.all_methods()}
    indexed_methods = {id(m) for m in index.all_methods()}
    for method in ts.all_methods():
        if id(method) not in indexed_methods:
            out.append(diag(
                "RA006",
                "method {} missing from the index".format(method.full_name),
                location=method.full_name,
            ))
            continue
        for param in method.all_params():
            bucket = index.methods_with_exact_param(param.type)
            if not any(entry is method for entry in bucket):
                out.append(diag(
                    "RA006",
                    "method {} not in the exact-param bucket for {}".format(
                        method.full_name, param.type.full_name),
                    location=method.full_name,
                ))
    for method in index.all_methods():
        if id(method) not in registry_methods:
            out.append(diag(
                "RA006",
                "index lists {} but the registry does not".format(
                    method.full_name),
                location=method.full_name,
            ))


# ----------------------------------------------------------------------
# RA007 — abstract-type partition sanity
# ----------------------------------------------------------------------
def _check_partition(project, out: List[Diagnostic]) -> None:
    from .abstract_types import AbstractTypeAnalysis

    analysis = AbstractTypeAnalysis(project)
    groups = analysis.uf.groups()
    total = sum(len(g) for g in groups.values())
    if total < _OVERMERGE_MIN_TERMS:
        return
    largest = max(groups.values(), key=len)
    if len(largest) / total >= _OVERMERGE_RATIO:
        out.append(diag(
            "RA007",
            "one abstract type covers {} of {} terms ({}%); the "
            "abstract-type ranking term will barely discriminate".format(
                len(largest), total, round(100 * len(largest) / total)),
            location=project.name,
        ))
