"""Query pre-flight: type-directed satisfiability of a partial expression.

Some queries are *provably* empty before any search stream is built: a
``?`` hole whose expected type no chain root can reach, an ``?({...})``
whose argument types no visible method accepts, a known call whose
overloads all mismatch.  The completion engine otherwise discovers this
the slow way — by exhausting a bounded search.  :func:`preflight_query`
proves emptiness up front using the same reachability index the engine
prunes with, so :meth:`CompletionEngine.complete_query
<repro.engine.completer.CompletionEngine.complete_query>` can short-circuit
with zero expansion steps.

Every check here is **conservative**: a query is only called unsatisfiable
(RA020/RA023) when no completion can exist under the engine's configured
bounds.  When in doubt — partial subexpressions of unknown type, a
reachability index shallower than the chain depth — the verdict is
"satisfiable" and the engine searches normally.  Pre-flight never consumes
budget steps and never touches the query's budget.

The pass also reports advisory diagnostics: unknown scope types (RA021)
and ranking terms that cannot influence the query (RA024).  Catalogue in
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..codemodel.types import TypeDef
from ..lang.ast import Expr, is_complete
from ..lang.partial import (
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
)
from .diagnostics import Diagnostic, diag, has_errors, sort_diagnostics
from .scope import Context


@dataclass
class PreflightReport:
    """The verdict of a pre-flight pass.

    ``unsatisfiable`` is True only for *proven* emptiness — the engine may
    skip the search entirely.  ``diagnostics`` carries the findings
    (including the RA020/RA023 proof when unsatisfiable).
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    unsatisfiable: bool = False

    @property
    def has_errors(self) -> bool:
        return has_errors(self.diagnostics)


def preflight_query(
    engine,
    pe: Expr,
    context: Context,
    expected_type: Optional[TypeDef] = None,
    keyword: Optional[str] = None,
) -> PreflightReport:
    """Analyse one parsed query against an engine's universe and config."""
    checker = _Preflight(engine, context, expected_type, keyword)
    checker.run(pe)
    report = PreflightReport(
        diagnostics=sort_diagnostics(checker.diagnostics),
        unsatisfiable=checker.unsatisfiable,
    )
    return report


class _Preflight:
    def __init__(self, engine, context, expected_type, keyword) -> None:
        self.engine = engine
        self.config = engine.config
        self.ts = engine.ts
        self.context = context
        self.expected_type = expected_type
        self.keyword = keyword.lower() if keyword else None
        self.diagnostics: List[Diagnostic] = []
        self.unsatisfiable = False

    # ------------------------------------------------------------------
    # entry
    # ------------------------------------------------------------------
    def run(self, pe: Expr) -> None:
        self._check_scope_types()
        self._check_dead_ranking_terms(pe)
        if isinstance(pe, Hole):
            self._check_hole(pe)
        elif isinstance(pe, SuffixHole):
            self._check_suffix(pe)
        elif isinstance(pe, UnknownCall):
            self._check_unknown_call(pe)
        elif isinstance(pe, KnownCall):
            self._check_known_call(pe)
        # assignments/comparisons join two unconstrained sides; emptiness
        # is not provable without enumerating, so they always pass

    # ------------------------------------------------------------------
    # RA021 — scope sanity
    # ------------------------------------------------------------------
    def _check_scope_types(self) -> None:
        for name, typedef in self.context.locals.items():
            if self.ts.try_get(typedef.full_name) is not typedef:
                self.diagnostics.append(diag(
                    "RA021",
                    "local {!r} has type {} which is not registered in "
                    "this universe".format(name, typedef.full_name),
                    location=name,
                ))

    # ------------------------------------------------------------------
    # RA024 — dead ranking terms (advisory)
    # ------------------------------------------------------------------
    def _check_dead_ranking_terms(self, pe: Expr) -> None:
        ranking = self.config.ranking
        if ranking.matching_name and not isinstance(
            pe, PartialCompare
        ):
            self.diagnostics.append(diag(
                "RA024",
                "matching_name is enabled but only scores comparisons; "
                "it cannot affect this query",
                location="ranking.matching_name",
            ))
        if ranking.in_scope_static and self.context.enclosing_type is None:
            self.diagnostics.append(diag(
                "RA024",
                "in_scope_static is enabled but the scope has no "
                "enclosing type, so every call pays the same +1",
                location="ranking.in_scope_static",
            ))

    # ------------------------------------------------------------------
    # RA020 — chain satisfiability
    # ------------------------------------------------------------------
    def _reachability_usable(self, needed_depth: int) -> bool:
        """The emptiness proof is only valid when the reachability index
        explores at least as deep as the chains the engine would build."""
        reach = self.engine.reachability
        return reach is not None and reach.max_depth >= needed_depth

    def _roots_reach(
        self,
        root_types: List[TypeDef],
        target: TypeDef,
        max_steps: int,
        methods: bool,
    ) -> bool:
        """Can any root chain to something convertible to ``target``?"""
        reach = self.engine.reachability
        for root_type in root_types:
            if reach.can_reach(root_type, target, max_steps, methods):
                return True
        return False

    def _check_hole(self, pe: Hole) -> None:
        root_types = self._root_types()
        if not root_types:
            self._unsat(diag(
                "RA020",
                "a ? hole has no chain roots: the scope has no locals "
                "and the universe has no global statics",
                location="scope",
            ))
            return
        target = self.expected_type
        if target is None:
            return
        depth = self.config.max_chain_depth
        if not self._reachability_usable(depth):
            return
        if not self._roots_reach(root_types, target, depth, methods=True):
            self._unsat(diag(
                "RA020",
                "no chain of at most {} lookups from any of the {} "
                "roots in scope produces a {}".format(
                    depth, len(root_types), target.full_name),
                location=target.full_name,
            ))

    def _check_suffix(self, pe: SuffixHole) -> None:
        target = self.expected_type
        if target is None or not is_complete(pe.base):
            return
        base_type = pe.base.type
        if base_type is None:
            return
        depth = self.config.max_chain_depth if pe.star else 1
        if not self._reachability_usable(depth):
            return
        if not self._roots_reach([base_type], target, depth, pe.methods):
            self._unsat(diag(
                "RA020",
                "no {} chain of at most {} lookups from {} produces "
                "a {}".format(pe.suffix_text, depth, base_type.full_name,
                              target.full_name),
                location=target.full_name,
            ))

    def _root_types(self) -> List[TypeDef]:
        types: List[TypeDef] = []
        for root in self.context.chain_roots():
            root_type = root.type
            if root_type is not None and root_type not in types:
                types.append(root_type)
        return types

    # ------------------------------------------------------------------
    # RA023 — call satisfiability
    # ------------------------------------------------------------------
    def _arg_type(self, arg: Expr) -> Optional[TypeDef]:
        """The argument's type when fixed; ``None`` means unconstrained
        (a hole, wildcard, or any partial subexpression)."""
        if is_complete(arg):
            return arg.type
        return None

    def _check_unknown_call(self, pe: UnknownCall) -> None:
        arg_types = [self._arg_type(a) for a in pe.args]
        for method in self.engine.index.all_methods():
            if self._method_admissible(method, arg_types, len(pe.args),
                                       exact_arity=False,
                                       apply_keyword=True):
                return
        parts = [t.full_name if t else "?" for t in arg_types]
        detail = "?({{{}}})".format(", ".join(parts))
        if self.keyword:
            detail += " with keyword {!r}".format(self.keyword)
        if self.expected_type is not None:
            detail += " returning {}".format(self.expected_type.full_name)
        self._unsat(diag(
            "RA023",
            "no visible method can complete {}".format(detail),
            location="unknown-call",
        ))

    def _check_known_call(self, pe: KnownCall) -> None:
        arg_types = [self._arg_type(a) for a in pe.args]
        for method in pe.candidates:
            if self._method_admissible(method, arg_types, len(pe.args),
                                       exact_arity=True,
                                       apply_keyword=False,
                                       positional=True):
                return
        self._unsat(diag(
            "RA023",
            "none of the {} overload(s) of {} accepts these argument "
            "types".format(len(pe.candidates), pe.name),
            location=pe.name,
        ))

    def _method_admissible(
        self,
        method,
        arg_types: List[Optional[TypeDef]],
        arg_count: int,
        exact_arity: bool,
        apply_keyword: bool,
        positional: bool = False,
    ) -> bool:
        """Necessary conditions for the engine to emit this method — a
        superset of what the search accepts, so failing *every* method is
        a sound emptiness proof."""
        if exact_arity:
            if method.arity != arg_count:
                return False
        elif method.arity < arg_count:
            return False
        if method.is_constructor and not self.config.generate_constructors:
            return False
        if apply_keyword and self.keyword is not None:
            if self.keyword not in method.name.lower():
                return False
        if not self._return_matches(method):
            return False
        params = method.all_params()
        if positional:
            pairs = zip(arg_types, params)
            return all(
                arg_type is None
                or self.ts.implicitly_converts(arg_type, param.type)
                for arg_type, param in pairs
            )
        for arg_type in arg_types:
            if arg_type is None:
                continue
            if not any(
                self.ts.implicitly_converts(arg_type, param.type)
                for param in params
            ):
                return False
        return True

    def _return_matches(self, method) -> bool:
        target = self.expected_type
        if target is None:
            return True
        if target is self.ts.void_type:
            return method.return_type is None
        if method.return_type is None:
            return False
        return self.ts.implicitly_converts(method.return_type, target)

    # ------------------------------------------------------------------
    def _unsat(self, diagnostic: Diagnostic) -> None:
        self.unsatisfiable = True
        self.diagnostics.append(diagnostic)
