"""Whole-universe dependency analysis: who can an edit touch?

The engine's cross-query cache historically treated every
:class:`~repro.codemodel.typesystem.TypeSystem` mutation as global —
clear everything, re-warm from scratch.  This module computes the static
dependency structure that makes *selective* invalidation sound:

* :class:`DependencyGraph` — per-:class:`~repro.codemodel.types.TypeDef`
  forward and reverse dependency sets built from two static edge
  families plus one optional membership relation:

  - **supertype edges**: a type depends on its immediate supertypes
    (classes, interfaces, primitive widenings) — the lattice that
    ``type_distance`` and inherited-member lookup walk;
  - **member-signature edges**: a type depends on every type named in
    its declared member signatures (field/property types, method
    parameter and return types) — the reachability steps a ``.?*``
    chain can take out of it;
  - **abstract-type partition membership** (optional, when a
    :class:`~repro.corpus.program.Project` is supplied): which types
    share a union-find partition with a given type — the oracle-backed
    ranking surface of an edit.

  The *accepting* relation — an ``?({args})`` query seeded at a
  parameter type pulling in the method that accepts it — is deliberately
  **not** a static edge family: parameter types like ``string`` are
  accepted nearly everywhere, and routing closures through them would
  collapse every footprint to the whole universe.  It is tracked
  per-entry instead, as the *accepting* half of a
  :class:`QueryFootprint`, matched at invalidation time against
  :func:`method_param_types` of the mutated set — the same trade the
  paper's method index makes by bucketing on exact parameter types and
  walking supertypes at query time.

* :meth:`DependencyGraph.footprint` — the forward closure of a seed
  set: every type a member-chain expansion rooted at those seeds can
  read.  The completion cache records one :class:`QueryFootprint` per
  entry at population time — direct signature reads, plus the closure
  of any suffix-hole chain seeds, plus the accepting set — and drops
  exactly the entries an edit intersects (:mod:`repro.engine.cache`).

* :meth:`DependencyGraph.impact` — the reverse direction, as a
  queryable :class:`ImpactReport`: "which root pools, shared streams,
  and index regions can editing these types touch?", surfaced as
  ``repro impact``, the REPL's ``:impact``, and :func:`repro.api.impact`.

* :func:`lint_dependencies` — the RA1xx diagnostics built on the graph
  (god types, dependency cycles outside the subtype lattice, cache
  blast radius, silent fingerprint drift); merged into
  ``Workspace.lint`` output (docs/ANALYSIS.md).

Soundness of footprint invalidation rests on two facts proved by the
ranking model (:mod:`repro.engine.ranking`).  First, a completion's
score depends only on the expression shape, the ranking config,
supertype distances, and the query context — so a member-level edit can
only change entries whose expansion *read* the edited type's member
lists.  The types a bounded search reads are the signatures the
expression names directly plus, for suffix-hole nodes, every type a
member chain from the receiver can step into — the ``reads`` set a
:class:`QueryFootprint` records (direct reads, plus the forward closure
of chain seeds).  Second, the one way an edit creates completions for
an entry that never read it is a new or reordered method ``m(P)``
becoming an unknown-call candidate; ``methods_accepting`` only finds
``m`` via an argument type converting to ``P``, so the entry's
``accepting`` set (argument supertype closures) contains ``P``, and
:func:`method_param_types` of the *method-mutated* set (the mutation
log flags which edits touched a method list — field and property edits
cannot mint candidates) contains ``P`` too — the intersection test
catches it.  Structural edits (registration, ``base``/``interfaces``
re-pointing) carry no origin in the mutation log and force the coarse
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..codemodel.types import TypeDef
from ..codemodel.typesystem import TypeSystem
from ..lang.ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
)
from ..lang.partial import (
    Hole,
    KnownCall,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    UnknownCall,
)
from .diagnostics import Diagnostic, diag
from .scope import global_roots_of

#: RA101: reverse closure covering more than this fraction of the
#: (non-primitive) universe marks a god type
GOD_TYPE_FRACTION = 0.5
#: RA101/RA103 need a universe/cache big enough for fractions to mean much
GOD_TYPE_MIN_UNIVERSE = 8
#: RA103: one edit invalidating more than this fraction of footprinted
#: cache entries is worth a warning
BLAST_FRACTION = 0.5
BLAST_MIN_ENTRIES = 8

#: core roots every universe depends on — never reported as god types
_CORE_TYPES = frozenset(
    ["System.Object", "System.ValueType", "System.Enum", "System.String"]
)


def method_param_types(
    ts: TypeSystem, names: Iterable[str]
) -> FrozenSet[str]:
    """The parameter types of the named types' *current* methods — the
    surface through which a member-level edit can have *introduced*
    completions into queries that never read the edited type.

    A method added to type ``T`` with a parameter of type ``P`` becomes
    a candidate only for unknown-call queries whose argument converts to
    ``P`` — and every such query's recorded *accepting* set contains
    ``P`` (accepting sets close over argument supertypes, and
    ``methods_accepting`` only finds ``m`` via a type converting to
    ``P``).  Pre-existing parameter types over-approximate harmlessly.
    """
    params: Set[str] = set()
    for name in names:
        typedef = ts.try_get(name)
        if typedef is None:
            continue
        for method in typedef.methods:
            for param in method.params:
                params.add(param.type.full_name)
    return frozenset(params)


def expand_mutations(
    ts: TypeSystem, names: Iterable[str]
) -> FrozenSet[str]:
    """A mutated-name set widened with :func:`method_param_types` — the
    full set of names an edit can reach either by being read or by
    introducing new index candidates."""
    return frozenset(names) | method_param_types(ts, names)


@dataclass(frozen=True)
class QueryFootprint:
    """What one cache entry's computation depended on.

    ``reads`` is every type whose *member lists* the bounded search can
    have read: the signatures the expression names directly, plus the
    forward dependency closure of any suffix-hole chain seeds.
    ``accepting`` is the supertype closure of the query's unknown-call
    argument types: the parameter types through which a *newly added*
    method anywhere in the universe could become a candidate for this
    entry (empty for queries without an unknown call).  The cache drops
    an entry when ``reads`` meets the raw mutated set or ``accepting``
    meets the *method-mutated* types' method parameter types
    (:func:`method_param_types`) — the two halves of the soundness
    argument in the module docstring.
    """

    reads: FrozenSet[str]
    accepting: FrozenSet[str] = frozenset()

    def affected_by(
        self, mutated: FrozenSet[str], params: FrozenSet[str]
    ) -> bool:
        """Would a member-level edit of ``mutated`` (with method
        parameter types ``params``) invalidate this entry?"""
        return (
            not mutated.isdisjoint(self.reads)
            or not params.isdisjoint(self.accepting)
        )


def footprint_seeds(
    pe: Expr,
) -> Optional[Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]]:
    """``(read_types, chain_seed_types, accepting_arg_types)`` for a
    partial expression, or ``None`` when its completion search is
    universe-wide.

    ``None`` — forcing the cache to drop the entry on every fine-grained
    invalidation — is returned whenever the expression contains a bare
    :class:`Hole` (its expansion enumerates every global chain root), an
    unknown call whose arguments are all wildcards (every method is a
    candidate), or a node kind this walker does not recognise
    (conservative default).

    The three sets distinguish *how* the search can depend on a type:

    * ``read_types`` — types whose declared signatures the node mentions
      directly (a variable's type, a resolved member's declaring type, a
      known candidate's signature).  Completing the node never opens
      other types' member lists through them, so they need **no**
      closure — only an edit to the named type itself matters.
    * ``chain_seed_types`` — receiver types of ``.?``/``.?*`` suffix
      holes, whose expansion *does* walk member chains outward.
      Consumers take the forward dependency closure of these (chain
      steps follow member-signature edges, inherited members follow
      supertype edges).
    * ``accepting_arg_types`` — unknown-call argument types, through
      which a newly added method anywhere becomes a candidate without
      being read.  Consumers close them over supertypes and match them
      against :func:`method_param_types` of the method-mutated set.
    """
    reads: Set[str] = set()
    chains: Set[str] = set()
    accepting: Set[str] = set()
    if _collect_seeds(pe, reads, chains, accepting):
        return frozenset(reads), frozenset(chains), frozenset(accepting)
    return None


def _collect_seeds(
    pe: Expr, reads: Set[str], chains: Set[str], accepting: Set[str]
) -> bool:
    """Accumulate seeds for one node; False = universe-wide search."""
    if isinstance(pe, Hole):
        return False
    if isinstance(pe, (Unfilled, Literal)):
        expr_type = pe.type
        if expr_type is not None:
            reads.add(expr_type.full_name)
        return True
    if isinstance(pe, Var):
        reads.add(pe.type.full_name)
        return True
    if isinstance(pe, TypeLiteral):
        reads.add(pe.typedef.full_name)
        return True
    if isinstance(pe, FieldAccess):
        member = pe.member
        if member.declaring_type is not None:
            reads.add(member.declaring_type.full_name)
        reads.add(member.type.full_name)
        return _collect_seeds(pe.base, reads, chains, accepting)
    if isinstance(pe, Call):
        _method_seeds(pe.method, reads)
        return all(
            _collect_seeds(arg, reads, chains, accepting) for arg in pe.args
        )
    if isinstance(pe, SuffixHole):
        base_type = _static_type(pe.base)
        if base_type is None:
            return False
        chains.add(base_type.full_name)
        return _collect_seeds(pe.base, reads, chains, accepting)
    if isinstance(pe, UnknownCall):
        typed = [arg.type for arg in pe.args if arg.type is not None]
        if not typed:
            # all-wildcard call: every method in the universe is a
            # candidate, so no bounded accepting set exists
            return False
        accepting.update(t.full_name for t in typed)
        return all(
            _collect_seeds(arg, reads, chains, accepting) for arg in pe.args
        )
    if isinstance(pe, KnownCall):
        # candidates are resolved at parse time and embedded in the
        # cache key, so newly added methods cannot enter this entry —
        # no accepting sensitivity
        for method in pe.candidates:
            _method_seeds(method, reads)
        return all(
            _collect_seeds(arg, reads, chains, accepting) for arg in pe.args
        )
    if isinstance(pe, (PartialAssign, PartialCompare, Assign, Compare)):
        return (
            _collect_seeds(pe.lhs, reads, chains, accepting)
            and _collect_seeds(pe.rhs, reads, chains, accepting)
        )
    return False


def _static_type(pe: Expr) -> Optional[TypeDef]:
    """The statically known result type of a concrete receiver
    expression, or ``None`` when the node cannot name one (partial
    receivers)."""
    if isinstance(pe, TypeLiteral):
        return pe.typedef
    if isinstance(pe, (Var, Literal, Unfilled)):
        return pe.type
    if isinstance(pe, FieldAccess):
        return pe.member.type
    if isinstance(pe, Call):
        return pe.method.return_type
    return None


def _method_seeds(method, seeds: Set[str]) -> None:
    if method.declaring_type is not None:
        seeds.add(method.declaring_type.full_name)
    for param in method.all_params():
        seeds.add(param.type.full_name)
    if method.return_type is not None:
        seeds.add(method.return_type.full_name)


@dataclass(frozen=True)
class ImpactReport:
    """What editing a set of types can touch (the reverse query).

    ``affected_types`` is the reverse dependency closure of the seeds —
    every type whose completion results can change.  The remaining
    fields project that closure onto the engine's caches and indexes:
    ``root_pool_types`` are the affected types contributing global
    chain roots (their root-pool groups would be re-scored),
    ``index_methods`` counts the method-index entries a patch would
    rewrite, ``partition_peers`` are types sharing an abstract-type
    union-find partition with a seed (oracle-backed rankings), and the
    ``cache_*`` fields — present only when a live cache was consulted —
    count the entries a fine-grained invalidation would actually drop.
    """

    seeds: Tuple[str, ...]
    unknown: Tuple[str, ...]
    universe_size: int
    affected_types: Tuple[str, ...]
    root_pool_types: Tuple[str, ...]
    index_methods: int
    partition_peers: Tuple[str, ...] = ()
    cache_entries: Optional[int] = None
    cache_invalidated: Optional[int] = None

    @property
    def fraction(self) -> float:
        """Affected share of the universe, in [0, 1]."""
        if not self.universe_size:
            return 0.0
        return len(self.affected_types) / self.universe_size

    def to_dict(self) -> dict:
        data = {
            "seeds": list(self.seeds),
            "unknown": list(self.unknown),
            "universe_size": self.universe_size,
            "affected_types": list(self.affected_types),
            "fraction": round(self.fraction, 4),
            "root_pool_types": list(self.root_pool_types),
            "index_methods": self.index_methods,
            "partition_peers": list(self.partition_peers),
        }
        if self.cache_entries is not None:
            data["cache_entries"] = self.cache_entries
            data["cache_invalidated"] = self.cache_invalidated
        return data

    def render(self) -> List[str]:
        """Human-readable lines for the CLI and REPL."""
        lines = [
            "impact of {} ({} affected of {} types, {:.0%})".format(
                ", ".join(self.seeds) or "(nothing)",
                len(self.affected_types),
                self.universe_size,
                self.fraction,
            )
        ]
        for name in self.unknown:
            lines.append("  unknown type: {}".format(name))
        if self.affected_types:
            lines.append("  affected: {}".format(
                _elide(self.affected_types)))
        if self.root_pool_types:
            lines.append("  root-pool groups: {}".format(
                _elide(self.root_pool_types)))
        lines.append("  method-index entries: {}".format(self.index_methods))
        if self.partition_peers:
            lines.append("  abstract-type partition peers: {}".format(
                _elide(self.partition_peers)))
        if self.cache_entries is not None:
            lines.append(
                "  live cache: {} of {} entries would be invalidated".format(
                    self.cache_invalidated, self.cache_entries))
        return lines


def _elide(names: Sequence[str], limit: int = 8) -> str:
    if len(names) <= limit:
        return ", ".join(names)
    return "{}, ... ({} more)".format(
        ", ".join(names[:limit]), len(names) - limit)


class DependencyGraph:
    """The static dependency structure of one universe snapshot.

    Built from a :class:`TypeSystem` at a fixed version
    (``built_version``); consumers rebuild when the version moves.
    Closure queries are memoised per name, so repeated footprint
    computations over a warm engine stay cheap.
    """

    def __init__(
        self, ts: TypeSystem, project: Optional[object] = None
    ) -> None:
        self.ts = ts
        self.built_version = ts.version
        self._forward: Dict[str, Set[str]] = {}
        self._reverse: Dict[str, Set[str]] = {}
        #: supertype-lattice neighbours (both directions), for RA102
        self._lattice: Dict[str, Set[str]] = {}
        self._closure_memo: Dict[str, FrozenSet[str]] = {}
        self._reverse_memo: Dict[str, FrozenSet[str]] = {}
        self._partition_of: Dict[str, Set[int]] = {}
        self._partition_members: Dict[int, Set[str]] = {}
        #: pack-restored closures, still int-encoded (csv of indexes into
        #: ``_pack_strings``); decoded into the memo on first query
        self._packed_closures: Dict[str, str] = {}
        self._packed_reverse: Dict[str, str] = {}
        self._pack_strings: List[str] = []
        self._build()
        if project is not None:
            self._build_partitions(project)
        # stamp the fingerprint memo so later RA104 drift checks have a
        # baseline digest at this version
        ts.fingerprint()

    @classmethod
    def from_snapshot(
        cls,
        ts: TypeSystem,
        forward: Dict[str, Set[str]],
        lattice: Dict[str, Set[str]],
        packed_closures: Dict[str, str],
        packed_reverse: Dict[str, str],
        strings: List[str],
        partition_members: Optional[Dict[int, Set[str]]] = None,
    ) -> "DependencyGraph":
        """Restore a graph from a persisted snapshot (:mod:`repro.pack`)
        instead of re-walking every member signature.

        Edges and the lattice arrive decoded (they are small and every
        query touches them); the closure and reverse-closure memos stay
        int-encoded — csv indexes into ``strings`` — and materialise per
        name on first :meth:`closure` / :meth:`reverse_closure` call, so
        restoring a large universe costs edge decoding, not
        ``O(types * closure size)``.
        """
        self = cls.__new__(cls)
        self.ts = ts
        self.built_version = ts.version
        self._forward = forward
        self._reverse = {name: set() for name in forward}
        for src, dsts in forward.items():
            for dst in dsts:
                self._reverse.setdefault(dst, set()).add(src)
        self._lattice = lattice
        self._closure_memo = {}
        self._reverse_memo = {}
        self._partition_of = {}
        self._partition_members = dict(partition_members or {})
        for root, members in self._partition_members.items():
            for name in members:
                self._partition_of.setdefault(name, set()).add(root)
        self._packed_closures = packed_closures
        self._packed_reverse = packed_reverse
        self._pack_strings = strings
        ts.fingerprint()
        return self

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _edge(self, src: str, dst: str) -> None:
        if src == dst:
            return
        self._forward.setdefault(src, set()).add(dst)
        self._reverse.setdefault(dst, set()).add(src)

    def _build(self) -> None:
        ts = self.ts
        for typedef in ts.all_types():
            name = typedef.full_name
            self._forward.setdefault(name, set())
            self._reverse.setdefault(name, set())
            for parent in ts.immediate_supertypes(typedef):
                self._edge(name, parent.full_name)
                self._lattice.setdefault(name, set()).add(parent.full_name)
                self._lattice.setdefault(parent.full_name, set()).add(name)
            for member in list(typedef.fields) + list(typedef.properties):
                self._edge(name, member.type.full_name)
            for method in typedef.methods:
                for param in method.params:
                    self._edge(name, param.type.full_name)
                if method.return_type is not None:
                    self._edge(name, method.return_type.full_name)

    def _build_partitions(self, project) -> None:
        from .abstract_types import AbstractTypeAnalysis

        analysis = AbstractTypeAnalysis(project)
        for method in self.ts.all_methods():
            receiver = method.declaring_type
            slots = [
                (analysis.param_key(method, index, receiver), param.type)
                for index, param in enumerate(method.all_params())
            ]
            if method.return_type is not None:
                slots.append(
                    (analysis.return_key(method, receiver),
                     method.return_type))
            for key, slot_type in slots:
                root = analysis.uf.find(key)
                if root is None:
                    continue
                name = slot_type.full_name
                self._partition_of.setdefault(name, set()).add(root)
                self._partition_members.setdefault(root, set()).add(name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def forward(self, name: str) -> FrozenSet[str]:
        """Direct dependencies of ``name`` (types it references)."""
        return frozenset(self._forward.get(name, ()))

    def reverse(self, name: str) -> FrozenSet[str]:
        """Direct dependents of ``name`` (types referencing it)."""
        return frozenset(self._reverse.get(name, ()))

    def closure(self, name: str) -> FrozenSet[str]:
        """Forward dependency closure, including ``name`` itself."""
        if name not in self._closure_memo and self._packed_closures:
            encoded = self._packed_closures.pop(name, None)
            if encoded is not None:
                return self._unpack_closure(name, encoded,
                                            self._closure_memo)
        return self._bfs(name, self._forward, self._closure_memo)

    def reverse_closure(self, name: str) -> FrozenSet[str]:
        """Reverse dependency closure, including ``name`` itself."""
        if name not in self._reverse_memo and self._packed_reverse:
            encoded = self._packed_reverse.pop(name, None)
            if encoded is not None:
                return self._unpack_closure(name, encoded,
                                            self._reverse_memo)
        return self._bfs(name, self._reverse, self._reverse_memo)

    def _unpack_closure(
        self,
        name: str,
        encoded: str,
        memo: Dict[str, FrozenSet[str]],
    ) -> FrozenSet[str]:
        """Decode one pack-restored closure (csv of string-table
        indexes) into the memo."""
        strings = self._pack_strings
        result = frozenset(
            strings[int(tok)] for tok in encoded.split(",")
        ) if encoded else frozenset()
        memo[name] = result
        return result

    def _bfs(
        self,
        name: str,
        edges: Dict[str, Set[str]],
        memo: Dict[str, FrozenSet[str]],
    ) -> FrozenSet[str]:
        cached = memo.get(name)
        if cached is not None:
            return cached
        seen: Set[str] = {name}
        frontier = [name]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for neighbour in edges.get(current, ()):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        result = frozenset(seen)
        memo[name] = result
        return result

    def footprint(self, seed_names: Iterable[str]) -> FrozenSet[str]:
        """Union of the forward closures of the seeds: everything a
        query rooted at them can read.  This is what cache entries
        record at population time."""
        result: Set[str] = set()
        for name in seed_names:
            result |= self.closure(name)
        return frozenset(result)

    def dependents_of(self, names: Iterable[str]) -> FrozenSet[str]:
        """Every type whose cached completions an edit to ``names`` can
        invalidate — the static dual of the cache's two-part drop test:
        the reverse closure of the raw names (queries that *read* the
        edited types) plus every type converting to a parameter type of
        the edited types' methods (queries whose unknown-call arguments
        could pick up a newly added method)."""
        result: Set[str] = set()
        for name in names:
            result |= self.reverse_closure(name)
        params = method_param_types(self.ts, names)
        if params:
            for typedef in self.ts.all_types():
                if typedef.full_name in result:
                    continue
                if any(
                    parent.full_name in params
                    for parent in self.ts.supertype_closure(typedef)
                ):
                    result.add(typedef.full_name)
        return frozenset(result)

    def partition_peers(self, name: str) -> FrozenSet[str]:
        """Types sharing an abstract-type partition with ``name``
        (empty without project-backed partition data)."""
        peers: Set[str] = set()
        for root in self._partition_of.get(name, ()):
            peers |= self._partition_members.get(root, set())
        peers.discard(name)
        return frozenset(peers)

    def impact(
        self,
        type_names: Iterable[str],
        cache: Optional[object] = None,
    ) -> ImpactReport:
        """Answer "what can editing these types touch?".

        ``cache`` may be a live
        :class:`~repro.engine.cache.CompletionCache`; when given, the
        report also counts how many of its current entries a
        member-level edit of the seeds would invalidate.
        """
        ts = self.ts
        seeds: List[str] = []
        unknown: List[str] = []
        for name in type_names:
            (seeds if ts.try_get(name) is not None else unknown).append(name)
        affected = set(self.dependents_of(seeds)) if seeds else set()
        root_pool_types = tuple(sorted(
            name for name in affected
            if (lambda t: t is not None and global_roots_of(ts, t))(
                ts.try_get(name))
        ))
        index_methods = 0
        for method in ts.all_methods():
            declaring = method.declaring_type
            if (declaring is not None
                    and declaring.full_name in affected) or any(
                    p.type.full_name in affected for p in method.params):
                index_methods += 1
        peers: Set[str] = set()
        for name in seeds:
            peers |= self.partition_peers(name)
        cache_entries: Optional[int] = None
        cache_invalidated: Optional[int] = None
        if cache is not None and hasattr(cache, "entry_footprints"):
            footprints = cache.entry_footprints()
            cache_entries = len(footprints)
            raw = frozenset(seeds)
            params = method_param_types(ts, seeds)
            cache_invalidated = sum(
                1 for fp in footprints
                if fp is None or fp.affected_by(raw, params)
            )
        return ImpactReport(
            seeds=tuple(seeds),
            unknown=tuple(unknown),
            universe_size=len(ts.all_types()),
            affected_types=tuple(sorted(affected)),
            root_pool_types=root_pool_types,
            index_methods=index_methods,
            partition_peers=tuple(sorted(peers)),
            cache_entries=cache_entries,
            cache_invalidated=cache_invalidated,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        edge_count = sum(len(dsts) for dsts in self._forward.values())
        return {
            "types": float(len(self._forward)),
            "edges": float(edge_count),
            "built_version": float(self.built_version),
            "partitions": float(len(self._partition_members)),
        }


# ----------------------------------------------------------------------
# RA1xx lints
# ----------------------------------------------------------------------
def lint_dependencies(
    ts: TypeSystem,
    graph: Optional[DependencyGraph] = None,
    cache: Optional[object] = None,
    project: Optional[object] = None,
) -> List[Diagnostic]:
    """Dependency-graph diagnostics (docs/ANALYSIS.md):

    * **RA104** — the fingerprint drifted at an unchanged version: some
      code mutated member lists directly, bypassing ``_invalidate()``;
      warm caches and indexes may be serving stale answers.
    * **RA101** — god type: its reverse dependency closure covers more
      than half the (non-primitive) universe, so any edit to it is
      effectively a global invalidation.
    * **RA102** — a dependency cycle between types not related by
      subtyping: mutual member-signature coupling that defeats
      selective invalidation for the whole cycle.
    * **RA103** — blast radius: editing the type would invalidate more
      than half of the live cache's footprinted entries (only checked
      when a populated cache is passed).
    """
    diagnostics: List[Diagnostic] = []
    drift = ts.check_fingerprint_drift()
    if drift is not None:
        stamped, current = drift
        diagnostics.append(diag(
            "RA104",
            "type-system fingerprint drifted at version {} without "
            "invalidation (stamped {}.., now {}..): member lists were "
            "mutated directly, bypassing _invalidate(); warm caches may "
            "be stale".format(ts.version, stamped[:12], current[:12]),
        ))
    if graph is None or graph.built_version != ts.version:
        graph = DependencyGraph(ts, project=project)
    diagnostics.extend(_lint_god_types(ts, graph))
    diagnostics.extend(_lint_cycles(ts, graph))
    diagnostics.extend(_lint_blast_radius(ts, graph, cache))
    return diagnostics


def _candidate_types(ts: TypeSystem) -> List[TypeDef]:
    return [
        t for t in ts.all_types()
        if not t.is_primitive and t is not ts.void_type
    ]


def _lint_god_types(
    ts: TypeSystem, graph: DependencyGraph
) -> List[Diagnostic]:
    candidates = _candidate_types(ts)
    names = {t.full_name for t in candidates}
    if len(candidates) < GOD_TYPE_MIN_UNIVERSE:
        return []
    out: List[Diagnostic] = []
    for typedef in candidates:
        name = typedef.full_name
        if name in _CORE_TYPES:
            continue
        if not (typedef.fields or typedef.properties or typedef.methods):
            continue
        # read-coupling only: the accepting half of dependents_of would
        # flag every type with an Object-taking method, but the cache
        # only pays that cost on *method* edits — the god-type signal is
        # how much of the universe *reads* this type on every edit
        dependents = graph.reverse_closure(name) & names
        fraction = len(dependents) / len(candidates)
        if fraction > GOD_TYPE_FRACTION:
            out.append(diag(
                "RA101",
                "god type: {} of {} types ({:.0%}) transitively depend "
                "on it; any edit is effectively a global "
                "invalidation".format(
                    len(dependents), len(candidates), fraction),
                location=name,
            ))
    return out


def _lint_cycles(
    ts: TypeSystem, graph: DependencyGraph
) -> List[Diagnostic]:
    """Strongly connected components of size >= 2 in the dependency
    graph with subtype-lattice-related edges removed."""
    names = {t.full_name for t in _candidate_types(ts)}
    lattice: Dict[str, FrozenSet[str]] = {}

    def related(left: str, right: str) -> bool:
        for name in (left, right):
            if name not in lattice:
                typedef = ts.try_get(name)
                lattice[name] = frozenset(
                    t.full_name for t in ts.supertype_closure(typedef)
                ) if typedef is not None else frozenset()
        return right in lattice[left] or left in lattice[right]

    edges: Dict[str, List[str]] = {}
    for src in names:
        edges[src] = [
            dst for dst in graph.forward(src)
            if dst in names and not related(src, dst)
        ]
    out: List[Diagnostic] = []
    for component in _sccs(edges):
        if len(component) < 2:
            continue
        members = sorted(component)
        out.append(diag(
            "RA102",
            "dependency cycle outside the subtype lattice: {} — a "
            "member edit to any of them invalidates the whole "
            "cycle".format(_elide(members, 6)),
            location=members[0],
        ))
    return out


def _sccs(edges: Dict[str, List[str]]) -> List[List[str]]:
    """Iterative Tarjan strongly-connected components."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for start in sorted(edges):
        if start in index_of:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbours = edges.get(node, ())
            while child_index < len(neighbours):
                neighbour = neighbours[child_index]
                child_index += 1
                if neighbour not in index_of:
                    work[-1] = (node, child_index)
                    work.append((neighbour, 0))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _lint_blast_radius(
    ts: TypeSystem,
    graph: DependencyGraph,
    cache: Optional[object],
) -> List[Diagnostic]:
    if cache is None or not hasattr(cache, "entry_footprints"):
        return []
    footprints = [
        fp for fp in cache.entry_footprints() if fp is not None
    ]
    if len(footprints) < BLAST_MIN_ENTRIES:
        return []
    reads_incidence: Dict[str, Set[int]] = {}
    accepting_incidence: Dict[str, Set[int]] = {}
    for entry_index, footprint in enumerate(footprints):
        for name in footprint.reads:
            reads_incidence.setdefault(name, set()).add(entry_index)
        for name in footprint.accepting:
            accepting_incidence.setdefault(name, set()).add(entry_index)
    out: List[Diagnostic] = []
    for typedef in _candidate_types(ts):
        name = typedef.full_name
        if name in _CORE_TYPES:
            continue
        hit: Set[int] = set(reads_incidence.get(name, ()))
        for param_name in method_param_types(ts, [name]):
            hit |= accepting_incidence.get(param_name, set())
        fraction = len(hit) / len(footprints)
        if fraction > BLAST_FRACTION:
            out.append(diag(
                "RA103",
                "editing this type would invalidate {} of {} footprinted "
                "cache entries ({:.0%})".format(
                    len(hit), len(footprints), fraction),
                location=name,
            ))
    return out
