"""Query context: what is in scope at the point of a completion query.

The paper's algorithm "has access to static information about the
surrounding code and libraries: the types of the values used in the
expression, the locals in scope, and the visible library methods and
fields".  :class:`Context` packages exactly that.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..codemodel.members import Field, Method
from ..codemodel.types import TypeDef
from ..codemodel.typesystem import TypeSystem
from ..lang.ast import Call, Expr, FieldAccess, TypeLiteral, Var


def global_roots_of(ts: TypeSystem, typedef: TypeDef) -> List[Expr]:
    """Chain-root expressions contributed by one type: its static
    fields/properties and zero-argument static methods (Sec. 4.2).

    Shared by :meth:`Context.global_roots` (whole-universe sweep) and the
    completion cache's fine-grained root-pool patching, which regenerates
    just the groups of edited types.
    """
    roots: List[Expr] = []
    static_fields, static_methods = ts.static_members(typedef)
    for field in static_fields:
        roots.append(FieldAccess(TypeLiteral(typedef), field))
    for method in static_methods:
        if (
            not method.params
            and method.return_type is not None
            and not method.is_constructor
        ):
            roots.append(Call(method, ()))
    return roots


class Context:
    """The static scope of a query.

    Parameters
    ----------
    type_system:
        The library universe to search.
    locals:
        Mapping from local-variable name to its declared type.  If
        ``this_type`` is given, a ``this`` local is added automatically.
    this_type:
        The type of ``this`` (``None`` inside a static method or at top
        level).
    enclosing_type:
        The type whose static methods are "in scope" (callable without
        qualification); defaults to ``this_type``.
    """

    def __init__(
        self,
        type_system: TypeSystem,
        locals: Optional[Dict[str, TypeDef]] = None,
        this_type: Optional[TypeDef] = None,
        enclosing_type: Optional[TypeDef] = None,
    ) -> None:
        self.ts = type_system
        self.locals: Dict[str, TypeDef] = dict(locals or {})
        self.this_type = this_type
        if this_type is not None:
            self.locals.setdefault("this", this_type)
        self.enclosing_type = enclosing_type or this_type
        self._methods_by_name: Optional[Dict[str, List[Method]]] = None
        self._global_roots: Optional[Tuple[Expr, ...]] = None

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def has_local(self, name: str) -> bool:
        return name in self.locals

    def local_var(self, name: str) -> Var:
        return Var(name, self.locals[name])

    def local_vars(self) -> List[Var]:
        """Live locals (including ``this``), in declaration order."""
        return [Var(name, type) for name, type in self.locals.items()]

    def global_roots(self) -> Tuple[Expr, ...]:
        """Globals usable as chain roots: static fields/properties and
        zero-argument static methods of every visible type (Sec. 4.2:
        "global (static field or zero-argument static method)")."""
        if self._global_roots is None:
            roots: List[Expr] = []
            for typedef in self.ts.all_types():
                roots.extend(global_roots_of(self.ts, typedef))
            self._global_roots = tuple(roots)
        return self._global_roots

    def chain_roots(self) -> List[Expr]:
        """Everything a ``?`` hole may start from: locals then globals."""
        return list(self.local_vars()) + list(self.global_roots())

    # ------------------------------------------------------------------
    # methods
    # ------------------------------------------------------------------
    def methods_named(self, name: str) -> List[Method]:
        """Every visible method with the given simple name (used to resolve
        bare-name ``KnownCall`` queries like ``Distance(point, ?)``)."""
        if self._methods_by_name is None:
            table: Dict[str, List[Method]] = {}
            for method in self.ts.all_methods():
                table.setdefault(method.name, []).append(method)
            self._methods_by_name = table
        return list(self._methods_by_name.get(name, ()))

    def is_in_scope_static(self, method: Method) -> bool:
        """Static methods of the enclosing type are callable without
        qualification, "just like instance methods with this as the
        receiver" — the ranking's in-scope-static feature."""
        if not method.is_static or self.enclosing_type is None:
            return False
        if method.declaring_type is self.enclosing_type:
            return True
        declaring = method.declaring_type
        return declaring is not None and self.ts.implicitly_converts(
            self.enclosing_type, declaring
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def with_locals(self, locals: Dict[str, TypeDef]) -> "Context":
        """A copy of this context with a different local-variable set."""
        merged = dict(locals)
        return Context(
            self.ts,
            locals=merged,
            this_type=self.this_type,
            enclosing_type=self.enclosing_type,
        )

    def iter_visible_types(self) -> Iterator[TypeDef]:
        yield from self.ts.all_types()
