"""Stream-sanitizer probes: exercise the engine with assertions on.

``repro lint --sanitize`` wants a dynamic check to complement the static
passes: run a handful of representative queries over the universe with the
:func:`~repro.engine.streams.sanitize_streams` invariant checker enabled,
and report any :class:`~repro.errors.StreamInvariantViolation` as an
``RA030`` diagnostic.  A violation means a combinator (or a cost function
feeding one) emitted scores out of order — every downstream ranking
guarantee is void, so it is an error-severity finding.

The probes cover each stream shape the engine builds: a bare ``?`` hole
(``best_first`` chains), a ``.?*m`` suffix, an unknown call
(``ordered_product`` + ``merge_nested``), a known call (``merge``), and an
assignment (``reorder_with_slack``) — each run twice, once unbounded-ish
and once under a tight step budget to exercise truncation paths.
"""

from __future__ import annotations

from typing import List, Optional

from ..codemodel.types import TypeDef
from ..codemodel.typesystem import TypeSystem
from ..errors import StreamInvariantViolation
from ..lang.ast import Var
from ..lang.partial import Hole, PartialAssign, SuffixHole, UnknownCall
from .diagnostics import Diagnostic, diag
from .scope import Context

#: results pulled per probe; enough to drive every combinator several
#: rounds without making lint slow on large universes
_PROBE_RESULTS = 25
#: the tight budget used by the truncation variant of each probe
_PROBE_BUDGET_STEPS = 200


def run_sanitizer_probes(
    engine,
    ts: Optional[TypeSystem] = None,
) -> List[Diagnostic]:
    """Run the probe queries with the sanitizer on; RA030 per violation."""
    from ..engine.budget import QueryBudget
    from ..engine.streams import sanitize_streams

    ts = ts or engine.ts
    context = _probe_context(ts)
    probes = _build_probes(context)
    diagnostics: List[Diagnostic] = []
    with sanitize_streams():
        for label, pe in probes:
            for budget in (None, QueryBudget(max_steps=_PROBE_BUDGET_STEPS)):
                try:
                    engine.complete(pe, context, n=_PROBE_RESULTS,
                                    budget=budget)
                except StreamInvariantViolation as violation:
                    diagnostics.append(diag(
                        "RA030",
                        "probe {!r}{}: {}".format(
                            label,
                            " (budgeted)" if budget is not None else "",
                            violation),
                        location=violation.combinator,
                    ))
                    break  # one report per probe is enough
    return diagnostics


def _probe_context(ts: TypeSystem) -> Context:
    """A scope over the universe's first few member-bearing types."""
    locals = {}
    names = iter(["a", "b", "c"])
    for typedef in ts.all_types():
        if typedef.is_primitive or typedef.kind.value == "interface":
            continue
        if not (typedef.fields or typedef.properties or typedef.methods):
            continue
        try:
            locals[next(names)] = typedef
        except StopIteration:
            break
    return Context(ts, locals=locals)


def _build_probes(context: Context):
    """(label, partial expression) pairs matched to the available scope."""
    probes = [("?", Hole())]
    local_vars = [
        Var(name, typedef) for name, typedef in context.locals.items()
    ]
    if local_vars:
        probes.append((
            "a.?*m", SuffixHole(local_vars[0], methods=True, star=True)
        ))
        probes.append((
            "?({a})", UnknownCall((local_vars[0],))
        ))
        probes.append((
            "? := ?", PartialAssign(Hole(), Hole())
        ))
    if len(local_vars) >= 2:
        probes.append((
            "?({a, b})", UnknownCall((local_vars[0], local_vars[1]))
        ))
    known = _known_call_probe(context)
    if known is not None:
        probes.append(known)
    return probes


def _known_call_probe(context: Context):
    """A ``Name(?, ...)`` probe over the first small-arity method, driving
    the ``merge`` combinator across its overload streams."""
    from ..lang.partial import KnownCall

    for method in context.ts.all_methods():
        if method.is_constructor or not 1 <= method.arity <= 2:
            continue
        candidates = tuple(context.methods_named(method.name))
        args = tuple(Hole() for _ in range(method.arity))
        label = "{}({})".format(method.name, ", ".join("?" for _ in args))
        return label, KnownCall(candidates, args)
    return None
