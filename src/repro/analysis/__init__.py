"""Static analyses: scope contexts, union-find, abstract type inference,
and the diagnostics passes behind ``repro lint`` (docs/ANALYSIS.md)."""

from .abstract_types import AbstractTypeAnalysis
from .codemodel_lint import lint_type_system
from .deps import (
    DependencyGraph,
    ImpactReport,
    QueryFootprint,
    expand_mutations,
    footprint_seeds,
    lint_dependencies,
    method_param_types,
)
from .diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    diag,
    has_errors,
    sort_diagnostics,
)
from .preflight import PreflightReport, preflight_query
from .sanitize import run_sanitizer_probes
from .scope import Context, global_roots_of
from .unionfind import UnionFind

__all__ = [
    "AbstractTypeAnalysis",
    "CODES",
    "Context",
    "DependencyGraph",
    "Diagnostic",
    "ImpactReport",
    "PreflightReport",
    "QueryFootprint",
    "Severity",
    "UnionFind",
    "diag",
    "expand_mutations",
    "footprint_seeds",
    "global_roots_of",
    "has_errors",
    "lint_dependencies",
    "method_param_types",
    "lint_type_system",
    "preflight_query",
    "run_sanitizer_probes",
    "sort_diagnostics",
]
