"""Static analyses: scope contexts, union-find, abstract type inference,
and the diagnostics passes behind ``repro lint`` (docs/ANALYSIS.md)."""

from .abstract_types import AbstractTypeAnalysis
from .codemodel_lint import lint_type_system
from .diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    diag,
    has_errors,
    sort_diagnostics,
)
from .preflight import PreflightReport, preflight_query
from .sanitize import run_sanitizer_probes
from .scope import Context
from .unionfind import UnionFind

__all__ = [
    "AbstractTypeAnalysis",
    "CODES",
    "Context",
    "Diagnostic",
    "PreflightReport",
    "Severity",
    "UnionFind",
    "diag",
    "has_errors",
    "lint_type_system",
    "preflight_query",
    "run_sanitizer_probes",
    "sort_diagnostics",
]
