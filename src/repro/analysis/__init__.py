"""Static analyses: scope contexts, union-find, abstract type inference."""

from .abstract_types import AbstractTypeAnalysis
from .scope import Context
from .unionfind import UnionFind

__all__ = ["AbstractTypeAnalysis", "Context", "UnionFind"]
