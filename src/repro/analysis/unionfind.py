"""Union-find (disjoint sets) keyed by arbitrary hashable values.

The abstract-type inference of Sec. 4.1 reduces to unification of atomic
terms: "As all constraints are equality on atoms, the standard unification
algorithm can be implemented using union-find."  This is that union-find:
path compression + union by rank, with a key registry so callers can use
tuples like ``("local", impl_id, "appLocation")`` directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional


class UnionFind:
    """Disjoint-set forest over hashable keys."""

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._parent: List[int] = []
        self._rank: List[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    def add(self, key: Hashable) -> int:
        """Ensure ``key`` has a set; return its element id."""
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        element = len(self._parent)
        self._ids[key] = element
        self._parent.append(element)
        self._rank.append(0)
        return element

    def find(self, key: Hashable) -> Optional[int]:
        """Root id of ``key``'s set, or ``None`` if never added."""
        element = self._ids.get(key)
        if element is None:
            return None
        return self._find_root(element)

    def _find_root(self, element: int) -> int:
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # path compression
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, left: Hashable, right: Hashable) -> int:
        """Merge the sets of two keys (adding them if new); returns the new
        root id."""
        left_root = self._find_root(self.add(left))
        right_root = self._find_root(self.add(right))
        if left_root == right_root:
            return left_root
        if self._rank[left_root] < self._rank[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        if self._rank[left_root] == self._rank[right_root]:
            self._rank[left_root] += 1
        return left_root

    def same(self, left: Hashable, right: Hashable) -> bool:
        """True iff both keys exist and share a set."""
        left_root = self.find(left)
        right_root = self.find(right)
        return left_root is not None and left_root == right_root

    def groups(self) -> Dict[int, List[Hashable]]:
        """Root id -> members, for inspection and tests."""
        result: Dict[int, List[Hashable]] = {}
        for key, element in self._ids.items():
            result.setdefault(self._find_root(element), []).append(key)
        return result
