"""Machine-readable diagnostics for the static analyses.

Every analysis pass (``codemodel_lint``, ``preflight``, the stream
sanitizer probes) reports its findings as :class:`Diagnostic` values with
a *stable* ``RA0xx`` code, so tools — the ``repro lint`` CLI, the CI lint
job, editor integrations — can match on codes rather than message text.
The full catalogue lives in ``docs/ANALYSIS.md``; the :data:`CODES` table
here is the single in-code source of truth.

Severities:

* ``error`` — the universe or query is broken: queries over it can hang,
  mis-rank, or provably return nothing.  ``repro lint`` exits 1.
* ``warning`` — suspicious but survivable (e.g. an over-merged abstract
  type partition that degrades ranking quality).
* ``info`` — advisory (orphan types, ranking terms that cannot fire).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is; ordered for sorting and exit codes."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def order(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: code -> (default severity, one-line description).  Codes are append-only:
#: never renumber or reuse one (docs/ANALYSIS.md mirrors this table).
CODES: Dict[str, Tuple[Severity, str]] = {
    "RA001": (Severity.ERROR, "cycle in the declared-supertype graph"),
    "RA002": (Severity.ERROR, "malformed supertype edge (non-interface in "
                              "interface list, or interface/primitive base)"),
    "RA003": (Severity.ERROR, "duplicate method signature on one type"),
    "RA004": (Severity.ERROR, "type does not reach System.Object"),
    "RA005": (Severity.INFO, "orphan type: unreferenced and memberless"),
    "RA006": (Severity.ERROR, "method index inconsistent with the registry"),
    "RA007": (Severity.WARNING, "abstract-type partition over-merged"),
    "RA020": (Severity.ERROR, "query is provably unsatisfiable"),
    "RA021": (Severity.ERROR, "unknown type in the query scope"),
    "RA022": (Severity.ERROR, "partial expression does not parse"),
    "RA023": (Severity.ERROR, "call query matches no method"),
    "RA024": (Severity.INFO, "ranking term cannot influence this query"),
    "RA030": (Severity.ERROR, "stream combinator violated score ordering"),
    "RA101": (Severity.WARNING, "god type: reverse dependency closure "
                                "covers most of the universe"),
    "RA102": (Severity.INFO, "dependency cycle outside the subtype "
                             "lattice"),
    "RA103": (Severity.WARNING, "editing this type would invalidate most "
                                "of the completion cache"),
    "RA104": (Severity.ERROR, "type-system fingerprint drifted without "
                              "invalidation (member lists mutated "
                              "directly)"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, severity, message and location.

    ``location`` is a dotted name (a type, method or scope entry) and
    ``span`` an optional ``(start, end)`` character range into the linted
    query string — both may be ``None`` for universe-wide findings.
    """

    code: str
    severity: Severity
    message: str
    location: Optional[str] = None
    span: Optional[Tuple[int, int]] = None

    def to_dict(self) -> dict:
        """JSON-ready form, used by ``repro lint --json``."""
        payload = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.location is not None:
            payload["location"] = self.location
        if self.span is not None:
            payload["span"] = list(self.span)
        return payload

    def render(self) -> str:
        """The human-readable one-liner used by the CLI and REPL."""
        where = " [{}]".format(self.location) if self.location else ""
        return "{} {}:{} {}".format(
            self.code, self.severity.value, where, self.message
        ).replace(":  ", ": ")

    def sort_key(self) -> tuple:
        return (self.severity.order, self.code, self.location or "",
                self.message)


def diag(
    code: str,
    message: str,
    location: Optional[str] = None,
    span: Optional[Tuple[int, int]] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting the severity from :data:`CODES`."""
    if severity is None:
        severity = CODES[code][0]
    return Diagnostic(code, severity, message, location, span)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: errors first, then by code and location."""
    return sorted(diagnostics, key=Diagnostic.sort_key)
