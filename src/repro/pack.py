"""Persistent universe packs: on-disk index artifacts for cold starts.

A **pack** snapshots a universe *and* the derived state the engine
would otherwise recompute on every process start — the
:class:`~repro.engine.index.MethodIndex` parameter buckets, every
:class:`~repro.engine.index.ReachabilityIndex` walk, the whole-universe
:class:`~repro.analysis.deps.DependencyGraph` (edges, lattice, closure
memos, abstract-type partitions) — so ``load_pack`` answers the first
query in milliseconds where a rebuild takes seconds (the ``coldstart/*``
bench battery measures the ratio).

File format (``docs/ARTIFACTS.md``): exactly two ``\\n``-separated
lines of UTF-8 JSON.

* **Line 1 — header**: ``{"format": "repro-pack", "version": 1,
  "checksum": "<sha256 of the body line's bytes>", "meta": {...}}``.
  ``meta`` records the universe name, its
  :meth:`~repro.codemodel.typesystem.TypeSystem.fingerprint`, and size
  counts.  :func:`inspect_pack` reads only this line.
* **Line 2 — body**: the ``repro-universe`` document plus the derived
  sections, all bulky integer sequences comma-joined into strings
  (JSON scans strings far faster than it tokenises numbers, and the
  per-entry payloads decode lazily on first use).

Integrity model:

* byte damage — truncation, checksum mismatch, malformed JSON, an
  undecodable universe — raises :class:`~repro.errors.PackCorruptError`
  (stable code ``pack_corrupt``);
* a pack whose recomputed universe fingerprint disagrees with its
  recorded one, or with the caller's ``expect_fingerprint``, raises
  :class:`~repro.errors.PackStaleError` (stable code ``pack_stale``).

Both codes live in the canonical table in :mod:`repro.errors`, so the
CLI (``repro pack verify``) and the serving layer (``repro serve
--pack``) refuse a bad artifact with the same machine-readable
identity.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from .codemodel.typesystem import TypeSystem
from .engine.completer import CompletionEngine, EngineConfig
from .engine.index import MethodIndex, ReachabilityIndex
from .errors import PackCorruptError, PackStaleError
from .ide.workspace import Workspace
from .serialize import dump_type_system, load_type_system

PACK_FORMAT = "repro-pack"
PACK_VERSION = 1

__all__ = [
    "PACK_FORMAT",
    "PACK_VERSION",
    "build_pack",
    "inspect_pack",
    "load_pack",
    "verify_pack",
]


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------

class _Strings:
    """An interning string table; every name in the derived sections is
    stored as its index (``sid``) here."""

    def __init__(self) -> None:
        self.table: List[str] = []
        self._ids: Dict[str, int] = {}

    def sid(self, name: str) -> int:
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        index = len(self.table)
        self._ids[name] = index
        self.table.append(name)
        return index

    def csv(self, names) -> str:
        return ",".join(str(self.sid(name)) for name in names)


def _materialize(workspace: Workspace):
    """Force every derived structure a pack snapshots to exist."""
    engine = workspace.engine
    engine.index.refresh()
    reach = engine.reachability
    for typedef in workspace.ts.all_types():
        reach.reachable(typedef, False)
        reach.reachable(typedef, True)
    if workspace.project is not None:
        # partitions need the project; the engine's lazy graph builds
        # without one, so construct (and install) a partitioned graph
        from .analysis.deps import DependencyGraph

        graph = DependencyGraph(workspace.ts, project=workspace.project)
        engine._dep_graph = graph
    else:
        graph = engine.dependency_graph()
    for name in list(graph._forward):
        graph.closure(name)
        graph.reverse_closure(name)
    return engine.index, reach, graph


def _encode_body(workspace: Workspace) -> Dict[str, Any]:
    ts = workspace.ts
    index, reach, graph = _materialize(workspace)
    strings = _Strings()
    # fix sids for all types first so the common case is a small int
    for typedef in ts.all_types():
        strings.sid(typedef.full_name)

    method_ord: Dict[int, int] = {
        id(method): ordinal for ordinal, method in enumerate(ts.all_methods())
    }
    buckets = {
        str(strings.sid(type_name)): ",".join(
            str(method_ord[id(method)]) for method in bucket)
        for type_name, bucket in index._by_exact_type.items()
    }

    walks: Dict[str, List[str]] = {}
    for (source, allow), distances in reach._cache.items():
        dists = ",".join(
            "{},{}".format(strings.sid(name), dist)
            for name, dist in distances.items()
        )
        fp = strings.csv(sorted(reach._walk_fp.get((source, allow), ())))
        walks["{}:{}".format(strings.sid(source), 1 if allow else 0)] = [
            dists, fp]

    deps = {
        "forward": {
            str(strings.sid(src)): strings.csv(sorted(dsts))
            for src, dsts in graph._forward.items()
        },
        "lattice": {
            str(strings.sid(src)): strings.csv(sorted(dsts))
            for src, dsts in graph._lattice.items()
        },
        "closures": {
            str(strings.sid(name)): strings.csv(sorted(closure))
            for name, closure in graph._closure_memo.items()
        },
        "rclosures": {
            str(strings.sid(name)): strings.csv(sorted(closure))
            for name, closure in graph._reverse_memo.items()
        },
        "partitions": {
            str(root): strings.csv(sorted(members))
            for root, members in graph._partition_members.items()
        },
    }

    return {
        "universe": dump_type_system(ts),
        "strings": strings.table,
        "index": buckets,
        "reach": walks,
        "deps": deps,
        "max_depth": reach.max_depth,
    }


def build_pack(workspace: Workspace, path: str) -> Dict[str, Any]:
    """Snapshot ``workspace`` (universe + fully materialised derived
    state) into a pack file at ``path``; returns the header dict.

    The body bytes are deterministic for a given universe — no
    timestamps — so identical universes produce identical checksums.
    """
    body = _encode_body(workspace)
    body_bytes = json.dumps(
        body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    from . import __version__

    header = {
        "format": PACK_FORMAT,
        "version": PACK_VERSION,
        "checksum": hashlib.sha256(body_bytes).hexdigest(),
        "meta": {
            "name": workspace.name,
            "fingerprint": workspace.ts.fingerprint(),
            "created_by": "repro {}".format(__version__),
            "types": len(workspace.ts.all_types()),
            "methods": sum(1 for _ in workspace.ts.all_methods()),
            "walks": len(body["reach"]),
            "max_depth": body["max_depth"],
        },
    }
    with open(path, "wb") as handle:
        handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
        handle.write(b"\n")
        handle.write(body_bytes)
    return header


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

def _read_lines(path: str) -> Tuple[Dict[str, Any], bytes]:
    """Read and structurally validate a pack: returns the parsed header
    and the raw (checksum-verified) body bytes."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise PackCorruptError(
            "cannot read pack {!r}: {}".format(path, exc), path=path)
    newline = raw.find(b"\n")
    if newline < 0:
        raise PackCorruptError(
            "truncated pack {!r}: missing body line".format(path), path=path)
    header_bytes, body_bytes = raw[:newline], raw[newline + 1:]
    try:
        header = json.loads(header_bytes)
    except ValueError:
        raise PackCorruptError(
            "malformed pack header in {!r}".format(path), path=path)
    if not isinstance(header, dict) or header.get("format") != PACK_FORMAT:
        raise PackCorruptError(
            "{!r} is not a repro-pack artifact".format(path), path=path)
    if header.get("version") != PACK_VERSION:
        raise PackCorruptError(
            "unsupported pack version {!r} in {!r} (this build reads "
            "version {})".format(header.get("version"), path, PACK_VERSION),
            path=path)
    digest = hashlib.sha256(body_bytes).hexdigest()
    if digest != header.get("checksum"):
        raise PackCorruptError(
            "checksum mismatch in {!r}: body does not match the recorded "
            "digest".format(path), path=path)
    return header, body_bytes


def inspect_pack(path: str) -> Dict[str, Any]:
    """Parse and return only the header (no body decode, no checksum —
    use :func:`verify_pack` to actually vouch for the artifact)."""
    try:
        with open(path, "rb") as handle:
            header_bytes = handle.readline()
    except OSError as exc:
        raise PackCorruptError(
            "cannot read pack {!r}: {}".format(path, exc), path=path)
    try:
        header = json.loads(header_bytes)
    except ValueError:
        raise PackCorruptError(
            "malformed pack header in {!r}".format(path), path=path)
    if not isinstance(header, dict) or header.get("format") != PACK_FORMAT:
        raise PackCorruptError(
            "{!r} is not a repro-pack artifact".format(path), path=path)
    return header


def _load_universe(header: Dict[str, Any], body_bytes: bytes,
                   path: str) -> Tuple[Dict[str, Any], TypeSystem]:
    try:
        body = json.loads(body_bytes)
    except ValueError:
        raise PackCorruptError(
            "malformed pack body in {!r}".format(path), path=path)
    if not isinstance(body, dict) or "universe" not in body:
        raise PackCorruptError(
            "pack body in {!r} is missing the universe section".format(path),
            path=path)
    try:
        ts = load_type_system(body["universe"])
    except Exception as exc:
        raise PackCorruptError(
            "undecodable universe in {!r}: {}".format(path, exc), path=path)
    return body, ts


def _check_fingerprint(header: Dict[str, Any], ts: TypeSystem, path: str,
                       expect_fingerprint: Optional[str]) -> str:
    actual = ts.fingerprint()
    recorded = header.get("meta", {}).get("fingerprint")
    if recorded != actual:
        raise PackStaleError(
            "stale pack {!r}: recorded universe fingerprint {} but the "
            "loaded universe hashes to {}; rebuild the pack".format(
                path, recorded, actual),
            path=path, expected=recorded, actual=actual)
    if expect_fingerprint is not None and expect_fingerprint != actual:
        raise PackStaleError(
            "stale pack {!r}: caller expects universe fingerprint {} but "
            "the pack holds {}; rebuild the pack".format(
                path, expect_fingerprint, actual),
            path=path, expected=expect_fingerprint, actual=actual)
    return actual


def verify_pack(path: str,
                expect_fingerprint: Optional[str] = None) -> Dict[str, Any]:
    """Full integrity check without building a workspace: header shape,
    body checksum, universe decodability, and fingerprint agreement.
    Returns the header; raises :class:`~repro.errors.PackCorruptError`
    or :class:`~repro.errors.PackStaleError`."""
    header, body_bytes = _read_lines(path)
    _, ts = _load_universe(header, body_bytes, path)
    _check_fingerprint(header, ts, path, expect_fingerprint)
    return header


def _decode_derived(ts: TypeSystem, body: Dict[str, Any], path: str):
    """Build the engine's derived structures from the body's encoded
    sections (raises :class:`PackCorruptError` on any malformed
    section)."""
    from .analysis.deps import DependencyGraph

    try:
        strings: List[str] = body["strings"]
        all_methods = list(ts.all_methods())
        buckets = {
            strings[int(sid)]: [
                all_methods[int(tok)] for tok in csv.split(",")
            ] if csv else []
            for sid, csv in body["index"].items()
        }
        packed_walks: Dict[Tuple[str, bool], Tuple[str, str]] = {}
        for key, (dists, fp) in body["reach"].items():
            sid, _, allow = key.partition(":")
            packed_walks[(strings[int(sid)], allow == "1")] = (dists, fp)
        deps = body["deps"]

        def _edges(section: Dict[str, str]) -> Dict[str, set]:
            return {
                strings[int(sid)]: (
                    {strings[int(tok)] for tok in csv.split(",")}
                    if csv else set()
                )
                for sid, csv in section.items()
            }

        forward = _edges(deps["forward"])
        lattice = {k: v for k, v in _edges(deps["lattice"]).items() if v}
        packed_closures = {
            strings[int(sid)]: csv for sid, csv in deps["closures"].items()
        }
        packed_reverse = {
            strings[int(sid)]: csv for sid, csv in deps["rclosures"].items()
        }
        partitions = {
            int(root): (
                {strings[int(tok)] for tok in csv.split(",")}
                if csv else set()
            )
            for root, csv in deps["partitions"].items()
        }
        max_depth = int(body["max_depth"])
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise PackCorruptError(
            "undecodable derived sections in {!r}: {}".format(path, exc),
            path=path)

    index = MethodIndex.from_snapshot(ts, buckets)
    reach = ReachabilityIndex.from_snapshot(
        ts, max_depth, packed_walks, strings)
    graph = DependencyGraph.from_snapshot(
        ts, forward, lattice, packed_closures, packed_reverse, strings,
        partition_members=partitions)
    return index, reach, graph


def load_pack(
    path: str,
    config: Optional[EngineConfig] = None,
    cache_enabled: Optional[bool] = None,
    expect_fingerprint: Optional[str] = None,
) -> Workspace:
    """Open a pack as a ready :class:`~repro.ide.workspace.Workspace`.

    Verifies the artifact first (checksum, then fingerprint — see the
    module docstring for which error each failure raises), then restores
    the engine around the snapshot: parameter buckets eagerly, walks and
    dependency closures lazily (decoded per entry on first use), so the
    whole call stays proportional to universe *text* size, not derived
    state size.

    ``config`` seeds the restored engine; note the pack's recorded
    ``max_depth`` wins over ``config.max_chain_depth`` for the restored
    walks (they were computed at that depth).
    """
    header, body_bytes = _read_lines(path)
    body, ts = _load_universe(header, body_bytes, path)
    _check_fingerprint(header, ts, path, expect_fingerprint)
    index, reach, graph = _decode_derived(ts, body, path)
    engine = CompletionEngine(ts, config, index=index, reachability=reach)
    engine._dep_graph = graph
    name = header.get("meta", {}).get("name") or "pack"
    return Workspace(ts, name=name, engine=engine,
                     cache_enabled=cache_enabled)
