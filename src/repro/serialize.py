"""JSON (de)serialization of universes and corpora.

``dump_type_system``/``load_type_system`` round-trip a whole library
universe; ``dump_project``/``load_project`` additionally carry the client
code (method bodies, statements, expressions).  This is how a corpus
extracted elsewhere (say, by a real .NET metadata reader) would be fed to
the engine, and it lets test fixtures be checked in as data.

Members are referenced by stable keys: fields by ``(declaring, name)``,
methods by ``(declaring, name, parameter type names, static)`` so overloads
resolve unambiguously.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .codemodel.members import Field, Method, Parameter, Property
from .codemodel.types import TypeDef, TypeKind
from .codemodel.typesystem import TypeSystem
from .corpus.program import (
    AssignStatement,
    ExprStatement,
    IfStatement,
    LocalDecl,
    MethodImpl,
    Project,
    ReturnStatement,
    Statement,
)
from .lang.ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Unfilled,
    Var,
)

_VOID = "__void__"


# ---------------------------------------------------------------------------
# type systems
# ---------------------------------------------------------------------------
def dump_type_system(ts: TypeSystem) -> Dict[str, Any]:
    """Serialise every non-builtin type (builtins are re-created by the
    ``TypeSystem`` constructor on load)."""
    builtin = _builtin_names()
    types: List[Dict[str, Any]] = []
    for typedef in ts.all_types():
        types.append(_dump_type(typedef, include_members=True))
    return {"format": "repro-universe", "version": 1, "types": [
        t for t in types if t["full_name"] not in builtin or t["members_only"]
    ]}


def _builtin_names() -> Dict[str, TypeDef]:
    fresh = TypeSystem()
    return {t.full_name: t for t in fresh.all_types()}


def _dump_type(typedef: TypeDef, include_members: bool) -> Dict[str, Any]:
    builtin = typedef.full_name in _BUILTIN_CACHE
    data: Dict[str, Any] = {
        "full_name": typedef.full_name,
        "members_only": builtin,
    }
    if not builtin:
        data.update(
            kind=typedef.kind.value,
            base=typedef.base.full_name if typedef.base else None,
            interfaces=[i.full_name for i in typedef.interfaces],
            comparable=typedef.comparable,
            treat_as_primitive=typedef.treat_as_primitive,
        )
    if include_members:
        data["fields"] = [_dump_field(f) for f in typedef.fields]
        data["properties"] = [_dump_field(p) for p in typedef.properties]
        data["methods"] = [_dump_method(m) for m in typedef.methods]
    return data


_BUILTIN_CACHE = _builtin_names()


def _dump_field(field: Field) -> Dict[str, Any]:
    return {
        "name": field.name,
        "type": field.type.full_name,
        "static": field.is_static,
    }


def _dump_method(method: Method) -> Dict[str, Any]:
    return {
        "name": method.name,
        "returns": method.return_type.full_name if method.return_type else _VOID,
        "params": [[p.name, p.type.full_name] for p in method.params],
        "static": method.is_static,
        "constructor": method.is_constructor,
        "overrides": _method_key(method.overrides) if method.overrides else None,
    }


def _method_key(method: Method) -> List[Any]:
    return [
        method.declaring_type.full_name,
        method.name,
        [p.type.full_name for p in method.params],
        method.is_static,
    ]


def load_type_system(data: Dict[str, Any]) -> TypeSystem:
    """Rebuild a universe from :func:`dump_type_system` output."""
    if data.get("format") != "repro-universe":
        raise ValueError("not a repro universe document")
    ts = TypeSystem()
    entries = data["types"]
    # pass 1: declare all new types (topologically: bases may come later,
    # so create shells first, then wire bases/interfaces)
    shells: Dict[str, TypeDef] = {}
    for entry in entries:
        full_name = entry["full_name"]
        if entry["members_only"]:
            continue
        namespace, _, name = full_name.rpartition(".")
        shells[full_name] = TypeDef(
            name,
            namespace,
            kind=TypeKind(entry["kind"]),
            comparable=entry["comparable"],
            treat_as_primitive=entry["treat_as_primitive"],
        )
        ts.register(shells[full_name])

    def resolve(name: str) -> TypeDef:
        found = ts.try_get(name)
        if found is None:
            try:
                return ts.primitive(name)
            except KeyError:
                raise ValueError("unknown type {!r} in document".format(name))
        return found

    for entry in entries:
        if entry["members_only"]:
            continue
        typedef = shells[entry["full_name"]]
        if entry["base"]:
            typedef.base = resolve(entry["base"])
        typedef.interfaces = tuple(resolve(i) for i in entry["interfaces"])

    # pass 2: members (overrides wired in a final pass)
    pending_overrides: List[tuple] = []
    for entry in entries:
        typedef = resolve(entry["full_name"])
        for field_data in entry.get("fields", ()):
            typedef.add_field(
                Field(field_data["name"], resolve(field_data["type"]),
                      is_static=field_data["static"])
            )
        for prop_data in entry.get("properties", ()):
            typedef.add_property(
                Property(prop_data["name"], resolve(prop_data["type"]),
                         is_static=prop_data["static"])
            )
        for method_data in entry.get("methods", ()):
            returns = (
                None
                if method_data["returns"] == _VOID
                else resolve(method_data["returns"])
            )
            method = Method(
                method_data["name"],
                returns,
                params=tuple(
                    Parameter(name, resolve(type_name))
                    for name, type_name in method_data["params"]
                ),
                is_static=method_data["static"],
                is_constructor=method_data["constructor"],
            )
            typedef.add_method(method)
            if method_data["overrides"]:
                pending_overrides.append((method, method_data["overrides"]))
    for method, key in pending_overrides:
        method.overrides = _find_method(ts, key)
    # registration happened through shells; invalidate caches once more
    return ts


def _find_method(ts: TypeSystem, key: List[Any]) -> Method:
    declaring, name, param_types, static = key
    typedef = ts.get(declaring)
    for method in typedef.methods:
        if (
            method.name == name
            and method.is_static == bool(static)
            and [p.type.full_name for p in method.params] == list(param_types)
        ):
            return method
    raise ValueError("method {}.{} not found".format(declaring, name))


def _find_field(ts: TypeSystem, declaring: str, name: str) -> Field:
    typedef = ts.get(declaring)
    for member in typedef.declared_lookups():
        if member.name == name:
            return member  # type: ignore[return-value]
    raise ValueError("field {}.{} not found".format(declaring, name))


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
def dump_expr(expr: Expr) -> Dict[str, Any]:
    if isinstance(expr, Var):
        return {"k": "var", "name": expr.name, "type": expr.type.full_name}
    if isinstance(expr, TypeLiteral):
        return {"k": "typelit", "type": expr.typedef.full_name}
    if isinstance(expr, Literal):
        return {"k": "lit", "value": expr.value, "type": expr.type.full_name}
    if isinstance(expr, Unfilled):
        return {"k": "unfilled"}
    if isinstance(expr, FieldAccess):
        return {
            "k": "field",
            "base": dump_expr(expr.base),
            "declaring": expr.member.declaring_type.full_name,
            "name": expr.member.name,
        }
    if isinstance(expr, Call):
        return {
            "k": "call",
            "method": _method_key(expr.method),
            "args": [dump_expr(a) for a in expr.args],
        }
    if isinstance(expr, Assign):
        return {"k": "assign", "lhs": dump_expr(expr.lhs),
                "rhs": dump_expr(expr.rhs)}
    if isinstance(expr, Compare):
        return {"k": "cmp", "op": expr.op, "lhs": dump_expr(expr.lhs),
                "rhs": dump_expr(expr.rhs)}
    raise TypeError("cannot serialise {!r}".format(type(expr).__name__))


def load_expr(ts: TypeSystem, data: Dict[str, Any]) -> Expr:
    kind = data["k"]
    if kind == "var":
        return Var(data["name"], ts.get(data["type"]))
    if kind == "typelit":
        return TypeLiteral(ts.get(data["type"]))
    if kind == "lit":
        return Literal(data["value"], _resolve_any(ts, data["type"]))
    if kind == "unfilled":
        return Unfilled()
    if kind == "field":
        return FieldAccess(
            load_expr(ts, data["base"]),
            _find_field(ts, data["declaring"], data["name"]),
        )
    if kind == "call":
        return Call(
            _find_method(ts, data["method"]),
            tuple(load_expr(ts, a) for a in data["args"]),
        )
    if kind == "assign":
        return Assign(load_expr(ts, data["lhs"]), load_expr(ts, data["rhs"]))
    if kind == "cmp":
        return Compare(
            load_expr(ts, data["lhs"]), load_expr(ts, data["rhs"]), data["op"]
        )
    raise ValueError("unknown expression kind {!r}".format(kind))


def _resolve_any(ts: TypeSystem, name: str) -> TypeDef:
    found = ts.try_get(name)
    if found is not None:
        return found
    return ts.primitive(name)


# ---------------------------------------------------------------------------
# projects
# ---------------------------------------------------------------------------
def _dump_statement(stmt: Statement) -> Dict[str, Any]:
    if isinstance(stmt, LocalDecl):
        return {
            "k": "decl",
            "name": stmt.name,
            "type": stmt.type.full_name,
            "init": dump_expr(stmt.init) if stmt.init is not None else None,
        }
    if isinstance(stmt, AssignStatement):
        return {"k": "assign", "expr": dump_expr(stmt.assign)}
    if isinstance(stmt, IfStatement):
        return {"k": "if", "expr": dump_expr(stmt.condition)}
    if isinstance(stmt, ReturnStatement):
        return {"k": "return", "expr": dump_expr(stmt.expr)}
    if isinstance(stmt, ExprStatement):
        return {"k": "expr", "expr": dump_expr(stmt.expr)}
    raise TypeError("cannot serialise {!r}".format(type(stmt).__name__))


def _load_statement(ts: TypeSystem, data: Dict[str, Any]) -> Statement:
    kind = data["k"]
    if kind == "decl":
        init = load_expr(ts, data["init"]) if data["init"] is not None else None
        return LocalDecl(data["name"], _resolve_any(ts, data["type"]), init)
    if kind == "assign":
        return AssignStatement(load_expr(ts, data["expr"]))
    if kind == "if":
        return IfStatement(load_expr(ts, data["expr"]))
    if kind == "return":
        return ReturnStatement(load_expr(ts, data["expr"]))
    if kind == "expr":
        return ExprStatement(load_expr(ts, data["expr"]))
    raise ValueError("unknown statement kind {!r}".format(kind))


def dump_project(project: Project) -> Dict[str, Any]:
    """Serialise a project: its universe plus every method body."""
    return {
        "format": "repro-project",
        "version": 1,
        "name": project.name,
        "universe": dump_type_system(project.ts),
        "impls": [
            {
                "method": _method_key(impl.method),
                "locals": {
                    name: typedef.full_name
                    for name, typedef in impl.locals.items()
                },
                "body": [_dump_statement(s) for s in impl.body],
            }
            for impl in project.impls
        ],
    }


def load_project(data: Dict[str, Any]) -> Project:
    if data.get("format") != "repro-project":
        raise ValueError("not a repro project document")
    ts = load_type_system(data["universe"])
    project = Project(data["name"], ts)
    for impl_data in data["impls"]:
        impl = MethodImpl(
            _find_method(ts, impl_data["method"]),
            locals={
                name: _resolve_any(ts, type_name)
                for name, type_name in impl_data["locals"].items()
            },
        )
        impl.body = [_load_statement(ts, s) for s in impl_data["body"]]
        project.add_impl(impl)
    return project


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------
def save_project(project: Project, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(dump_project(project), handle)


def open_project(path: str) -> Project:
    with open(path) as handle:
        return load_project(json.load(handle))
