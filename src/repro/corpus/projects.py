"""The seven corpus projects of Table 1, scaled for laptop runtimes.

Each project is an independent universe (its own :class:`TypeSystem`), the
way each C# solution the paper analysed was: a hand-built anchor framework
(where the paper's examples live) plus a seeded synthetic extension and
synthetic client code.  ``scale`` multiplies the client-code volume; the
default produces roughly 1/10 of the paper's 21,176 calls, which keeps the
full evaluation (including the 15-config Table 2 ablation) tractable.

Project sizes mirror Table 1's proportions: WiX largest, Banshee/GNOME Do
smallest.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..obs.runlog import RunLog

from ..codemodel.members import Method
from ..errors import CorpusError
from ..testing import faults
from ..codemodel.typesystem import TypeSystem
from ..lang.ast import Assign, Call, FieldAccess, TypeLiteral, Var
from .frameworks.familyshow import build_familyshow
from .frameworks.geometry import build_geometry
from .frameworks.media import build_banshee, build_gnomedo
from .frameworks.paintdotnet import build_paintdotnet
from .frameworks.system import build_system_core
from .frameworks.wix import build_wix
from .program import AssignStatement, ExprStatement, MethodImpl, Project, ReturnStatement
from .synthesis import SynthesisSpec, synthesize_project

_IMAGING_NOUNS = ["Canvas", "Brush", "Palette", "Filter", "Selection",
                  "Gradient", "Snapshot", "Tool", "Stencil", "Mask"]
_INSTALLER_NOUNS = ["Package", "Bundle", "Component", "Feature", "Payload",
                    "Binder", "Manifest", "Chain", "Variable", "Patch",
                    "Compiler", "Linker"]
_LAUNCHER_NOUNS = ["Launcher", "Dock", "Item", "Action", "Plugin", "Query"]
_MEDIA_NOUNS = ["Track", "Album", "Artist", "Playlist", "Library", "Player"]
_BCL_NOUNS = ["Stream", "Buffer", "Reader", "Writer", "Formatter", "Parser",
              "Token", "Registry", "Culture", "Encoder", "Channel", "Handle"]
_FAMILY_NOUNS = ["Person", "Family", "Story", "Photo", "Relationship",
                 "Timeline", "Diagram"]
_GEOMETRY_NOUNS = ["Segment", "Circle", "Polygon", "Vertex", "Angle",
                   "Construction", "Ruler", "Grid"]


def _scaled(value: int, scale: float) -> int:
    return max(1, round(value * scale))


def build_paintdotnet_project(scale: float = 1.0) -> Project:
    ts = TypeSystem()
    core = build_system_core(ts)
    anchor = build_paintdotnet(ts, core)
    spec = SynthesisSpec(
        name="Paint.Net",
        seed=1201,
        namespace_root="PaintDotNet",
        nouns=_IMAGING_NOUNS,
        num_classes=30,
        num_helper_classes=10,
        num_client_classes=_scaled(50, scale),
    )
    anchor_pool = [anchor.document, anchor.surface, anchor.layer,
                   anchor.bitmap_layer, anchor.color_bgra, anchor.anchor_edge]
    return synthesize_project(spec, ts, core, anchor_pool)


def build_wix_project(scale: float = 1.0) -> Project:
    ts = TypeSystem()
    core = build_system_core(ts)
    anchor = build_wix(ts, core)
    spec = SynthesisSpec(
        name="WiX",
        seed=1202,
        namespace_root="WixToolset",
        nouns=_INSTALLER_NOUNS,
        num_namespaces=8,
        num_classes=60,
        num_helper_classes=16,
        num_client_classes=_scaled(200, scale),
    )
    anchor_pool = [anchor.intermediate, anchor.section, anchor.row,
                   anchor.table, anchor.compiler, anchor.linker]
    return synthesize_project(spec, ts, core, anchor_pool)


def build_gnomedo_project(scale: float = 1.0) -> Project:
    ts = TypeSystem()
    core = build_system_core(ts)
    anchor = build_gnomedo(ts, core)
    spec = SynthesisSpec(
        name="GNOME Do",
        seed=1203,
        namespace_root="Do",
        nouns=_LAUNCHER_NOUNS,
        num_namespaces=4,
        num_classes=14,
        num_helper_classes=3,
        num_client_classes=_scaled(3, scale),
    )
    anchor_pool = [anchor.item, anchor.act, anchor.universe]
    return synthesize_project(spec, ts, core, anchor_pool)


def build_banshee_project(scale: float = 1.0) -> Project:
    ts = TypeSystem()
    core = build_system_core(ts)
    anchor = build_banshee(ts, core)
    spec = SynthesisSpec(
        name="Banshee",
        seed=1204,
        namespace_root="Banshee",
        nouns=_MEDIA_NOUNS,
        num_namespaces=4,
        num_classes=14,
        num_helper_classes=3,
        num_client_classes=_scaled(2, scale),
    )
    anchor_pool = [anchor.track, anchor.album, anchor.artist, anchor.player]
    return synthesize_project(spec, ts, core, anchor_pool)


def build_dotnet_project(scale: float = 1.0) -> Project:
    ts = TypeSystem()
    core = build_system_core(ts)
    spec = SynthesisSpec(
        name=".NET",
        seed=1205,
        namespace_root="System",
        nouns=_BCL_NOUNS,
        num_namespaces=8,
        num_classes=48,
        num_helper_classes=13,
        num_client_classes=_scaled(45, scale),
    )
    return synthesize_project(spec, ts, core)


def build_familyshow_project(scale: float = 1.0) -> Project:
    ts = TypeSystem()
    core = build_system_core(ts)
    anchor = build_familyshow(ts, core)
    spec = SynthesisSpec(
        name="Family.Show",
        seed=1206,
        namespace_root="FamilyShow",
        nouns=_FAMILY_NOUNS,
        num_namespaces=5,
        num_classes=16,
        num_helper_classes=4,
        num_client_classes=_scaled(9, scale),
    )
    anchor_pool = [anchor.person, anchor.people, anchor.relationship]
    project = synthesize_project(spec, ts, core, anchor_pool)
    _add_app_location_impl(project)
    return project


def _add_app_location_impl(project: Project) -> None:
    """The Sec. 4.1 abstract-type example, transcribed from the paper::

        string appLocation = Path.Combine(
            Environment.GetFolderPath(Environment.SpecialFolder.MyDocuments),
            App.ApplicationFolderName);
        if (!Directory.Exists(appLocation))
            Directory.CreateDirectory(appLocation);
        return Path.Combine(appLocation, Const.DataFileName);
    """
    ts = project.ts
    from ..codemodel.builder import LibraryBuilder

    lib = LibraryBuilder(ts)
    string = ts.string_type
    app = lib.cls("FamilyShow.App")
    app_folder = lib.field(app, "ApplicationFolderName", string, static=True)
    const = lib.cls("FamilyShow.Const")
    data_file = lib.field(const, "DataFileName", string, static=True)
    host = lib.cls("FamilyShow.StoragePaths")
    get_path = host.add_method(
        Method("GetDataFilePath", string, params=(), is_static=True)
    )

    path = ts.get("System.IO.Path")
    directory = ts.get("System.IO.Directory")
    environment = ts.get("System.Environment")
    special_folder = ts.get("System.Environment.SpecialFolder")
    combine = path.declared_methods_named("Combine")[0]
    get_folder_path = environment.declared_methods_named("GetFolderPath")[0]
    exists = directory.declared_methods_named("Exists")[0]
    create_dir = directory.declared_methods_named("CreateDirectory")[0]
    my_documents = next(
        f for f in special_folder.fields if f.name == "MyDocuments"
    )

    impl = MethodImpl(get_path, locals={"appLocation": string})
    app_location = Var("appLocation", string)
    impl.body.append(
        AssignStatement(
            Assign(
                app_location,
                Call(
                    combine,
                    (
                        Call(
                            get_folder_path,
                            (FieldAccess(TypeLiteral(special_folder), my_documents),),
                        ),
                        FieldAccess(TypeLiteral(app), app_folder),
                    ),
                ),
            )
        )
    )
    impl.body.append(ExprStatement(Call(exists, (app_location,))))
    impl.body.append(ExprStatement(Call(create_dir, (app_location,))))
    impl.body.append(
        ReturnStatement(
            Call(combine, (app_location, FieldAccess(TypeLiteral(const), data_file)))
        )
    )
    project.add_impl(impl)


def build_livegeometry_project(scale: float = 1.0) -> Project:
    ts = TypeSystem()
    core = build_system_core(ts)
    anchor = build_geometry(ts, core)
    spec = SynthesisSpec(
        name="LiveGeometry",
        seed=1207,
        namespace_root="DynamicGeometry",
        nouns=_GEOMETRY_NOUNS,
        num_namespaces=5,
        num_classes=22,
        num_helper_classes=6,
        num_client_classes=_scaled(17, scale),
    )
    anchor_pool = [anchor.point, anchor.shape, anchor.ellipse_arc,
                   anchor.line_segment, anchor.shape_style]
    return synthesize_project(spec, ts, core, anchor_pool)


#: Table 1 row order
PROJECT_BUILDERS: Dict[str, Callable[[float], Project]] = {
    "Paint.Net": build_paintdotnet_project,
    "WiX": build_wix_project,
    "GNOME Do": build_gnomedo_project,
    "Banshee": build_banshee_project,
    ".NET": build_dotnet_project,
    "Family.Show": build_familyshow_project,
    "LiveGeometry": build_livegeometry_project,
}

_cache: Dict[float, List[Project]] = {}


@dataclass
class CorpusDiagnostic:
    """One skipped project or program, with why."""

    project: str
    stage: str  # "build" (whole project) or "program" (one method body)
    detail: str


#: diagnostics collected by the most recent non-memoised build
_last_diagnostics: List[CorpusDiagnostic] = []


def last_build_diagnostics() -> List[CorpusDiagnostic]:
    """What the most recent (non-cached) ``build_all_projects`` skipped."""
    return list(_last_diagnostics)


def _validate_impls(
    project: Project, diagnostics: List[CorpusDiagnostic]
) -> None:
    """Drop malformed programs — method bodies whose expressions fail (or
    crash) the type checker — recording one diagnostic per dropped body.

    The synthesizer checks every expression at generation time, so this
    normally keeps everything; it exists so a corrupted or hand-built
    corpus degrades to a smaller corpus instead of crashing every
    consumer downstream (evaluation, abstract-type inference, the REPL).
    """
    from ..lang.semantics import well_typed

    kept = []
    for impl in project.impls:
        problem = None
        try:
            for index, stmt in enumerate(impl.body):
                for expr in stmt.expressions():
                    if not well_typed(expr, project.ts):
                        problem = "statement {} is not well-typed".format(index)
                        break
                if problem is not None:
                    break
        except Exception as error:
            problem = "type checking crashed: {}".format(error)
        if problem is None:
            kept.append(impl)
        else:
            diagnostics.append(
                CorpusDiagnostic(
                    project.name,
                    "program",
                    "{}: {}".format(impl.method.full_name, problem),
                )
            )
    project.impls[:] = kept


def build_all_projects(
    scale: float = 1.0,
    strict: bool = False,
    run_log: Optional[RunLog] = None,
) -> List[Project]:
    """All seven projects (memoised per scale — they are deterministic).

    A project whose builder raises is *skipped* with a collected
    diagnostic (see :func:`last_build_diagnostics`) rather than aborting
    the whole corpus; malformed method bodies inside an otherwise-healthy
    project are likewise dropped per-program.  ``strict=True`` restores
    fail-fast behaviour by raising :class:`CorpusError` on the first
    problem.  Builds that skipped anything are not memoised, so a
    transient failure does not poison the cache.

    With a ``run_log`` attached, each project build is recorded as a
    ``corpus/<name>`` phase (a cached corpus emits one
    ``corpus_cache_hit`` event instead) and every skipped project or
    dropped program as a ``corpus_skip`` event.
    """
    if scale in _cache:
        if run_log is not None:
            run_log.event("corpus_cache_hit", scale=scale,
                          projects=len(_cache[scale]))
        return _cache[scale]
    diagnostics: List[CorpusDiagnostic] = []
    projects: List[Project] = []
    for name, build in PROJECT_BUILDERS.items():
        seen = len(diagnostics)
        phase = (run_log.phase("corpus/{}".format(name))
                 if run_log is not None else nullcontext())
        try:
            with phase:
                try:
                    faults.fire("corpus_load")
                    project = build(scale)
                except Exception as error:
                    if strict:
                        raise CorpusError(name, str(error)) from error
                    diagnostics.append(
                        CorpusDiagnostic(name, "build", str(error)))
                    continue
                _validate_impls(project, diagnostics)
                if strict and diagnostics:
                    first = diagnostics[0]
                    raise CorpusError(first.project, first.detail)
                projects.append(project)
        finally:
            if run_log is not None:
                for diagnostic in diagnostics[seen:]:
                    run_log.event("corpus_skip", project=diagnostic.project,
                                  stage=diagnostic.stage,
                                  detail=diagnostic.detail)
    _last_diagnostics[:] = diagnostics
    if not diagnostics:
        _cache[scale] = projects
    return projects
