"""Deterministic synthetic codebase generator.

The paper evaluates on seven mature C# projects (21,176 calls).  We cannot
ship those binaries, so this module synthesises framework libraries and
client code with the same *shape*: namespace trees, inheritance, static
helper classes, enums, property-rich value types, and method bodies whose
call arguments mix locals, ``this.field`` chains, statics and constants in
realistic proportions (Fig. 14).

Everything is driven by a :class:`SynthesisSpec` and a seeded RNG, so every
run of the evaluation sees byte-identical corpora.  Every generated
expression is checked with :func:`repro.lang.semantics.well_typed` at
generation time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..codemodel.builder import LibraryBuilder
from ..codemodel.members import Method, Parameter
from ..codemodel.types import TypeDef, TypeKind
from ..codemodel.typesystem import TypeSystem
from ..lang.ast import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Literal,
    TypeLiteral,
    Var,
    final_lookup_name,
)
from ..lang.semantics import well_typed
from .frameworks.system import SystemCore, build_system_core
from .program import (
    AssignStatement,
    ExprStatement,
    IfStatement,
    MethodImpl,
    Project,
    ReturnStatement,
)

#: generic vocabulary shared by all projects
_VERBS = [
    "Get", "Create", "Update", "Apply", "Compute", "Load", "Save", "Merge",
    "Validate", "Attach", "Detach", "Resolve", "Build", "Register", "Find",
    "Process", "Render", "Export", "Import", "Reset",
]
_FIELD_NOUNS = [
    "Name", "Id", "Count", "Parent", "Owner", "Value", "Status", "Left",
    "Right", "Top", "Bottom", "Width", "Height", "Created", "Modified",
    "Title", "Kind", "Index", "Label", "Origin", "Target", "Source",
    "Priority", "Weight", "Capacity", "Version",
]
_NAMESPACE_NOUNS = ["Core", "Model", "Util", "Services", "Data", "Render",
                    "Actions", "Config", "Runtime", "Text"]


@dataclass
class ArgumentMix:
    """Sampling weights for how call arguments are written (Fig. 14)."""

    local: float = 0.40
    this_field: float = 0.14
    local_field: float = 0.08
    static_field: float = 0.05
    zero_arg_call: float = 0.05
    deep_chain: float = 0.06
    literal: float = 0.30
    #: probability an argument is itself a (non-zero-argument) method call
    #: — the paper's "not guessable" computed-expression category
    nested_call: float = 0.06


@dataclass
class StatementMix:
    """Sampling weights for statement kinds in client bodies."""

    call: float = 0.46
    assign: float = 0.38
    compare: float = 0.16


@dataclass
class SynthesisSpec:
    """Shape parameters of one synthetic project."""

    name: str
    seed: int
    namespace_root: str
    #: domain vocabulary used for type names
    nouns: Sequence[str]
    num_namespaces: int = 6
    num_enums: int = 3
    num_interfaces: int = 2
    num_classes: int = 26
    num_helper_classes: int = 5
    num_client_classes: int = 5
    impls_per_class: Tuple[int, int] = (2, 5)
    locals_per_impl: Tuple[int, int] = (2, 5)
    stmts_per_impl: Tuple[int, int] = (4, 9)
    fields_per_class: Tuple[int, int] = (1, 3)
    props_per_class: Tuple[int, int] = (1, 4)
    methods_per_class: Tuple[int, int] = (2, 6)
    statics_per_helper: Tuple[int, int] = (7, 15)
    argument_mix: ArgumentMix = field(default_factory=ArgumentMix)
    statement_mix: StatementMix = field(default_factory=StatementMix)
    #: probability a comparison is written against a constant on the right
    compare_const_fraction: float = 0.3


def synthesize_project(
    spec: SynthesisSpec,
    ts: Optional[TypeSystem] = None,
    core: Optional[SystemCore] = None,
    anchor_pool: Sequence[TypeDef] = (),
) -> Project:
    """Build a project from a spec.

    ``ts``/``core`` allow layering on top of hand-built frameworks (the
    anchors); ``anchor_pool`` types join the sampling pool so client code
    exercises the hand-built APIs too.
    """
    if ts is None:
        ts = TypeSystem()
    if core is None:
        core = build_system_core(ts)
    return _Synthesizer(spec, ts, core, anchor_pool).build()


class _Synthesizer:
    def __init__(
        self,
        spec: SynthesisSpec,
        ts: TypeSystem,
        core: SystemCore,
        anchor_pool: Sequence[TypeDef],
    ) -> None:
        self.spec = spec
        self.ts = ts
        self.core = core
        self.lib = LibraryBuilder(ts)
        self.rng = random.Random(spec.seed)
        self.namespaces: List[str] = []
        self.enums: List[TypeDef] = []
        self.classes: List[TypeDef] = []
        self.helpers: List[TypeDef] = []
        self.anchor_pool = list(anchor_pool)
        self._name_counter = 0

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def build(self) -> Project:
        self._make_namespaces()
        self._make_enums()
        self._make_interfaces()
        self._make_classes()
        self._populate_classes()
        self._populate_helpers()
        project = Project(self.spec.name, self.ts)
        self._make_clients(project)
        return project

    # ------------------------------------------------------------------
    # naming helpers
    # ------------------------------------------------------------------
    def _fresh(self, stem: str) -> str:
        self._name_counter += 1
        return "{}{}".format(stem, self._name_counter)

    def _type_name(self) -> str:
        noun = self.rng.choice(list(self.spec.nouns))
        suffix = self.rng.choice(
            ["", "", "Info", "Item", "Entry", "Manager", "Context", "State"]
        )
        return self._fresh(noun + suffix)

    def _method_name(self) -> str:
        verb = self.rng.choice(_VERBS)
        noun = self.rng.choice(list(self.spec.nouns))
        return self._fresh(verb + noun)

    # ------------------------------------------------------------------
    # framework generation
    # ------------------------------------------------------------------
    def _make_namespaces(self) -> None:
        root = self.spec.namespace_root
        self.namespaces = [root]
        picks = self.rng.sample(
            _NAMESPACE_NOUNS, min(self.spec.num_namespaces - 1,
                                  len(_NAMESPACE_NOUNS))
        )
        for noun in picks:
            # a third of namespaces nest one level deeper
            if len(self.namespaces) > 2 and self.rng.random() < 0.33:
                parent = self.rng.choice(self.namespaces[1:])
                self.namespaces.append("{}.{}".format(parent, noun))
            else:
                self.namespaces.append("{}.{}".format(root, noun))

    def _namespace(self) -> str:
        return self.rng.choice(self.namespaces)

    def _make_enums(self) -> None:
        for _ in range(self.spec.num_enums):
            values = self.rng.sample(_FIELD_NOUNS, 4)
            enum = self.lib.enum(
                "{}.{}".format(self._namespace(), self._type_name() + "Kind"),
                values=values,
            )
            self.enums.append(enum)

    def _make_interfaces(self) -> None:
        self.interfaces: List[TypeDef] = []
        for _ in range(self.spec.num_interfaces):
            iface = self.lib.iface(
                "{}.I{}".format(self._namespace(), self._type_name())
            )
            self.interfaces.append(iface)

    def _make_classes(self) -> None:
        for index in range(self.spec.num_classes):
            namespace = self._namespace()
            base = None
            if self.classes and self.rng.random() < 0.3:
                base = self.rng.choice(self.classes)
            interfaces: Tuple[TypeDef, ...] = ()
            if self.interfaces and base is None and self.rng.random() < 0.25:
                interfaces = (self.rng.choice(self.interfaces),)
            cls = self.lib.cls(
                "{}.{}".format(namespace, self._type_name()),
                base=base,
                interfaces=interfaces,
            )
            self.classes.append(cls)
        for _ in range(self.spec.num_helper_classes):
            helper = self.lib.cls(
                "{}.{}".format(self._namespace(), self._type_name() + "Helper")
            )
            self.helpers.append(helper)

    def _value_pool(self) -> List[TypeDef]:
        """Types usable as field/parameter/return types."""
        primitives = [
            self.ts.primitive("int"),
            self.ts.primitive("int"),
            self.ts.primitive("double"),
            self.ts.primitive("long"),
            self.ts.primitive("bool"),
        ]
        core = [
            self.core.datetime,
            self.core.timespan,
            self.core.point,
            self.core.size,
            self.core.rectangle,
            self.core.color,
            self.core.list_type,
            self.ts.string_type,
            self.ts.string_type,
        ]
        return (
            primitives
            + core
            + self.enums
            + self.classes * 3
            + self.anchor_pool * 2
        )

    def _pick_type(self, prefer_namespace: Optional[str] = None) -> TypeDef:
        pool = self._value_pool()
        if prefer_namespace is not None and self.rng.random() < 0.5:
            near = [t for t in pool if t.namespace == prefer_namespace]
            if near:
                return self.rng.choice(near)
        return self.rng.choice(pool)

    def _popular_types(self) -> List[TypeDef]:
        """The handful of types that dominate real signatures; methods
        taking them are hard to tell apart by type alone, which is what
        makes the paper's search non-trivial."""
        return [
            self.ts.string_type,
            self.ts.string_type,
            self.ts.primitive("int"),
            self.ts.primitive("int"),
            self.ts.primitive("bool"),
            self.ts.primitive("double"),
            self.ts.object_type,
        ]

    def _pick_param_type(self, prefer_namespace: Optional[str]) -> TypeDef:
        if self.rng.random() < 0.45:
            return self.rng.choice(self._popular_types())
        return self._pick_type(prefer_namespace)

    def _populate_classes(self) -> None:
        for cls in self.classes:
            used_names = set()
            low, high = self.spec.fields_per_class
            for _ in range(self.rng.randint(low, high)):
                name = self.rng.choice(_FIELD_NOUNS)
                if name in used_names:
                    continue
                used_names.add(name)
                self.lib.field(cls, name, self._pick_type(cls.namespace))
            low, high = self.spec.props_per_class
            for _ in range(self.rng.randint(low, high)):
                name = self.rng.choice(_FIELD_NOUNS)
                if name in used_names:
                    continue
                used_names.add(name)
                self.lib.prop(cls, name, self._pick_type(cls.namespace))
            low, high = self.spec.methods_per_class
            for _ in range(self.rng.randint(low, high)):
                self._make_method(cls, static=False)

    def _populate_helpers(self) -> None:
        for helper in self.helpers:
            low, high = self.spec.statics_per_helper
            for _ in range(self.rng.randint(low, high)):
                self._make_method(helper, static=True)
            # an occasional family of same-signature methods (the paper
            # notes "a large family of methods which all have the same
            # method signature" degrades high-arity results)
            if self.rng.random() < 0.4:
                signature = [
                    ("arg{}".format(i), self.rng.choice(self._popular_types()))
                    for i in range(self.rng.randint(1, 3))
                ]
                returns = self._pick_type(helper.namespace)
                for _ in range(self.rng.randint(3, 6)):
                    self.lib.static_method(
                        helper, self._method_name(), returns=returns,
                        params=list(signature),
                    )
            # an occasional well-known constant
            if self.rng.random() < 0.5:
                self.lib.field(
                    helper,
                    "Default" + self.rng.choice(list(self.spec.nouns)),
                    self.rng.choice(self.classes),
                    static=True,
                )

    def _make_method(self, owner: TypeDef, static: bool) -> Method:
        arity = self.rng.choices([0, 1, 2, 3, 4], weights=[15, 35, 30, 15, 5])[0]
        params = []
        for position in range(arity):
            params.append(
                (
                    "arg{}".format(position),
                    self._pick_param_type(owner.namespace),
                )
            )
        returns: Optional[TypeDef] = None
        if self.rng.random() > 0.35:
            returns = self._pick_type(owner.namespace)
        name = self._method_name()
        if static:
            return self.lib.static_method(owner, name, returns=returns,
                                          params=params)
        return self.lib.method(owner, name, returns=returns, params=params)

    # ------------------------------------------------------------------
    # client code generation
    # ------------------------------------------------------------------
    def _make_clients(self, project: Project) -> None:
        for _ in range(self.spec.num_client_classes):
            client = self.lib.cls(
                "{}.App.{}".format(self.spec.namespace_root, self._type_name())
            )
            # client state: fields the bodies can navigate through `this`
            for _ in range(self.rng.randint(2, 4)):
                name = self.rng.choice(_FIELD_NOUNS)
                if any(f.name == name for f in client.fields):
                    continue
                self.lib.field(client, name, self._pick_type())
            for _ in range(self.rng.randint(*self.spec.impls_per_class)):
                impl = self._make_impl(client)
                if impl is not None:
                    project.add_impl(impl)

    def _make_impl(self, client: TypeDef) -> Optional[MethodImpl]:
        static = self.rng.random() < 0.25
        arity = self.rng.choices([0, 1, 2, 3], weights=[25, 40, 25, 10])[0]
        params = [
            Parameter("p{}".format(i), self._pick_type()) for i in range(arity)
        ]
        returns: Optional[TypeDef] = None
        if self.rng.random() < 0.4:
            returns = self._pick_type()
        method = Method(
            self._method_name(), returns, params=tuple(params), is_static=static
        )
        client.add_method(method)
        impl = MethodImpl(method)

        # declare extra locals; some initialised by a statement below
        num_locals = self.rng.randint(*self.spec.locals_per_impl)
        local_names = ["a", "b", "c", "d", "item", "result", "tmp", "value"]
        self.rng.shuffle(local_names)
        for name in local_names[:num_locals]:
            impl.locals[name] = self._pick_type()

        scope = _ScopeIndex(self, impl, client)
        num_stmts = self.rng.randint(*self.spec.stmts_per_impl)
        mix = self.spec.statement_mix
        kinds = self.rng.choices(
            ["call", "assign", "compare"],
            weights=[mix.call, mix.assign, mix.compare],
            k=num_stmts,
        )
        for kind in kinds:
            stmt = None
            if kind == "call":
                stmt = self._make_call_statement(scope)
            elif kind == "assign":
                stmt = self._make_assign_statement(scope)
            else:
                stmt = self._make_compare_statement(scope)
            if stmt is not None:
                impl.body.append(stmt)
        if returns is not None:
            value = scope.value_of(returns)
            if value is not None:
                impl.body.append(ReturnStatement(value))
        if not impl.body:
            return None
        return impl

    # -- statements ------------------------------------------------------
    def _make_call_statement(self, scope: "_ScopeIndex") -> Optional[ExprStatement]:
        methods = scope.callable_pool()
        for _ in range(12):
            method = self.rng.choice(methods)
            call = self._make_call(scope, method)
            if call is not None:
                assert well_typed(call, self.ts), call
                return ExprStatement(call)
        return None

    def _make_call(self, scope: "_ScopeIndex", method: Method) -> Optional[Call]:
        args: List[Expr] = []
        for index, param in enumerate(method.all_params()):
            is_receiver = not method.is_static and index == 0
            arg = scope.argument_for(param.type, allow_literal=not is_receiver)
            if arg is None:
                return None
            args.append(arg)
        return Call(method, tuple(args))

    def _make_assign_statement(
        self, scope: "_ScopeIndex"
    ) -> Optional[AssignStatement]:
        for _ in range(12):
            lhs = scope.random_lvalue()
            if lhs is None:
                return None
            lhs_type = lhs.type
            rhs = scope.assign_source(lhs_type, lhs)
            if rhs is None:
                continue
            assign = Assign(lhs, rhs)
            assert well_typed(assign, self.ts), assign
            return AssignStatement(assign)
        return None

    def _make_compare_statement(
        self, scope: "_ScopeIndex"
    ) -> Optional[IfStatement]:
        pair = scope.comparable_pair(
            const_fraction=self.spec.compare_const_fraction
        )
        if pair is None:
            return None
        lhs, rhs = pair
        op = self.rng.choice(["<", ">=", ">", "<="])
        compare = Compare(lhs, rhs, op)
        assert well_typed(compare, self.ts), compare
        return IfStatement(compare)


class _ScopeIndex:
    """Expressions available inside one impl, indexed for sampling.

    Enumerates chains up to two lookups deep over the locals, ``this`` and
    the project's static roots, mirroring what a programmer has at hand.
    """

    MAX_ROOT_EXPRS = 900

    def __init__(
        self, synth: _Synthesizer, impl: MethodImpl, client: TypeDef
    ) -> None:
        self.synth = synth
        self.ts = synth.ts
        self.rng = synth.rng
        self.impl = impl
        self.client = client
        self.exprs: List[Expr] = []
        self._build()

    def _build(self) -> None:
        roots: List[Expr] = []
        for name, typedef in self.impl.all_locals().items():
            roots.append(Var(name, typedef))
        if not self.impl.method.is_static:
            roots.append(Var("this", self.client))
        # a sample of static fields (globals)
        static_roots: List[Expr] = []
        for typedef in self.synth.classes + self.synth.helpers + self.synth.enums:
            for member in typedef.declared_lookups():
                if member.is_static:
                    static_roots.append(FieldAccess(TypeLiteral(typedef), member))
        self.rng.shuffle(static_roots)
        roots.extend(static_roots[:10])

        self.exprs.extend(roots)
        # one- and two-step lookup chains
        frontier = list(roots)
        for _depth in range(2):
            next_frontier: List[Expr] = []
            for expr in frontier:
                base_type = expr.type
                if base_type is None or base_type.is_primitive:
                    continue
                for member in self.ts.instance_lookups(base_type):
                    chained = FieldAccess(expr, member)
                    next_frontier.append(chained)
                for method in self.ts.zero_arg_instance_methods(base_type):
                    if method.return_type is None:
                        continue
                    next_frontier.append(Call(method, (expr,)))
                if len(self.exprs) + len(next_frontier) > self.MAX_ROOT_EXPRS:
                    break
            self.exprs.extend(next_frontier)
            frontier = next_frontier
            if len(self.exprs) > self.MAX_ROOT_EXPRS:
                break
        self._by_kind: Dict[str, List[Expr]] = {
            "local": [],
            "this_field": [],
            "local_field": [],
            "static_field": [],
            "zero_arg_call": [],
            "deep_chain": [],
        }
        for expr in self.exprs:
            self._by_kind[classify_expr(expr)].append(expr)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _compatible(self, pool: List[Expr], target: TypeDef) -> List[Expr]:
        return [
            e
            for e in pool
            if e.type is not None
            and self.ts.implicitly_converts(e.type, target)
        ]

    def argument_for(
        self, target: TypeDef, allow_literal: bool = True
    ) -> Optional[Expr]:
        """An argument expression of the target type, sampled by the
        Fig. 14 argument mix."""
        mix = self.synth.spec.argument_mix
        if allow_literal and self.rng.random() < mix.literal:
            literal = self._literal_of(target)
            if literal is not None:
                return literal
        if allow_literal and self.rng.random() < mix.nested_call:
            nested = self._nested_call_of(target)
            if nested is not None:
                return nested
        kinds = ["local", "this_field", "local_field", "static_field",
                 "zero_arg_call", "deep_chain"]
        weights = [mix.local, mix.this_field, mix.local_field,
                   mix.static_field, mix.zero_arg_call, mix.deep_chain]
        preferred = self.rng.choices(kinds, weights=weights)[0]
        if preferred == "local" and not self._compatible(
            self._by_kind["local"], target
        ):
            # programmers introduce locals for the values they need: mint
            # one of the right type (keeps Fig. 14 locals-dominant)
            minted = self._mint_local(target)
            if minted is not None:
                return minted
        # try the sampled kind, then fall back shallow-to-deep so the
        # argument-kind census (Fig. 14) stays locals-dominant rather than
        # being swamped by the combinatorially-many deep chains
        for kind in [preferred] + kinds:
            candidates = self._compatible(self._by_kind[kind], target)
            if candidates:
                return self.rng.choice(candidates)
        return self._literal_of(target) if allow_literal else None

    _MAX_LOCALS = 10
    _MINT_NAMES = ["entry", "node", "current", "next", "spec", "info",
                   "extra", "state", "other", "temp"]

    def _mint_local(self, target: TypeDef) -> Optional[Var]:
        if len(self.impl.all_locals()) >= self._MAX_LOCALS:
            return None
        if self.rng.random() > 0.75:
            return None
        taken = self.impl.all_locals()
        for name in self._MINT_NAMES:
            if name not in taken:
                self.impl.locals[name] = target
                var = Var(name, target)
                self.exprs.append(var)
                self._by_kind["local"].append(var)
                return var
        return None

    def value_of(self, target: TypeDef) -> Optional[Expr]:
        candidates = self._compatible(self.exprs, target)
        if candidates:
            return self.rng.choice(candidates)
        return None

    def _nested_call_of(self, target: TypeDef) -> Optional[Call]:
        """An argument that is itself a call with arguments (unguessable
        by the completer — the paper's computed-expression category)."""
        candidates = [
            m
            for m in self.callable_pool()
            if m.return_type is not None
            and m.params
            and self.ts.implicitly_converts(m.return_type, target)
        ]
        self.rng.shuffle(candidates)
        for method in candidates[:6]:
            args: List[Expr] = []
            for index, param in enumerate(method.all_params()):
                is_receiver = not method.is_static and index == 0
                value = self.value_of(param.type)
                if value is None and not is_receiver:
                    value = self._literal_of(param.type)
                if value is None:
                    break
                args.append(value)
            else:
                return Call(method, tuple(args))
        return None

    def _literal_of(self, target: TypeDef) -> Optional[Literal]:
        ts = self.ts
        if target is ts.string_type:
            word = self.rng.choice(list(self.synth.spec.nouns)).lower()
            return Literal(word, ts.string_type)
        if target.kind is TypeKind.PRIMITIVE and target.name != "void":
            if target.name == "bool":
                return Literal(self.rng.random() < 0.5, target)
            if target.name in ("float", "double"):
                return Literal(float(self.rng.randint(1, 9)), target)
            return Literal(self.rng.randint(1, 99), target)
        return None

    # -- assignment shapes -------------------------------------------------
    def random_lvalue(self) -> Optional[Expr]:
        """An assignable expression, biased toward field-lookup endings
        (the paper's corpus has twice as many lookup-ending targets as
        sources)."""
        lookup_ending = [
            e
            for e in self.exprs
            if isinstance(e, FieldAccess)
            and not isinstance(e.base, TypeLiteral)
        ]
        if lookup_ending and self.rng.random() < 0.85:
            return self.rng.choice(lookup_ending)
        plain_locals = [
            e for e in self._by_kind["local"] if not getattr(e, "is_this", False)
        ]
        if plain_locals:
            return self.rng.choice(plain_locals)
        return None

    def assign_source(self, target: TypeDef, lhs: Expr) -> Optional[Expr]:
        """A right-hand side; prefers lookup-ending expressions with the
        same final name (realistic `a.X = b.X` copies), falls back to any
        compatible value or literal."""
        candidates = self._compatible(self.exprs, target)
        candidates = [c for c in candidates if c.key() != lhs.key()]
        if not candidates:
            return self._literal_of(target)
        lhs_name = final_lookup_name(lhs)
        if lhs_name is not None and self.rng.random() < 0.5:
            same_name = [
                c for c in candidates if final_lookup_name(c) == lhs_name
            ]
            if same_name:
                return self.rng.choice(same_name)
        if self.rng.random() < 0.15:
            literal = self._literal_of(target)
            if literal is not None:
                return literal
        return self.rng.choice(candidates)

    # -- comparison shapes -------------------------------------------------
    def comparable_pair(
        self, const_fraction: float
    ) -> Optional[Tuple[Expr, Expr]]:
        lookup_ending = [
            e
            for e in self.exprs
            if final_lookup_name(e) is not None
            and e.type is not None
            and e.type.comparable
        ]
        if not lookup_ending:
            return None
        lhs = self.rng.choice(lookup_ending)
        if self.rng.random() < const_fraction:
            literal = self._literal_of(lhs.type)
            if literal is not None:
                return lhs, literal
        # prefer a same-named lookup on the other side
        name = final_lookup_name(lhs)
        peers = [
            e
            for e in lookup_ending
            if e.key() != lhs.key() and self.ts.comparable(lhs.type, e.type)
        ]
        if not peers:
            return None
        same = [e for e in peers if final_lookup_name(e) == name]
        if same and self.rng.random() < 0.7:
            return lhs, self.rng.choice(same)
        return lhs, self.rng.choice(peers)

    def callable_pool(self) -> List[Method]:
        """Methods client code plausibly calls (project + core, weighted
        toward the project's own framework)."""
        pool: List[Method] = []
        for typedef in self.synth.classes + self.synth.helpers:
            pool.extend(typedef.methods)
        for typedef in self.synth.anchor_pool:
            pool.extend(typedef.methods)
        core_methods = [
            m
            for t in (
                self.synth.core.string_builder,
                self.synth.core.list_type,
                self.ts.try_get("System.IO.Path"),
                self.ts.try_get("System.IO.Directory"),
                self.ts.try_get("System.Math"),
                self.ts.try_get("System.Console"),
            )
            if t is not None
            for m in t.methods
        ]
        return pool * 2 + core_methods


def classify_expr(expr: Expr) -> str:
    """Bucket an expression by shape (used for sampling and by the Fig. 14
    argument-kind census)."""
    if isinstance(expr, Var):
        return "local"
    if isinstance(expr, Literal):
        return "literal"
    if isinstance(expr, FieldAccess):
        if isinstance(expr.base, TypeLiteral):
            return "static_field"
        if isinstance(expr.base, Var):
            if expr.base.is_this:
                return "this_field"
            return "local_field"
        return "deep_chain"
    if isinstance(expr, Call):
        if expr.method.is_zero_arg_instance and isinstance(expr.args[0], Var):
            return "zero_arg_call"
        if expr.method.is_static and not expr.args:
            return "zero_arg_call"
        return "deep_chain"
    return "deep_chain"
