"""A Paint.NET-shaped framework — the paper's Sec. 2 running example.

Models the APIs behind Figure 2: ``CanvasSizeAction.ResizeDocument``, the
``Pair/Triple/Quadruple.Create`` tuple helpers, ``Func.Bind``, the property
system, and enough surrounding image-editor surface (layers, surfaces,
history) to give the ranking something to sift.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...codemodel.builder import LibraryBuilder
from ...codemodel.members import Method
from ...codemodel.types import TypeDef
from ...codemodel.typesystem import TypeSystem
from .system import SystemCore, build_system_core


@dataclass
class PaintDotNet:
    """Handles to the Paint.NET universe used by examples and tests."""

    ts: TypeSystem
    core: SystemCore
    document: TypeDef
    surface: TypeDef
    layer: TypeDef
    bitmap_layer: TypeDef
    color_bgra: TypeDef
    anchor_edge: TypeDef
    size: TypeDef
    resize_document: Method


def build_paintdotnet(ts: TypeSystem, core: SystemCore = None) -> PaintDotNet:
    """Install the Paint.NET-shaped framework (plus the system core if not
    already present)."""
    if core is None:
        core = build_system_core(ts)
    lib = LibraryBuilder(ts)
    obj = ts.object_type
    string = ts.string_type
    int_t = ts.primitive("int")
    bool_t = ts.primitive("bool")
    size = core.size

    color_bgra = lib.struct("PaintDotNet.ColorBgra")
    lib.prop(color_bgra, "B", int_t)
    lib.prop(color_bgra, "G", int_t)
    lib.prop(color_bgra, "R", int_t)
    lib.prop(color_bgra, "A", int_t)
    lib.static_method(color_bgra, "FromBgra", returns=color_bgra,
                      params=[("b", int_t), ("g", int_t),
                              ("r", int_t), ("a", int_t)])
    lib.field(color_bgra, "White", color_bgra, static=True)
    lib.field(color_bgra, "Black", color_bgra, static=True)
    lib.field(color_bgra, "Transparent", color_bgra, static=True)

    anchor_edge = lib.enum(
        "PaintDotNet.AnchorEdge",
        values=["TopLeft", "Top", "TopRight", "Left", "Middle", "Right",
                "BottomLeft", "Bottom", "BottomRight"],
    )

    surface = lib.cls("PaintDotNet.Surface")
    lib.prop(surface, "Width", int_t)
    lib.prop(surface, "Height", int_t)
    lib.prop(surface, "Size", size)
    lib.method(surface, "Clear", params=[("color", color_bgra)])
    lib.method(surface, "GetPoint", returns=color_bgra,
               params=[("x", int_t), ("y", int_t)])

    layer = lib.cls("PaintDotNet.Layer")
    lib.prop(layer, "Name", string)
    lib.prop(layer, "Visible", bool_t)
    lib.prop(layer, "Opacity", int_t)
    bitmap_layer = lib.cls("PaintDotNet.BitmapLayer", base=layer)
    lib.prop(bitmap_layer, "Surface", surface)

    document = lib.cls("PaintDotNet.Document")
    lib.prop(document, "Width", int_t)
    lib.prop(document, "Height", int_t)
    lib.prop(document, "Size", size)
    lib.prop(document, "DpuX", int_t)
    lib.method(document, "Flatten", returns=bitmap_layer)
    lib.method(document, "Invalidate")
    lib.method(document, "OnDeserialization", params=[("sender", obj)])
    lib.static_method(document, "FromFile", returns=document,
                      params=[("path", string)])

    # the target of the Sec. 2 example query ?({img, size})
    canvas_action = lib.cls("PaintDotNet.Actions.CanvasSizeAction")
    resize_document = lib.static_method(
        canvas_action, "ResizeDocument", returns=document,
        params=[("document", document), ("newSize", size),
                ("edge", anchor_edge), ("background", color_bgra)])
    lib.static_method(canvas_action, "FlipDocument", returns=document,
                      params=[("document", document), ("horizontal", bool_t)])

    history = lib.cls("PaintDotNet.HistoryMemento")
    lib.prop(history, "Name", string)
    lib.prop(history, "SeqNumber", int_t)
    history_stack = lib.cls("PaintDotNet.HistoryStack")
    lib.method(history_stack, "PushNewMemento", params=[("memento", history)])
    lib.method(history_stack, "StepBackward")

    # the distractors of Figure 2: generic-ish helpers taking Objects
    pair = lib.cls("PaintDotNet.Pair")
    lib.static_method(pair, "Create", returns=pair,
                      params=[("first", obj), ("second", obj)])
    triple = lib.cls("PaintDotNet.Triple")
    lib.static_method(triple, "Create", returns=triple,
                      params=[("first", obj), ("second", obj), ("third", obj)])
    quadruple = lib.cls("PaintDotNet.Quadruple")
    lib.static_method(quadruple, "Create", returns=quadruple,
                      params=[("first", obj), ("second", obj),
                              ("third", obj), ("fourth", obj)])
    func = lib.cls("PaintDotNet.Functional.Func")
    lib.static_method(func, "Bind", returns=func,
                      params=[("f", obj), ("arg1", obj), ("arg2", obj)])

    prop_cls = lib.cls("PaintDotNet.PropertySystem.Property")
    lib.prop(prop_cls, "Name", string)
    lib.static_method(prop_cls, "Create", returns=prop_cls,
                      params=[("name", obj), ("value", obj),
                              ("extra", obj)])
    static_list_prop = lib.cls(
        "PaintDotNet.PropertySystem.StaticListChoiceProperty", base=prop_cls)
    lib.static_method(static_list_prop, "CreateForEnum",
                      returns=static_list_prop,
                      params=[("enumType", obj), ("defaultValue", obj),
                              ("readOnly", bool_t)])

    return PaintDotNet(
        ts=ts,
        core=core,
        document=document,
        surface=surface,
        layer=layer,
        bitmap_layer=bitmap_layer,
        color_bgra=color_bgra,
        anchor_edge=anchor_edge,
        size=size,
        resize_document=resize_document,
    )
