"""Hand-modelled frameworks: the mini-BCL and the paper's example APIs."""

from .familyshow import FamilyShow, build_familyshow
from .geometry import Geometry, build_geometry
from .media import Banshee, GnomeDo, build_banshee, build_gnomedo
from .paintdotnet import PaintDotNet, build_paintdotnet
from .system import SystemCore, build_system_core
from .wix import Wix, build_wix

__all__ = [
    "Banshee",
    "FamilyShow",
    "Geometry",
    "GnomeDo",
    "PaintDotNet",
    "SystemCore",
    "Wix",
    "build_banshee",
    "build_familyshow",
    "build_geometry",
    "build_gnomedo",
    "build_paintdotnet",
    "build_system_core",
    "build_wix",
]
