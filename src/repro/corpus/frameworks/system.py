"""A miniature .NET Base Class Library.

Every project universe starts from this: core value types, strings,
collections, IO, drawing and diagnostics APIs.  It is deliberately shaped
like the real BCL — nested namespaces, inheritance, interfaces, enums,
static helper classes — because the ranking features (namespace prefixes,
type distance, in-scope statics) only discriminate on such structure.

It also contains the exact APIs of the paper's Sec. 4.1 abstract-type
example: ``Path.Combine``, ``Directory.Exists``/``CreateDirectory`` and
``Environment.GetFolderPath(Environment.SpecialFolder...)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...codemodel.builder import LibraryBuilder
from ...codemodel.types import TypeDef
from ...codemodel.typesystem import TypeSystem


@dataclass
class SystemCore:
    """Handles to the core types examples and generators reference."""

    ts: TypeSystem
    datetime: TypeDef
    timespan: TypeDef
    point: TypeDef
    size: TypeDef
    rectangle: TypeDef
    color: TypeDef
    ienumerable: TypeDef
    icollection: TypeDef
    ilist: TypeDef
    list_type: TypeDef
    string_builder: TypeDef
    file_mode: TypeDef
    file_stream: TypeDef
    special_folder: TypeDef
    exception: TypeDef


def build_system_core(ts: TypeSystem) -> SystemCore:
    """Install the mini-BCL into a fresh type system."""
    lib = LibraryBuilder(ts)
    string = ts.string_type
    obj = ts.object_type
    int_t = ts.primitive("int")
    long_t = ts.primitive("long")
    double_t = ts.primitive("double")
    bool_t = ts.primitive("bool")

    # ------------------------------------------------------------------
    # System
    # ------------------------------------------------------------------
    lib.method(obj, "ToString", returns=string)
    lib.method(obj, "GetHashCode", returns=int_t)
    lib.method(obj, "Equals", returns=bool_t, params=[("obj", obj)])
    lib.static_method(obj, "ReferenceEquals", returns=bool_t,
                      params=[("objA", obj), ("objB", obj)])

    timespan = lib.struct("System.TimeSpan", comparable=True)
    datetime = lib.struct("System.DateTime", comparable=True)
    lib.prop(datetime, "Now", datetime, static=True)
    lib.prop(datetime, "Today", datetime, static=True)
    lib.prop(datetime, "Year", int_t)
    lib.prop(datetime, "Month", int_t)
    lib.prop(datetime, "Day", int_t)
    lib.prop(datetime, "Ticks", long_t)
    lib.method(datetime, "AddDays", returns=datetime, params=[("value", double_t)])
    lib.method(datetime, "Subtract", returns=timespan, params=[("value", datetime)])
    lib.prop(timespan, "TotalSeconds", double_t)
    lib.prop(timespan, "TotalDays", double_t)
    lib.prop(timespan, "Ticks", long_t)

    exception = lib.cls("System.Exception")
    lib.prop(exception, "Message", string)
    lib.prop(exception, "StackTrace", string)
    lib.prop(exception, "InnerException", exception)
    lib.cls("System.ArgumentException", base=exception)
    lib.cls("System.InvalidOperationException", base=exception)

    special_folder = lib.enum(
        "System.Environment.SpecialFolder",
        values=["MyDocuments", "ApplicationData", "ProgramFiles", "Desktop"],
    )
    environment = lib.cls("System.Environment")
    lib.static_method(environment, "GetFolderPath", returns=string,
                      params=[("folder", special_folder)])
    lib.prop(environment, "MachineName", string, static=True)
    lib.prop(environment, "TickCount", int_t, static=True)

    math = lib.cls("System.Math")
    lib.static_method(math, "Min", returns=int_t,
                      params=[("val1", int_t), ("val2", int_t)])
    lib.static_method(math, "Max", returns=int_t,
                      params=[("val1", int_t), ("val2", int_t)])
    lib.static_method(math, "Abs", returns=double_t, params=[("value", double_t)])
    lib.static_method(math, "Sqrt", returns=double_t, params=[("d", double_t)])
    lib.field(math, "PI", double_t, static=True)

    convert = lib.cls("System.Convert")
    lib.static_method(convert, "ToInt32", returns=int_t, params=[("value", string)])
    lib.static_method(convert, "ToString", returns=string, params=[("value", int_t)])

    lib.method(string, "Substring", returns=string, params=[("startIndex", int_t)])
    lib.method(string, "Trim", returns=string)
    lib.method(string, "ToUpper", returns=string)
    lib.method(string, "Contains", returns=bool_t, params=[("value", string)])
    lib.prop(string, "Length", int_t)
    lib.field(string, "Empty", string, static=True)
    lib.static_method(string, "Concat", returns=string,
                      params=[("str0", string), ("str1", string)])
    lib.static_method(string, "IsNullOrEmpty", returns=bool_t,
                      params=[("value", string)])
    lib.static_method(string, "Format", returns=string,
                      params=[("format", string), ("arg0", obj)])

    # ------------------------------------------------------------------
    # System.Collections
    # ------------------------------------------------------------------
    ienumerable = lib.iface("System.Collections.IEnumerable")
    icollection = lib.iface("System.Collections.ICollection", extends=[ienumerable])
    ilist = lib.iface("System.Collections.IList", extends=[icollection])
    list_type = lib.cls("System.Collections.Generic.List", interfaces=[ilist])
    lib.prop(list_type, "Count", int_t)
    lib.method(list_type, "Add", params=[("item", obj)])
    lib.method(list_type, "Contains", returns=bool_t, params=[("item", obj)])
    lib.method(list_type, "IndexOf", returns=int_t, params=[("item", obj)])
    lib.method(list_type, "Clear")

    # ------------------------------------------------------------------
    # System.Text
    # ------------------------------------------------------------------
    string_builder = lib.cls("System.Text.StringBuilder")
    lib.method(string_builder, "Append", returns=string_builder,
               params=[("value", string)])
    lib.method(string_builder, "AppendLine", returns=string_builder,
               params=[("value", string)])
    lib.prop(string_builder, "Length", int_t)

    # ------------------------------------------------------------------
    # System.IO — the Sec. 4.1 abstract-type example APIs
    # ------------------------------------------------------------------
    file_mode = lib.enum("System.IO.FileMode",
                         values=["Open", "Create", "Append"])
    file_stream = lib.cls("System.IO.FileStream")
    lib.prop(file_stream, "Position", long_t)
    lib.prop(file_stream, "Length", long_t)
    lib.method(file_stream, "Close")

    path = lib.cls("System.IO.Path")
    lib.static_method(path, "Combine", returns=string,
                      params=[("path1", string), ("path2", string)])
    lib.static_method(path, "GetFileName", returns=string,
                      params=[("path", string)])
    lib.static_method(path, "GetDirectoryName", returns=string,
                      params=[("path", string)])

    directory = lib.cls("System.IO.Directory")
    lib.static_method(directory, "Exists", returns=bool_t,
                      params=[("path", string)])
    lib.static_method(directory, "CreateDirectory", returns=string,
                      params=[("path", string)])

    file_cls = lib.cls("System.IO.File")
    lib.static_method(file_cls, "Exists", returns=bool_t,
                      params=[("path", string)])
    lib.static_method(file_cls, "Open", returns=file_stream,
                      params=[("path", string), ("mode", file_mode)])
    lib.static_method(file_cls, "ReadAllText", returns=string,
                      params=[("path", string)])

    # ------------------------------------------------------------------
    # System.Drawing
    # ------------------------------------------------------------------
    point = lib.struct("System.Drawing.Point")
    size = lib.struct("System.Drawing.Size")
    rectangle = lib.struct("System.Drawing.Rectangle")
    color = lib.struct("System.Drawing.Color")
    lib.prop(point, "X", int_t)
    lib.prop(point, "Y", int_t)
    lib.prop(size, "Width", int_t)
    lib.prop(size, "Height", int_t)
    lib.method(size, "Equals", returns=bool_t, params=[("obj", obj)])
    lib.prop(rectangle, "Location", point)
    lib.prop(rectangle, "Size", size)
    lib.prop(rectangle, "Width", int_t)
    lib.prop(rectangle, "Height", int_t)
    lib.static_method(rectangle, "Inflate", returns=rectangle,
                      params=[("rect", rectangle), ("x", int_t), ("y", int_t)])
    lib.prop(color, "R", int_t)
    lib.prop(color, "G", int_t)
    lib.prop(color, "B", int_t)
    lib.static_method(color, "FromArgb", returns=color,
                      params=[("r", int_t), ("g", int_t), ("b", int_t)])

    # ------------------------------------------------------------------
    # System.Diagnostics
    # ------------------------------------------------------------------
    debug = lib.cls("System.Diagnostics.Debug")
    lib.static_method(debug, "WriteLine", params=[("message", string)])
    lib.static_method(debug, "Assert", params=[("condition", bool_t)])
    stopwatch = lib.cls("System.Diagnostics.Stopwatch")
    lib.prop(stopwatch, "Elapsed", timespan)
    lib.method(stopwatch, "Start")
    lib.method(stopwatch, "Stop")
    lib.static_method(stopwatch, "StartNew", returns=stopwatch)

    console = lib.cls("System.Console")
    lib.static_method(console, "WriteLine", params=[("value", string)])
    lib.static_method(console, "ReadLine", returns=string)

    return SystemCore(
        ts=ts,
        datetime=datetime,
        timespan=timespan,
        point=point,
        size=size,
        rectangle=rectangle,
        color=color,
        ienumerable=ienumerable,
        icollection=icollection,
        ilist=ilist,
        list_type=list_type,
        string_builder=string_builder,
        file_mode=file_mode,
        file_stream=file_stream,
        special_folder=special_folder,
        exception=exception,
    )
