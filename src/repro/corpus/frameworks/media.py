"""Banshee- and GNOME-Do-shaped anchor frameworks.

Small hand-built cores for the two smallest Table 1 projects: a media
player's track/album/playback model and an application launcher's
item/action universe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...codemodel.builder import LibraryBuilder
from ...codemodel.types import TypeDef
from ...codemodel.typesystem import TypeSystem
from .system import SystemCore, build_system_core


@dataclass
class Banshee:
    """Handles to the Banshee universe."""

    ts: TypeSystem
    core: SystemCore
    track: TypeDef
    album: TypeDef
    artist: TypeDef
    player: TypeDef


def build_banshee(ts: TypeSystem, core: SystemCore = None) -> Banshee:
    if core is None:
        core = build_system_core(ts)
    lib = LibraryBuilder(ts)
    string = ts.string_type
    int_t = ts.primitive("int")
    bool_t = ts.primitive("bool")

    artist = lib.cls("Banshee.Collection.ArtistInfo")
    lib.prop(artist, "Name", string)
    lib.prop(artist, "MusicBrainzId", string)

    album = lib.cls("Banshee.Collection.AlbumInfo")
    lib.prop(album, "Title", string)
    lib.prop(album, "ArtistName", string)
    lib.prop(album, "TrackCount", int_t)

    track = lib.cls("Banshee.Collection.TrackInfo")
    lib.prop(track, "TrackTitle", string)
    lib.prop(track, "Album", album)
    lib.prop(track, "Artist", artist)
    lib.prop(track, "Duration", core.timespan)
    lib.prop(track, "PlayCount", int_t)
    lib.prop(track, "Rating", int_t)
    lib.method(track, "IncrementPlayCount")

    playback_state = lib.enum("Banshee.MediaEngine.PlayerState",
                              values=["Idle", "Loading", "Playing", "Paused"])
    player = lib.cls("Banshee.MediaEngine.PlayerEngine")
    lib.prop(player, "CurrentTrack", track)
    lib.prop(player, "CurrentState", playback_state)
    lib.prop(player, "Volume", int_t)
    lib.method(player, "Open", params=[("track", track)])
    lib.method(player, "Play")
    lib.method(player, "Pause")
    lib.method(player, "SeekTo", params=[("position", int_t)])

    service = lib.cls("Banshee.ServiceStack.ServiceManager")
    lib.prop(service, "PlayerEngine", player, static=True)
    lib.prop(service, "IsInitialized", bool_t, static=True)

    return Banshee(ts=ts, core=core, track=track, album=album,
                   artist=artist, player=player)


@dataclass
class GnomeDo:
    """Handles to the GNOME Do universe."""

    ts: TypeSystem
    core: SystemCore
    item: TypeDef
    act: TypeDef
    universe: TypeDef


def build_gnomedo(ts: TypeSystem, core: SystemCore = None) -> GnomeDo:
    if core is None:
        core = build_system_core(ts)
    lib = LibraryBuilder(ts)
    string = ts.string_type
    bool_t = ts.primitive("bool")

    item = lib.iface("Do.Universe.Item")
    element = lib.cls("Do.Universe.Element", interfaces=[item])
    lib.prop(element, "Name", string)
    lib.prop(element, "Description", string)
    lib.prop(element, "Icon", string)
    lib.method(element, "NameOrDescription", returns=string)

    act = lib.cls("Do.Universe.Act", base=element)
    lib.method(act, "SupportsItem", returns=bool_t, params=[("item", item)])

    file_item = lib.cls("Do.Universe.FileItem", base=element)
    lib.prop(file_item, "Path", string)
    lib.method(file_item, "Open")

    universe = lib.cls("Do.Core.UniverseManager")
    lib.method(universe, "Search", returns=element,
               params=[("query", string)])
    lib.method(universe, "AddItem", params=[("item", item)])
    lib.prop(universe, "ItemCount", ts.primitive("int"))

    controller = lib.cls("Do.Core.Controller")
    lib.method(controller, "Summon")
    lib.method(controller, "PerformAction",
               params=[("act", act), ("target", item)])

    return GnomeDo(ts=ts, core=core, item=item, act=act, universe=universe)
