"""A WiX-shaped framework (Windows Installer XML toolset).

Anchors the largest Table 1 project with realistic installer-toolchain
APIs: compiler/linker/binder pipeline, symbol tables, rows and sections.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...codemodel.builder import LibraryBuilder
from ...codemodel.types import TypeDef
from ...codemodel.typesystem import TypeSystem
from .system import SystemCore, build_system_core


@dataclass
class Wix:
    """Handles to the WiX universe."""

    ts: TypeSystem
    core: SystemCore
    intermediate: TypeDef
    section: TypeDef
    row: TypeDef
    table: TypeDef
    compiler: TypeDef
    linker: TypeDef


def build_wix(ts: TypeSystem, core: SystemCore = None) -> Wix:
    if core is None:
        core = build_system_core(ts)
    lib = LibraryBuilder(ts)
    string = ts.string_type
    int_t = ts.primitive("int")
    bool_t = ts.primitive("bool")

    source_line = lib.cls("WixToolset.Data.SourceLineNumber")
    lib.prop(source_line, "FileName", string)
    lib.prop(source_line, "LineNumber", int_t)

    identifier = lib.cls("WixToolset.Data.Identifier")
    lib.prop(identifier, "Id", string)
    lib.prop(identifier, "Access", int_t)

    row = lib.cls("WixToolset.Data.Row")
    lib.prop(row, "Number", int_t)
    lib.prop(row, "SourceLineNumbers", source_line)
    lib.method(row, "GetPrimaryKey", returns=string)

    table = lib.cls("WixToolset.Data.Table")
    lib.prop(table, "Name", string)
    lib.method(table, "CreateRow", returns=row,
               params=[("sourceLineNumbers", source_line)])

    section_type = lib.enum("WixToolset.Data.SectionType",
                            values=["Unknown", "Product", "Module", "Fragment"])
    section = lib.cls("WixToolset.Data.Section")
    lib.prop(section, "Id", string)
    lib.prop(section, "Type", section_type)
    lib.prop(section, "Codepage", int_t)
    lib.method(section, "GetTable", returns=table, params=[("name", string)])

    intermediate = lib.cls("WixToolset.Data.Intermediate")
    lib.prop(intermediate, "Id", string)
    lib.method(intermediate, "AddSection", params=[("section", section)])
    lib.static_method(intermediate, "Load", returns=intermediate,
                      params=[("path", string)])
    lib.method(intermediate, "Save", params=[("path", string)])

    message = lib.cls("WixToolset.Data.Message")
    lib.prop(message, "Id", int_t)
    lib.prop(message, "ResourceNameOrFormat", string)
    messaging = lib.cls("WixToolset.Services.Messaging")
    lib.method(messaging, "Write", params=[("message", message)])
    lib.prop(messaging, "EncounteredError", bool_t)

    compiler = lib.cls("WixToolset.Core.Compiler")
    lib.method(compiler, "Compile", returns=intermediate,
               params=[("sourcePath", string)])
    lib.prop(compiler, "CurrentPlatform", int_t)

    linker = lib.cls("WixToolset.Core.Linker")
    lib.method(linker, "Link", returns=intermediate,
               params=[("intermediate", intermediate),
                       ("section", section)])

    binder = lib.cls("WixToolset.Core.Binder")
    lib.method(binder, "Bind", params=[("intermediate", intermediate),
                                       ("outputPath", string)])

    preprocessor = lib.cls("WixToolset.Core.Preprocessor")
    lib.static_method(preprocessor, "Preprocess", returns=string,
                      params=[("path", string), ("variable", string)])

    return Wix(
        ts=ts,
        core=core,
        intermediate=intermediate,
        section=section,
        row=row,
        table=table,
        compiler=compiler,
        linker=linker,
    )
