"""A Family.Show-shaped anchor framework (the WPF genealogy sample app).

Anchors the project that hosts the paper's Sec. 4.1 abstract-type example:
people, relationships and the photo/story attachments whose file-path
strings the analysis partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...codemodel.builder import LibraryBuilder
from ...codemodel.types import TypeDef
from ...codemodel.typesystem import TypeSystem
from .system import SystemCore, build_system_core


@dataclass
class FamilyShow:
    """Handles to the Family.Show universe."""

    ts: TypeSystem
    core: SystemCore
    person: TypeDef
    people: TypeDef
    relationship: TypeDef


def build_familyshow(ts: TypeSystem, core: SystemCore = None) -> FamilyShow:
    if core is None:
        core = build_system_core(ts)
    lib = LibraryBuilder(ts)
    string = ts.string_type
    int_t = ts.primitive("int")
    bool_t = ts.primitive("bool")

    gender = lib.enum("FamilyShow.Gender", values=["Male", "Female"])

    photo = lib.cls("FamilyShow.Photo")
    lib.prop(photo, "FullyQualifiedPath", string)
    lib.prop(photo, "IsAvatar", bool_t)

    story = lib.cls("FamilyShow.Story")
    lib.prop(story, "AbsolutePath", string)
    lib.method(story, "Save", params=[("text", string)])

    person = lib.cls("FamilyShow.Person")
    lib.prop(person, "FirstName", string)
    lib.prop(person, "LastName", string)
    lib.prop(person, "FullName", string)
    lib.prop(person, "Age", int_t)
    lib.prop(person, "BirthDate", core.datetime)
    lib.prop(person, "DeathDate", core.datetime)
    lib.prop(person, "Gender", gender)
    lib.prop(person, "IsLiving", bool_t)
    lib.prop(person, "Avatar", photo)
    lib.prop(person, "Story", story)

    relationship = lib.cls("FamilyShow.Relationship")
    lib.prop(relationship, "RelationTo", person)
    lib.prop(relationship, "StartDate", core.datetime)

    spouse_rel = lib.cls("FamilyShow.SpouseRelationship", base=relationship)
    lib.prop(spouse_rel, "MarriageDate", core.datetime)

    people = lib.cls("FamilyShow.PeopleCollection")
    lib.prop(people, "Current", person)
    lib.prop(people, "Count", int_t)
    lib.method(people, "Add", params=[("person", person)])
    lib.method(people, "Find", returns=person, params=[("id", string)])
    lib.method(people, "GetParents", returns=people,
               params=[("person", person)])

    family = lib.cls("FamilyShow.App.Family")
    lib.prop(family, "People", people, static=True)
    lib.static_method(family, "LoadFamily", returns=people,
                      params=[("path", string)])

    return FamilyShow(ts=ts, core=core, person=person, people=people,
                      relationship=relationship)
