"""A DynamicGeometry/LiveGeometry-shaped framework.

Models the APIs behind Figures 3 and 4: geometry ``Point`` values reachable
from an ``EllipseArc``'s fields, ``Math.Distance(Point, Point)``, shapes
with ``RenderTransformOrigin``, and line segments with same-named ``X``/``Y``
coordinate lookups for the comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...codemodel.builder import LibraryBuilder
from ...codemodel.members import Method
from ...codemodel.types import TypeDef
from ...codemodel.typesystem import TypeSystem
from .system import SystemCore, build_system_core


@dataclass
class Geometry:
    """Handles to the geometry universe used by examples and tests."""

    ts: TypeSystem
    core: SystemCore
    point: TypeDef
    shape: TypeDef
    ellipse_arc: TypeDef
    line_segment: TypeDef
    shape_style: TypeDef
    distance: Method


def build_geometry(ts: TypeSystem, core: SystemCore = None) -> Geometry:
    """Install the geometry framework (plus the system core if needed)."""
    if core is None:
        core = build_system_core(ts)
    lib = LibraryBuilder(ts)
    string = ts.string_type
    double_t = ts.primitive("double")
    bool_t = ts.primitive("bool")

    point = lib.struct("DynamicGeometry.Point")
    lib.prop(point, "X", double_t)
    lib.prop(point, "Y", double_t)
    lib.prop(point, "Timestamp", core.datetime)

    math = lib.cls("DynamicGeometry.Math")
    distance = lib.static_method(math, "Distance", returns=double_t,
                                 params=[("p1", point), ("p2", point)])
    lib.static_method(math, "Midpoint", returns=point,
                      params=[("p1", point), ("p2", point)])
    lib.field(math, "InfinitePoint", point, static=True)

    glyph = lib.cls("DynamicGeometry.Glyph")
    lib.prop(glyph, "RenderTransformOrigin", point)
    lib.prop(glyph, "Name", string)

    shape_style = lib.cls("DynamicGeometry.ShapeStyle")
    lib.method(shape_style, "GetSampleGlyph", returns=glyph)
    lib.prop(shape_style, "StrokeWidth", double_t)

    shape = lib.cls("DynamicGeometry.Shape")
    lib.prop(shape, "RenderTransformOrigin", point)
    lib.prop(shape, "Visible", bool_t)
    lib.prop(shape, "Style", shape_style)

    figure = lib.cls("DynamicGeometry.Figure", base=shape)
    lib.prop(figure, "StartPoint", point)
    lib.prop(figure, "EndPoint", point)

    arc_shape = lib.cls("DynamicGeometry.ArcShape", base=shape)
    lib.prop(arc_shape, "Point", point)
    lib.prop(arc_shape, "SweepAngle", double_t)

    line_segment = lib.cls("DynamicGeometry.LineSegment", base=shape)
    lib.prop(line_segment, "P1", point)
    lib.prop(line_segment, "P2", point)
    lib.prop(line_segment, "Midpoint", point)
    lib.prop(line_segment, "Length", double_t)
    lib.method(line_segment, "FirstValidValue", returns=point)

    ellipse_arc = lib.cls("DynamicGeometry.EllipseArc", base=shape)
    lib.field(ellipse_arc, "BeginLocation", point)
    lib.field(ellipse_arc, "Center", point)
    lib.field(ellipse_arc, "EndLocation", point)
    lib.prop(ellipse_arc, "ArcShape", arc_shape)
    lib.prop(ellipse_arc, "Figure", figure)
    lib.prop(ellipse_arc, "Shape", shape)
    lib.field(ellipse_arc, "shape", shape)

    canvas = lib.cls("DynamicGeometry.Drawing")
    lib.method(canvas, "Add", params=[("shape", shape)])
    lib.method(canvas, "Remove", params=[("shape", shape)])
    lib.prop(canvas, "Scale", double_t)

    return Geometry(
        ts=ts,
        core=core,
        point=point,
        shape=shape,
        ellipse_arc=ellipse_arc,
        line_segment=line_segment,
        shape_style=shape_style,
        distance=distance,
    )
