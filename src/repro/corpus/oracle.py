"""Adapter from abstract-type inference results to the ranking oracle.

The ranker asks two questions (is this argument's abstract type the same as
that parameter's?); :class:`ImplAbstractTypes` answers them from an
:class:`~repro.analysis.abstract_types.AbstractTypeAnalysis` scoped to the
method implementation whose body the query sits in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.abstract_types import AbstractTypeAnalysis
    from .program import MethodImpl

from ..codemodel.members import Method
from ..codemodel.types import TypeDef
from ..engine.ranking import AbstractTypeOracle
from ..lang.ast import Expr


class ImplAbstractTypes(AbstractTypeOracle):
    """Abstract-type oracle for queries inside one method implementation."""

    def __init__(self, analysis: AbstractTypeAnalysis, impl: MethodImpl) -> None:
        self.analysis = analysis
        self.impl = impl

    def of_expr(self, expr: Expr) -> Optional[int]:
        return self.analysis.abstype_of_expr(self.impl, expr)

    def of_param(
        self, method: Method, index: int, receiver_type: Optional[TypeDef]
    ) -> Optional[int]:
        return self.analysis.abstype_of_param(method, index, receiver_type)
