"""Client-code model: projects, implemented methods, statements.

The paper's evaluation extracts queries from method *bodies* in existing
codebases.  A :class:`Project` bundles a library universe (a
:class:`TypeSystem`) with a set of :class:`MethodImpl` — methods that have
bodies made of simple statements.  Statements are deliberately flat (the
algorithm only ever looks at one expression and the code *before* it).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..analysis.scope import Context
from ..codemodel.members import Method
from ..codemodel.types import TypeDef
from ..codemodel.typesystem import TypeSystem
from ..lang.ast import Assign, Call, Compare, Expr


class Statement:
    """Base class of body statements."""

    __slots__ = ()

    def expressions(self) -> Tuple[Expr, ...]:
        """Top-level expressions contained in the statement."""
        return ()


class LocalDecl(Statement):
    """``T name = init;`` (init optional)."""

    __slots__ = ("name", "type", "init")

    def __init__(self, name: str, type: TypeDef, init: Optional[Expr] = None) -> None:
        self.name = name
        self.type = type
        self.init = init

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.init,) if self.init is not None else ()


class ExprStatement(Statement):
    """A bare expression statement — almost always a call."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        self.expr = expr

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.expr,)


class AssignStatement(Statement):
    """``lhs := rhs;``."""

    __slots__ = ("assign",)

    def __init__(self, assign: Assign) -> None:
        self.assign = assign

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.assign,)


class IfStatement(Statement):
    """``if (lhs op rhs) ...`` — only the condition is modelled."""

    __slots__ = ("condition",)

    def __init__(self, condition: Compare) -> None:
        self.condition = condition

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.condition,)


class ReturnStatement(Statement):
    """``return expr;``."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        self.expr = expr

    def expressions(self) -> Tuple[Expr, ...]:
        return (self.expr,)


class MethodImpl:
    """A method with a body, belonging to a project.

    ``locals`` are every local declared anywhere in the body (the evaluation
    treats all of a method's locals as live; declaration order is preserved
    so contexts are deterministic).
    """

    def __init__(
        self,
        method: Method,
        locals: Optional[Dict[str, TypeDef]] = None,
        body: Optional[List[Statement]] = None,
    ) -> None:
        self.method = method
        self.locals: Dict[str, TypeDef] = dict(locals or {})
        self.body: List[Statement] = list(body or [])

    def all_locals(self) -> Dict[str, TypeDef]:
        """Parameters + declared locals (+ ``this`` via the context)."""
        scope: Dict[str, TypeDef] = {}
        for param in self.method.params:
            scope[param.name] = param.type
        scope.update(self.locals)
        for stmt in self.body:
            if isinstance(stmt, LocalDecl):
                scope.setdefault(stmt.name, stmt.type)
        return scope

    def context(self, ts: TypeSystem) -> Context:
        this_type = None if self.method.is_static else self.method.declaring_type
        return Context(
            ts,
            locals=self.all_locals(),
            this_type=this_type,
            enclosing_type=self.method.declaring_type,
        )

    def locals_at(self, stmt_index: int) -> Dict[str, TypeDef]:
        """Locals live *before* statement ``stmt_index``: parameters, the
        impl-level locals, and only the ``LocalDecl`` names already seen."""
        scope: Dict[str, TypeDef] = {}
        for param in self.method.params:
            scope[param.name] = param.type
        scope.update(self.locals)
        for stmt in self.body[:stmt_index]:
            if isinstance(stmt, LocalDecl):
                scope.setdefault(stmt.name, stmt.type)
        return scope

    def context_at(self, ts: TypeSystem, stmt_index: int) -> Context:
        """A statement-scoped context (declaration order respected), for
        callers that want strictly-live locals rather than the whole
        method's."""
        this_type = None if self.method.is_static else self.method.declaring_type
        return Context(
            ts,
            locals=self.locals_at(stmt_index),
            this_type=this_type,
            enclosing_type=self.method.declaring_type,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MethodImpl {} ({} stmts)>".format(
            self.method.full_name, len(self.body)
        )


#: A site in a project: which impl, which statement index, which expression.
Site = Tuple["MethodImpl", int, Expr]


class Project:
    """A named codebase: a library universe plus implemented methods."""

    def __init__(self, name: str, ts: TypeSystem) -> None:
        self.name = name
        self.ts = ts
        self.impls: List[MethodImpl] = []

    def add_impl(self, impl: MethodImpl) -> MethodImpl:
        self.impls.append(impl)
        return impl

    # ------------------------------------------------------------------
    # site iteration, used by both abstract-type inference and evaluation
    # ------------------------------------------------------------------
    def iter_sites(self) -> Iterator[Site]:
        """Every top-level expression with its impl and statement index."""
        for impl in self.impls:
            for index, stmt in enumerate(impl.body):
                for expr in stmt.expressions():
                    yield impl, index, expr

    def iter_calls(self) -> Iterator[Tuple[MethodImpl, int, Call]]:
        for impl, index, expr in self.iter_sites():
            if isinstance(expr, Call):
                yield impl, index, expr

    def iter_assignments(self) -> Iterator[Tuple[MethodImpl, int, Assign]]:
        for impl, index, expr in self.iter_sites():
            if isinstance(expr, Assign):
                yield impl, index, expr

    def iter_comparisons(self) -> Iterator[Tuple[MethodImpl, int, Compare]]:
        for impl, index, expr in self.iter_sites():
            if isinstance(expr, Compare):
                yield impl, index, expr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Project {} ({} impls)>".format(self.name, len(self.impls))
