"""Corpora: client-code model, hand frameworks, synthesis, the 7 projects."""

from .oracle import ImplAbstractTypes
from .program import (
    AssignStatement,
    ExprStatement,
    IfStatement,
    LocalDecl,
    MethodImpl,
    Project,
    ReturnStatement,
    Statement,
)
from .projects import (
    PROJECT_BUILDERS,
    CorpusDiagnostic,
    build_all_projects,
    last_build_diagnostics,
)
from .synthesis import (
    ArgumentMix,
    StatementMix,
    SynthesisSpec,
    classify_expr,
    synthesize_project,
)

__all__ = [
    "ArgumentMix",
    "AssignStatement",
    "CorpusDiagnostic",
    "ExprStatement",
    "IfStatement",
    "ImplAbstractTypes",
    "LocalDecl",
    "MethodImpl",
    "PROJECT_BUILDERS",
    "Project",
    "ReturnStatement",
    "Statement",
    "StatementMix",
    "SynthesisSpec",
    "build_all_projects",
    "classify_expr",
    "last_build_diagnostics",
    "synthesize_project",
]
