"""Corpora: client-code model, hand frameworks, synthesis, the 7 projects."""

from .oracle import ImplAbstractTypes
from .program import (
    AssignStatement,
    ExprStatement,
    IfStatement,
    LocalDecl,
    MethodImpl,
    Project,
    ReturnStatement,
    Statement,
)
from .projects import PROJECT_BUILDERS, build_all_projects
from .synthesis import (
    ArgumentMix,
    StatementMix,
    SynthesisSpec,
    classify_expr,
    synthesize_project,
)

__all__ = [
    "ArgumentMix",
    "AssignStatement",
    "ExprStatement",
    "IfStatement",
    "ImplAbstractTypes",
    "LocalDecl",
    "MethodImpl",
    "PROJECT_BUILDERS",
    "Project",
    "ReturnStatement",
    "Statement",
    "StatementMix",
    "SynthesisSpec",
    "build_all_projects",
    "classify_expr",
    "synthesize_project",
]
