"""Test-support utilities shipped with the library (fault injection)."""

from .faults import (
    FaultError,
    FaultPlan,
    SITES,
    active_plan,
    fire,
    inject,
    install,
    uninstall,
)

__all__ = [
    "FaultError",
    "FaultPlan",
    "SITES",
    "active_plan",
    "fire",
    "inject",
    "install",
    "uninstall",
]
