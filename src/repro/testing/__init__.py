"""Test-support utilities shipped with the library (fault injection)."""

from .faults import (
    FaultError,
    FaultPlan,
    QUERY_SITES,
    SITES,
    active_plan,
    fire,
    inject,
    install,
    install_local,
    uninstall,
    uninstall_local,
)

__all__ = [
    "FaultError",
    "FaultPlan",
    "QUERY_SITES",
    "SITES",
    "active_plan",
    "fire",
    "inject",
    "install",
    "install_local",
    "uninstall",
    "uninstall_local",
]
