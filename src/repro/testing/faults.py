"""Deterministic fault injection for the resilience layer.

Production code is instrumented with *named sites* — one-line
``faults.fire("<site>")`` calls that are no-ops unless a test installed a
:class:`FaultPlan`.  A plan maps sites to faults that trigger on the Nth
call (and optionally the following ``times - 1`` calls) and either raise
an exception or delay, so every degradation path in
``docs/RESILIENCE.md`` can be exercised without monkeypatching engine
internals.

Instrumented sites:

========================  ====================================================
site                      where it fires
========================  ====================================================
``oracle``                :class:`Ranker` before each abstract-type question
``index_lookup``          :class:`MethodIndex.candidate_methods` and the
                          reachability pruning check
``type_check``            the engine's target-type fit check (``_fits``)
``corpus_load``           ``build_all_projects`` before each project builder
``namespaces``            the ranker's common-namespace term
``matching_name``         the ranker's same-name comparison term
========================  ====================================================

Usage::

    from repro.testing import faults

    with faults.inject("oracle", error=RuntimeError("oracle down")):
        outcome = engine.complete_query(pe, context, abstypes=oracle)
    assert outcome.degraded == {"abstract_types"}

Delays simulate slow dependencies for deadline tests::

    with faults.inject("type_check", delay_ms=5, times=None):
        ...  # every type check now takes >= 5 ms

Everything is deterministic: triggering is purely call-count based and
plans are installed/uninstalled explicitly (the context manager restores
the previous plan, so injections nest).

Plans come in two scopes.  :func:`install`/:func:`inject` set the
process-wide plan (the single-threaded testing default).
:func:`install_local` sets a *thread-local* plan that shadows the global
one on the installing thread only — this is how chaos-through-serve
injects a fresh seeded plan per request on each tenant's executor
thread without tenants clobbering each other.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

#: the named injection sites wired into production code
SITES = (
    "oracle",
    "index_lookup",
    "type_check",
    "corpus_load",
    "namespaces",
    "matching_name",
)

#: the sites that fire on the query path (everything except corpus
#: construction) — what chaos-mode fuzzing schedules faults over
QUERY_SITES = tuple(site for site in SITES if site != "corpus_load")


class FaultError(RuntimeError):
    """Default exception an injected ``raise`` fault throws."""


@dataclass
class Fault:
    """One injected fault at one site.

    ``on_call`` is 1-based: the fault first triggers on the Nth time the
    site fires.  ``times`` bounds how many consecutive calls trigger
    (``None`` = every call from ``on_call`` onward).  ``error`` raises;
    ``delay_ms`` sleeps; a fault may do both (sleep, then raise).
    """

    site: str
    on_call: int = 1
    times: Optional[int] = 1
    error: Optional[BaseException] = None
    delay_ms: Optional[float] = None

    def __post_init__(self) -> None:
        # a typo'd site would install a fault that can never fire and
        # silently pass the test that installed it
        if self.site not in SITES:
            raise ValueError(
                "unknown fault site {!r}; known sites: {}".format(
                    self.site, ", ".join(SITES)
                )
            )

    def should_trigger(self, call_number: int) -> bool:
        if call_number < self.on_call:
            return False
        if self.times is None:
            return True
        return call_number < self.on_call + self.times


class FaultPlan:
    """A set of faults plus per-site call counters."""

    def __init__(self) -> None:
        self.faults: List[Fault] = []
        self.calls: Dict[str, int] = {}
        #: (site, call_number) pairs that actually triggered, for asserts
        self.triggered: List[tuple] = []

    def add(
        self,
        site: str,
        on_call: int = 1,
        times: Optional[int] = 1,
        error: Optional[BaseException] = None,
        delay_ms: Optional[float] = None,
    ) -> "FaultPlan":
        if site not in SITES:
            raise ValueError(
                "unknown fault site {!r}; known sites: {}".format(
                    site, ", ".join(SITES)
                )
            )
        if error is None and delay_ms is None:
            error = FaultError("injected fault at {!r}".format(site))
        self.faults.append(
            Fault(site, on_call=on_call, times=times, error=error,
                  delay_ms=delay_ms)
        )
        return self

    def calls_to(self, site: str) -> int:
        """How many times ``site`` has fired under this plan."""
        return self.calls.get(site, 0)

    def fire(self, site: str) -> None:
        number = self.calls.get(site, 0) + 1
        self.calls[site] = number
        for fault in self.faults:
            if fault.site != site or not fault.should_trigger(number):
                continue
            self.triggered.append((site, number))
            if fault.delay_ms is not None:
                time.sleep(fault.delay_ms / 1000.0)
            if fault.error is not None:
                raise fault.error


#: the installed plan; ``None`` keeps ``fire`` a near-free early return
_active: Optional[FaultPlan] = None

#: thread-local plans (chaos-through-serve); ``_local_installs`` counts
#: live installs so ``fire`` only consults the thread-local slot when at
#: least one exists anywhere in the process
_local = threading.local()
_local_installs = 0
_local_lock = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The plan :func:`fire` would consult on *this* thread."""
    if _local_installs:
        local = getattr(_local, "plan", None)
        if local is not None:
            return local
    return _active


def install(plan: FaultPlan) -> None:
    global _active
    _active = plan


def uninstall() -> None:
    global _active
    _active = None


def install_local(plan: FaultPlan) -> Optional[FaultPlan]:
    """Install ``plan`` for the calling thread only, shadowing the
    global plan there.  Returns the thread's previous local plan so
    callers can restore it via :func:`uninstall_local`."""
    global _local_installs
    previous = getattr(_local, "plan", None)
    _local.plan = plan
    if previous is None:
        with _local_lock:
            _local_installs += 1
    return previous


def uninstall_local(previous: Optional[FaultPlan] = None) -> None:
    """Remove (or replace with ``previous``) this thread's local plan."""
    global _local_installs
    current = getattr(_local, "plan", None)
    _local.plan = previous
    if current is not None and previous is None:
        with _local_lock:
            _local_installs = max(0, _local_installs - 1)


def fire(site: str) -> None:
    """Instrumentation hook: no-op unless a plan is installed."""
    if _local_installs:
        local = getattr(_local, "plan", None)
        if local is not None:
            local.fire(site)
            return
    if _active is not None:
        _active.fire(site)


@contextmanager
def inject(
    site: str,
    on_call: int = 1,
    times: Optional[int] = 1,
    error: Optional[BaseException] = None,
    delay_ms: Optional[float] = None,
) -> Iterator[FaultPlan]:
    """Install a one-fault plan for the dynamic extent of the block.

    Restores whatever plan was previously installed, so injections nest.
    """
    global _active
    previous = _active
    plan = FaultPlan().add(
        site, on_call=on_call, times=times, error=error, delay_ms=delay_ms
    )
    _active = plan
    try:
        yield plan
    finally:
        _active = previous
