"""repro — Type-Directed Completion of Partial Expressions (PLDI 2012).

A from-scratch reproduction of Perelman, Gulwani, Ball & Grossman's partial
expression completion system: a C#-like code model, the partial-expression
language with parser and semantics, Lackwit-style abstract type inference,
the type-distance ranking function, and the score-ordered completion engine
— plus the corpora, baselines and harnesses that regenerate every table and
figure of the paper's evaluation.

The whole public surface lives in :mod:`repro.api` (see its docstring
for the task-level quickstart) and is re-exported here::

    from repro import open_workspace, complete

    workspace = open_workspace("paint")
    record = complete(workspace, "?({img, size})",
                      locals={"img": "PaintDotNet.Document",
                              "size": "System.Drawing.Size"})
    for suggestion in record.suggestions:
        print(suggestion.rank, suggestion.score, suggestion.text)
"""

from typing import TYPE_CHECKING

__version__ = "1.1.0"

if TYPE_CHECKING:  # static view of the lazy surface below
    from .api import *  # noqa: F401,F403


# The facade loads lazily (PEP 562): CLI entry points and deep imports
# (``repro.ide.…``, ``repro.engine.…``) pay only for the modules they
# touch, while ``import repro; repro.complete(...)`` and
# ``from repro import *`` still resolve the full :mod:`repro.api`
# surface on first use.
def _api():
    # importlib, not ``from . import api``: the latter re-enters this
    # module's __getattr__ while the import is in flight and recurses
    import importlib

    return importlib.import_module(__name__ + ".api")


def __getattr__(name):
    if name in ("fuzz", "serve"):
        # ``repro.fuzz`` / ``repro.serve`` are subpackages, and once
        # anything imports them the import system pins them as
        # attributes here, shadowing this hook.  Resolve both to the
        # subpackage unconditionally so the names mean the same thing
        # regardless of import order; the facade helpers stay
        # ``repro.api.fuzz`` / ``repro.api.serve``.
        import importlib

        return importlib.import_module(__name__ + "." + name)
    api = _api()
    if name == "__all__":
        return list(api.__all__) + ["__version__"]
    try:
        return getattr(api, name)
    except AttributeError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)
        ) from None


def __dir__():
    return sorted(set(globals()) | set(_api().__all__))
