"""repro — Type-Directed Completion of Partial Expressions (PLDI 2012).

A from-scratch reproduction of Perelman, Gulwani, Ball & Grossman's partial
expression completion system: a C#-like code model, the partial-expression
language with parser and semantics, Lackwit-style abstract type inference,
the type-distance ranking function, and the score-ordered completion engine
— plus the corpora, baselines and harnesses that regenerate every table and
figure of the paper's evaluation.

Quickstart::

    from repro import Context, CompletionEngine, TypeSystem, parse
    from repro.corpus.frameworks.paintdotnet import build_paintdotnet

    ts = TypeSystem()
    universe = build_paintdotnet(ts)
    context = Context(ts, locals={"img": universe.document,
                                  "size": universe.size})
    engine = CompletionEngine(ts)
    for completion in engine.complete(parse("?({img, size})", context),
                                      context, n=10):
        print(completion.score, completion.expr)
"""

from .analysis.abstract_types import AbstractTypeAnalysis
from .analysis.diagnostics import Diagnostic, Severity
from .analysis.codemodel_lint import lint_type_system
from .analysis.preflight import PreflightReport, preflight_query
from .analysis.sanitize import run_sanitizer_probes
from .analysis.scope import Context
from .codemodel import (
    Field,
    LibraryBuilder,
    Method,
    Parameter,
    Property,
    TypeDef,
    TypeKind,
    TypeSystem,
)
from .engine import (
    CancellationToken,
    Completion,
    CompletionEngine,
    EngineConfig,
    MethodIndex,
    QueryBudget,
    QueryOutcome,
    Ranker,
    RankingConfig,
    ReachabilityIndex,
    check_stream,
    sanitize_streams,
    sanitizer_active,
)
from .errors import (
    BudgetExhausted,
    CompletionError,
    CorpusError,
    FeatureUnavailable,
    QueryCancelled,
    QueryTimeout,
    StreamInvariantViolation,
)
from .lang import (
    Assign,
    Call,
    Compare,
    Expr,
    FieldAccess,
    Hole,
    KnownCall,
    Literal,
    ParseError,
    PartialAssign,
    PartialCompare,
    SuffixHole,
    TypeLiteral,
    Unfilled,
    UnknownCall,
    Var,
    derivable,
    parse,
    to_source,
    well_typed,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractTypeAnalysis",
    "Assign",
    "BudgetExhausted",
    "Call",
    "CancellationToken",
    "Compare",
    "Completion",
    "CompletionEngine",
    "CompletionError",
    "Context",
    "CorpusError",
    "Diagnostic",
    "EngineConfig",
    "Expr",
    "FeatureUnavailable",
    "Field",
    "FieldAccess",
    "Hole",
    "KnownCall",
    "LibraryBuilder",
    "Literal",
    "Method",
    "MethodIndex",
    "ParseError",
    "Parameter",
    "PartialAssign",
    "PartialCompare",
    "PreflightReport",
    "Property",
    "QueryBudget",
    "QueryCancelled",
    "QueryOutcome",
    "QueryTimeout",
    "Ranker",
    "RankingConfig",
    "ReachabilityIndex",
    "Severity",
    "StreamInvariantViolation",
    "SuffixHole",
    "TypeDef",
    "TypeKind",
    "TypeLiteral",
    "TypeSystem",
    "Unfilled",
    "UnknownCall",
    "Var",
    "check_stream",
    "derivable",
    "lint_type_system",
    "parse",
    "preflight_query",
    "run_sanitizer_probes",
    "sanitize_streams",
    "sanitizer_active",
    "to_source",
    "well_typed",
    "__version__",
]
