"""Structured error taxonomy for the completion service.

Every failure the engine can surface deliberately derives from
:class:`CompletionError`, so callers (the CLI, the IDE session, the
evaluation harness) can catch one base class and still branch on the
specific condition.  The taxonomy mirrors the resilience design in
``docs/RESILIENCE.md``:

* :class:`QueryTimeout` / :class:`BudgetExhausted` / :class:`QueryCancelled`
  — a :class:`~repro.engine.budget.QueryBudget` tripped while the caller
  asked for *strict* enforcement.  (The default engine mode never raises
  these: it returns best-so-far results tagged with a ``truncated``
  reason instead.)
* :class:`FeatureUnavailable` — an optional ranking signal (the
  abstract-type oracle, the namespace analysis, ...) cannot answer.
  Oracles may raise it to ask for graceful degradation explicitly; the
  ranker treats *any* exception from an optional feature the same way.
* :class:`CorpusError` — a corpus project failed to build or contained a
  malformed program.  ``build_all_projects`` collects these as
  diagnostics and skips the offending project rather than aborting.
* :class:`PackError` (:class:`PackCorruptError` /
  :class:`PackStaleError`) — a persistent universe pack
  (:mod:`repro.pack`) failed load-time verification.  Each carries a
  stable ``code`` registered in :data:`ERROR_TABLE`.

This module also owns the **canonical error-code table**: every stable
error code maps to exactly one ``(HTTP status, exit code)`` pair, and
both the serving protocol (:mod:`repro.serve.protocol`) and the CLI
(:mod:`repro.__main__`) consume it — one table, two surfaces, so a
service client sees the same status space a CLI user does.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

# ----------------------------------------------------------------------
# the canonical error-code table
# ----------------------------------------------------------------------

#: stable code -> (HTTP status, exit-style code).  Exit codes mirror the
#: CLI taxonomy (0 ok, 1 parse error / lint findings, 2 usage/admission,
#: 3 deadline truncation, 4 step-budget truncation); HTTP statuses are
#: what the serving layer answers with.  Register new codes with
#: :func:`register_error_code` — exactly once, at definition site.
ERROR_TABLE: Dict[str, Tuple[int, int]] = {}

#: QueryStatus truncation reason -> exit-style code (a truncated query
#: still answers 200/exit-coded with best-so-far results)
TRUNCATION_EXIT: Dict[str, int] = {"timeout": 3, "budget": 4,
                                   "cancelled": 4}


def register_error_code(code: str, http_status: int, exit_code: int) -> str:
    """Register a stable error code's status mapping (idempotent for an
    identical mapping; conflicting re-registration is a bug)."""
    existing = ERROR_TABLE.get(code)
    if existing is not None and existing != (http_status, exit_code):
        raise ValueError(
            "error code {!r} already registered as {!r}".format(
                code, existing))
    ERROR_TABLE[code] = (http_status, exit_code)
    return code


def http_status_for(code: str) -> int:
    """The HTTP status the serving layer answers ``code`` with."""
    return ERROR_TABLE[code][0]


def exit_code_for(code: str) -> int:
    """The CLI exit code for ``code``."""
    return ERROR_TABLE[code][1]


# request/service codes (historically defined in repro.serve.protocol;
# the protocol module now re-exports these)
register_error_code("bad_request", 400, 2)
register_error_code("unknown_workspace", 404, 2)
register_error_code("not_found", 404, 2)
register_error_code("method_not_allowed", 405, 2)
register_error_code("parse_error", 422, 1)
register_error_code("shed", 429, 2)
register_error_code("deadline_exceeded", 504, 3)
register_error_code("internal_error", 500, 2)
# pack verification codes (repro.pack): a corrupted artifact is an
# unprocessable payload; a stale one conflicts with the live universe
PACK_CORRUPT = register_error_code("pack_corrupt", 422, 2)
PACK_STALE = register_error_code("pack_stale", 409, 2)


class CompletionError(Exception):
    """Base class of every deliberate engine failure."""


class QueryTimeout(CompletionError):
    """A query exceeded its wall-clock deadline (strict mode only)."""

    def __init__(self, elapsed_ms: float, deadline_ms: float) -> None:
        super().__init__(
            "query exceeded its {:.0f} ms deadline ({:.1f} ms elapsed)".format(
                deadline_ms, elapsed_ms
            )
        )
        self.elapsed_ms = elapsed_ms
        self.deadline_ms = deadline_ms


class BudgetExhausted(CompletionError):
    """A query exhausted its expansion-step budget (strict mode only)."""

    def __init__(self, steps: int, max_steps: int) -> None:
        super().__init__(
            "query exhausted its step budget ({} of {} steps)".format(
                steps, max_steps
            )
        )
        self.steps = steps
        self.max_steps = max_steps


class QueryCancelled(CompletionError):
    """A query's cooperative cancellation token was cancelled."""

    def __init__(self, message: str = "query cancelled") -> None:
        super().__init__(message)


class FeatureUnavailable(CompletionError):
    """An optional ranking feature cannot currently answer.

    Raising this (or any exception) inside an optional feature makes the
    ranker substitute the feature's neutral score and record the feature
    name in the query's ``degraded`` set — it never aborts the query.
    """

    def __init__(self, feature: str, reason: Optional[str] = None) -> None:
        message = "feature {!r} unavailable".format(feature)
        if reason:
            message += ": " + reason
        super().__init__(message)
        self.feature = feature
        self.reason = reason


class CorpusError(CompletionError):
    """A corpus project (or one of its programs) failed to build."""

    def __init__(self, project: str, reason: str) -> None:
        super().__init__("corpus project {!r}: {}".format(project, reason))
        self.project = project
        self.reason = reason


class PackError(CompletionError):
    """A persistent universe pack failed load-time verification.

    Every subclass carries a stable ``code`` registered in
    :data:`ERROR_TABLE`, so the CLI and the serving layer refuse a bad
    artifact with the same machine-readable identity
    (``docs/ARTIFACTS.md``).
    """

    code = "pack_corrupt"

    def __init__(self, message: str, path: Optional[str] = None) -> None:
        super().__init__(message)
        self.path = path


class PackCorruptError(PackError):
    """The pack's bytes do not verify: truncated file, checksum
    mismatch, malformed envelope, or an undecodable section.  The
    artifact cannot be trusted at all."""

    code = PACK_CORRUPT


class PackStaleError(PackError):
    """The pack verifies byte-wise but its universe fingerprint does not
    match what the caller (or the pack's own derived state) requires —
    the artifact describes a different universe version than the one it
    would be serving.  Rebuild the pack."""

    code = PACK_STALE

    def __init__(
        self,
        message: str,
        path: Optional[str] = None,
        expected: Optional[str] = None,
        actual: Optional[str] = None,
    ) -> None:
        super().__init__(message, path=path)
        self.expected = expected
        self.actual = actual


class StreamInvariantViolation(CompletionError):
    """A stream combinator emitted a score lower than a previous one.

    Every combinator in :mod:`repro.engine.streams` promises non-decreasing
    scores; this is raised by the opt-in stream sanitizer
    (``sanitize_streams``, see ``docs/ANALYSIS.md``) when a combinator
    breaks that promise — always a bug in the combinator or in a caller's
    cost function, never a recoverable condition.
    """

    def __init__(self, combinator: str, previous: int, current: int) -> None:
        super().__init__(
            "stream invariant violated in {!r}: score {} emitted after {}".format(
                combinator, current, previous
            )
        )
        self.combinator = combinator
        self.previous = previous
        self.current = current
