"""Structured error taxonomy for the completion service.

Every failure the engine can surface deliberately derives from
:class:`CompletionError`, so callers (the CLI, the IDE session, the
evaluation harness) can catch one base class and still branch on the
specific condition.  The taxonomy mirrors the resilience design in
``docs/RESILIENCE.md``:

* :class:`QueryTimeout` / :class:`BudgetExhausted` / :class:`QueryCancelled`
  — a :class:`~repro.engine.budget.QueryBudget` tripped while the caller
  asked for *strict* enforcement.  (The default engine mode never raises
  these: it returns best-so-far results tagged with a ``truncated``
  reason instead.)
* :class:`FeatureUnavailable` — an optional ranking signal (the
  abstract-type oracle, the namespace analysis, ...) cannot answer.
  Oracles may raise it to ask for graceful degradation explicitly; the
  ranker treats *any* exception from an optional feature the same way.
* :class:`CorpusError` — a corpus project failed to build or contained a
  malformed program.  ``build_all_projects`` collects these as
  diagnostics and skips the offending project rather than aborting.
"""

from __future__ import annotations

from typing import Optional


class CompletionError(Exception):
    """Base class of every deliberate engine failure."""


class QueryTimeout(CompletionError):
    """A query exceeded its wall-clock deadline (strict mode only)."""

    def __init__(self, elapsed_ms: float, deadline_ms: float) -> None:
        super().__init__(
            "query exceeded its {:.0f} ms deadline ({:.1f} ms elapsed)".format(
                deadline_ms, elapsed_ms
            )
        )
        self.elapsed_ms = elapsed_ms
        self.deadline_ms = deadline_ms


class BudgetExhausted(CompletionError):
    """A query exhausted its expansion-step budget (strict mode only)."""

    def __init__(self, steps: int, max_steps: int) -> None:
        super().__init__(
            "query exhausted its step budget ({} of {} steps)".format(
                steps, max_steps
            )
        )
        self.steps = steps
        self.max_steps = max_steps


class QueryCancelled(CompletionError):
    """A query's cooperative cancellation token was cancelled."""

    def __init__(self, message: str = "query cancelled") -> None:
        super().__init__(message)


class FeatureUnavailable(CompletionError):
    """An optional ranking feature cannot currently answer.

    Raising this (or any exception) inside an optional feature makes the
    ranker substitute the feature's neutral score and record the feature
    name in the query's ``degraded`` set — it never aborts the query.
    """

    def __init__(self, feature: str, reason: Optional[str] = None) -> None:
        message = "feature {!r} unavailable".format(feature)
        if reason:
            message += ": " + reason
        super().__init__(message)
        self.feature = feature
        self.reason = reason


class CorpusError(CompletionError):
    """A corpus project (or one of its programs) failed to build."""

    def __init__(self, project: str, reason: str) -> None:
        super().__init__("corpus project {!r}: {}".format(project, reason))
        self.project = project
        self.reason = reason


class StreamInvariantViolation(CompletionError):
    """A stream combinator emitted a score lower than a previous one.

    Every combinator in :mod:`repro.engine.streams` promises non-decreasing
    scores; this is raised by the opt-in stream sanitizer
    (``sanitize_streams``, see ``docs/ANALYSIS.md``) when a combinator
    breaks that promise — always a bug in the combinator or in a caller's
    cost function, never a recoverable condition.
    """

    def __init__(self, combinator: str, previous: int, current: int) -> None:
        super().__init__(
            "stream invariant violated in {!r}: score {} emitted after {}".format(
                combinator, current, previous
            )
        )
        self.combinator = combinator
        self.previous = previous
        self.current = current
