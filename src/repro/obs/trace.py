"""Lightweight span tracing for the query pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — named,
monotonic-clock-timed phases of one query (``preflight``, ``cache``,
``root_pool``, ``expand:*`` per stream combinator, ``dedup``,
``collect``) — each carrying a small counter map (steps charged,
candidates yielded, cache hit/miss, …).  The span taxonomy is
documented in ``docs/OBSERVABILITY.md``.

Tracing is strictly opt-in and the engine's call sites are guarded
(``if tracer is not None``), so a query with tracing disabled pays
nothing — the invariant the PR 3 perf gate depends on.  For callers
that prefer an unconditional object, :data:`NULL_TRACER` implements the
same interface as pure no-ops.

Spans export as plain dicts (JSON-ready) or NDJSON — one JSON object
per line, a ``{"kind": "trace", ...}`` header followed by
``{"kind": "span", ...}`` records — the format
``repro stats --validate-trace`` checks against the schema shipped in
:mod:`repro.obs.schema`.

Two timing notions per span:

* ``start_ms`` / ``end_ms`` / ``duration_ms`` — wall-clock extent
  relative to the tracer's epoch;
* ``busy_ms`` (a counter, present on stream spans) — cumulative time
  spent actually pulling items out of the lazy stream.  Lazy spans can
  overlap arbitrarily, so their wall extents overlap too; ``busy_ms``
  is the additive quantity.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

#: format / version stamped on NDJSON trace headers
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class Span:
    """One named, timed phase with a counter map.

    ``start_ms``/``end_ms`` are relative to the owning tracer's epoch;
    ``end_ms`` is ``None`` while the span is open.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_ms", "end_ms",
                 "counters")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 start_ms: float) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.counters: Dict[str, float] = {}

    def add(self, counter: str, value: float = 1) -> None:
        """Accumulate into a counter (created at 0)."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def set(self, counter: str, value: float) -> None:
        """Overwrite a counter."""
        self.counters[counter] = value

    @property
    def duration_ms(self) -> Optional[float]:
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": round(self.start_ms, 4),
            "end_ms": round(self.end_ms, 4) if self.end_ms is not None
            else None,
            "duration_ms": round(self.duration_ms, 4)
            if self.duration_ms is not None else None,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Span {} {!r} {}>".format(
            self.span_id, self.name,
            "open" if self.end_ms is None else
            "{:.2f}ms".format(self.duration_ms))


class Tracer:
    """Collects the span tree of one traced query.

    Synchronous phases use the :meth:`span` context manager (nesting
    follows the with-stack).  Lazy stream phases use
    :meth:`wrap_stream`, which starts a span when the wrapper is
    created (parented to the span current *at creation*), counts items
    and pull time as the stream is consumed, and ends the span when the
    stream is exhausted or the tracer is finished — whichever comes
    first.  :meth:`finish` closes everything still open; after it, the
    tracer is inert (wrapped streams that keep being pulled — e.g. a
    cached stream extended by a later query — stop counting).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self.closed = False

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (self._clock() - self._epoch) * 1000.0

    def start(self, name: str) -> Span:
        """Begin a span parented to the current stack top, without
        pushing it (for lazy phases ended explicitly via :meth:`end`)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, self._next_id, parent, self._now_ms())
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span) -> None:
        if span.end_ms is None:
            span.end_ms = self._now_ms()

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """A synchronous child span of whatever span is current."""
        span = self.start(name)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            self.end(span)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def finish(self) -> None:
        """End every still-open span and stop counting.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self._stack.clear()
        for span in self.spans:
            if span.end_ms is None:
                self.end(span)

    # ------------------------------------------------------------------
    # lazy streams
    # ------------------------------------------------------------------
    def wrap_stream(
        self,
        name: str,
        stream: Iterable,
        steps: Optional[Callable[[], int]] = None,
    ) -> Iterator:
        """Yield ``stream`` through, accounting items / pull time / steps
        into a span.

        ``steps`` (when given) reads a monotone step counter — usually
        the query meter's — so the span records the expansion steps
        charged while this stream was being pulled.
        """
        span = self.start(name)
        steps_at_start = steps() if steps is not None else 0

        def generator() -> Iterator:
            iterator = iter(stream)
            try:
                while True:
                    pulled_at = self._clock()
                    try:
                        item = next(iterator)
                    except StopIteration:
                        return
                    finally:
                        if not self.closed:
                            span.add(
                                "busy_ms",
                                (self._clock() - pulled_at) * 1000.0,
                            )
                    if not self.closed:
                        span.add("items")
                    yield item
            finally:
                if not self.closed and span.end_ms is None:
                    if steps is not None:
                        span.set("steps", steps() - steps_at_start)
                    self.end(span)

        return generator()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        """The span tree as JSON-ready dicts, in creation order."""
        return [span.to_dict() for span in self.spans]

    def to_ndjson(self, **meta: Any) -> str:
        """The trace as NDJSON: a header line plus one line per span."""
        return trace_to_ndjson(self.to_dicts(), **meta)


def trace_to_ndjson(spans: List[Dict[str, Any]], **meta: Any) -> str:
    """Serialise exported span dicts as NDJSON with a trace header."""
    header: Dict[str, Any] = {
        "kind": "trace",
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
    }
    header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(span, sort_keys=True) for span in spans)
    return "\n".join(lines) + "\n"


def ndjson_to_dicts(text: str) -> List[Dict[str, Any]]:
    """Parse NDJSON back into record dicts (header and span lines alike);
    raises ``ValueError`` on a non-JSON or non-object line."""
    records = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError("line {}: not JSON: {}".format(number, error))
        if not isinstance(record, dict):
            raise ValueError("line {}: not a JSON object".format(number))
        records.append(record)
    return records


class NullTracer:
    """The no-op tracer: same interface, does nothing, costs nothing.

    The engine guards its call sites with ``if tracer is not None``
    instead, but API users can pass :data:`NULL_TRACER` anywhere a
    tracer is accepted to keep their own code unconditional.
    """

    closed = True
    spans: List[Span] = []

    def start(self, name: str) -> Span:
        return _NULL_SPAN

    def end(self, span: Span) -> None:
        pass

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        yield _NULL_SPAN

    def current(self) -> Optional[Span]:
        return None

    def finish(self) -> None:
        pass

    def wrap_stream(self, name, stream, steps=None):
        return iter(stream)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def to_ndjson(self, **meta: Any) -> str:
        return trace_to_ndjson([], **meta)


class _NullSpan(Span):
    """A span that swallows counter writes (shared, so it must not
    accumulate state)."""

    __slots__ = ()

    def add(self, counter: str, value: float = 1) -> None:
        pass

    def set(self, counter: str, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan("null", -1, None, 0.0)

NULL_TRACER = NullTracer()
