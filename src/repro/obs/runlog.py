"""Structured NDJSON run logs: the whole-run counterpart of a trace.

A :class:`RunLog` records one *run* — an eval battery, a corpus build,
a bench invocation, a ``complete_many`` batch — as newline-delimited
JSON: a manifest record first (what produced the run: label, git SHA,
engine config signature, universe versions, seed), then one record per
event as the run proceeds:

* ``{"kind": "run", ...}`` — the manifest (always the first record);
* ``{"kind": "phase", ...}`` — a named, timed stretch of the run
  (one experiment family, one bench workload, one corpus project);
* ``{"kind": "query", ...}`` — one completed query: source, status,
  latency, steps, cache hit, and (when the query was traced) its full
  span tree embedded under ``spans``;
* ``{"kind": "event", ...}`` — anything else worth recording (batch
  boundaries, skipped corpus programs, ``repro fuzz``'s per-iteration
  ``fuzz_iteration`` / ``fuzz_counterexample`` records, ...),
  free-form ``data``;
* ``{"kind": "server_request", ...}`` — one request answered (or shed)
  by the completion server (:mod:`repro.serve`): endpoint, tenant
  workspace, HTTP status, stable error/ok code, queue wait and total
  latency, the request's deadline when it carried one, and — for
  correlated requests — the ``request_id``, the embedded engine span
  tree (``spans``), degraded/truncated quality markers, and any
  injected fault events that fired (chaos-through-serve).

:meth:`RunLog.bind` attaches correlation fields (a ``request_id``) to
every ``query``/``event``/``server_request`` record appended from the
current thread for the dynamic extent of a block — how the server's
request id reaches the *engine's* own query records without the engine
knowing the serving layer exists.

Every record is appended under one lock and serialised as exactly one
NDJSON line, so logs written from a thread-pool-sharded
``complete_many`` never interleave.  The schema is checked in at
``runlog_schema.json`` next to this module and enforced by the same
dependency-free validator as traces (:mod:`repro.obs.schema`);
``repro stats --validate-runlog FILE`` is the CLI spelling.

Timing is a monotonic clock relative to the log's construction, the
same convention as :class:`~repro.obs.trace.Tracer` epochs.

This module sits below the engine: it never imports :mod:`repro.engine`
and reads outcome objects duck-typed (``status.value``, ``elapsed_ms``,
``steps``, ``cached``, ``completions``, ``degraded``, ``trace``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import subprocess
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

#: format / version stamped on run-log manifests
RUNLOG_FORMAT = "repro-runlog"
RUNLOG_VERSION = 1

_run_counter = itertools.count(1)

_git_sha_cache: Optional[str] = None


def git_sha() -> str:
    """The repository HEAD SHA, best-effort (cached; ``"unknown"`` when
    git or the repository is unavailable — run logs must never fail a
    run over provenance)."""
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=5, check=True,
            ).stdout.strip() or "unknown"
        except Exception:
            _git_sha_cache = "unknown"
    return _git_sha_cache


def signature_hex(value: Any) -> str:
    """A short stable hex digest of any reprable value — how engine
    config signatures (hashable tuples) land in a manifest without the
    manifest depending on their shape."""
    return hashlib.sha1(repr(value).encode()).hexdigest()[:16]


class RunLog:
    """A thread-safe, append-only structured log of one run."""

    def __init__(
        self,
        label: str = "run",
        config_signature: Optional[str] = None,
        universes: Optional[Dict[str, int]] = None,
        seed: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
        sha: Optional[str] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._epoch = clock()
        self._stream = None
        self._bound = threading.local()
        self.label = label
        self.run_id = "{}-{}-{}".format(label, os.getpid(),
                                        next(_run_counter))
        self._records: List[Dict[str, Any]] = [{
            "kind": "run",
            "format": RUNLOG_FORMAT,
            "version": RUNLOG_VERSION,
            "label": label,
            "run_id": self.run_id,
            "git_sha": sha if sha is not None else git_sha(),
            "config_signature": config_signature,
            "universes": dict(universes or {}),
            "seed": seed,
        }]

    def annotate(
        self,
        config_signature: Optional[str] = None,
        universes: Optional[Dict[str, int]] = None,
        seed: Optional[int] = None,
        cache: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Fill manifest fields discovered only after construction (a
        corpus's universe versions exist once it is built, but the log
        must exist first to record the build's phases; ``cache`` is the
        completion cache's invalidation attribution, stamped at the end
        of each batch)."""
        with self._lock:
            manifest = self._records[0]
            if config_signature is not None:
                manifest["config_signature"] = config_signature
            if universes is not None:
                manifest["universes"] = dict(universes)
            if seed is not None:
                manifest["seed"] = seed
            if cache is not None:
                manifest["cache"] = dict(cache)

    def _now_ms(self) -> float:
        return (self._clock() - self._epoch) * 1000.0

    @contextmanager
    def bind(self, **fields: Any) -> Iterator[None]:
        """Attach correlation ``fields`` (``request_id=...``) to every
        ``query``/``event``/``server_request`` record appended from
        *this thread* inside the block.  ``None`` values are dropped;
        explicit record fields win over bound ones; binds nest (inner
        fields shadow outer ones for their extent)."""
        previous = getattr(self._bound, "fields", None)
        merged = dict(previous or {})
        merged.update(
            (key, value) for key, value in fields.items()
            if value is not None)
        self._bound.fields = merged or None
        try:
            yield
        finally:
            self._bound.fields = previous

    _BINDABLE_KINDS = ("query", "event", "server_request")

    def _append(self, record: Dict[str, Any]) -> None:
        bound = getattr(self._bound, "fields", None)
        if bound and record.get("kind") in self._BINDABLE_KINDS:
            for key, value in bound.items():
                record.setdefault(key, value)
        with self._lock:
            self._records.append(record)
            if self._stream is not None:
                self._stream.write(json.dumps(record, sort_keys=True) + "\n")
                self._stream.flush()

    def attach_stream(self, handle) -> None:
        """Stream the log to an open text file as it grows: every record
        appended so far is written immediately (manifest first), then
        each future append lands as one flushed NDJSON line — how a
        long-lived server keeps an on-disk log without ever calling
        :meth:`write`.  Manifest fields back-filled by :meth:`annotate`
        after attachment only reach the file on a later :meth:`write`;
        the streamed manifest stays schema-valid without them."""
        with self._lock:
            self._stream = handle
            for record in self._records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def event(self, name: str, **data: Any) -> None:
        """A free-form event record (``data`` must be JSON-ready)."""
        self._append({
            "kind": "event",
            "name": name,
            "t_ms": round(self._now_ms(), 4),
            "data": data,
        })

    @contextmanager
    def phase(self, name: str, **data: Any) -> Iterator[None]:
        """Record a named, timed stretch of the run (emitted at exit,
        even when the body raises)."""
        start = self._now_ms()
        try:
            yield
        finally:
            end = self._now_ms()
            record: Dict[str, Any] = {
                "kind": "phase",
                "name": name,
                "start_ms": round(start, 4),
                "end_ms": round(end, 4),
                "duration_ms": round(end - start, 4),
            }
            if data:
                record["data"] = data
            self._append(record)

    def query_event(
        self,
        source: str,
        outcome: Optional[Any] = None,
        *,
        universe: Optional[str] = None,
        family: Optional[str] = None,
        project: Optional[str] = None,
        rank: Optional[int] = None,
        error: Optional[str] = None,
        status: Optional[str] = None,
        elapsed_ms: float = 0.0,
        steps: int = 0,
        cached: bool = False,
        completions: int = 0,
        degraded: Optional[Any] = None,
        spans: Optional[List[dict]] = None,
    ) -> None:
        """One completed query, either from a ``QueryOutcome``-shaped
        object (duck-typed) or from the explicit keyword fields."""
        if outcome is not None:
            status = outcome.status.value
            elapsed_ms = outcome.elapsed_ms
            steps = outcome.steps
            cached = outcome.cached
            completions = len(outcome.completions)
            degraded = outcome.degraded
            if spans is None:
                spans = outcome.trace
        record: Dict[str, Any] = {
            "kind": "query",
            "source": source,
            "t_ms": round(self._now_ms(), 4),
            "status": status if status is not None else "ok",
            "elapsed_ms": round(float(elapsed_ms), 4),
            "steps": int(steps),
            "cached": bool(cached),
            "completions": int(completions),
        }
        if degraded:
            record["degraded"] = sorted(degraded)
        if universe is not None:
            record["universe"] = universe
        if family is not None:
            record["family"] = family
        if project is not None:
            record["project"] = project
        if rank is not None:
            record["rank"] = rank
        if error is not None:
            record["error"] = error
        if spans is not None:
            record["spans"] = spans
        self._append(record)

    def server_request(
        self,
        endpoint: str,
        status: int,
        code: str,
        elapsed_ms: float,
        *,
        workspace: Optional[str] = None,
        queue_ms: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        queries: Optional[int] = None,
        completions: Optional[int] = None,
        shed: bool = False,
        request_id: Optional[str] = None,
        degraded: Optional[Any] = None,
        truncated: Optional[int] = None,
        faults: Optional[List[str]] = None,
        spans: Optional[List[dict]] = None,
    ) -> None:
        """One request the completion server answered (or shed).

        ``status`` is the HTTP status sent back, ``code`` the stable
        machine-readable outcome (``"ok"``, ``"shed"``,
        ``"deadline_exceeded"``, ``"unknown_workspace"``, ...,
        docs/SERVING.md); ``queue_ms`` is time spent waiting for the
        tenant's engine, ``elapsed_ms`` the whole admission-to-response
        latency.  ``shed`` marks requests rejected by admission control
        without touching the engine.

        ``request_id`` is the correlation id echoed in the response;
        ``degraded`` lists the ranking features the engine degraded,
        ``truncated`` counts budget-truncated queries, ``faults`` names
        the injected fault events that fired (``"site@call"``), and
        ``spans`` embeds the request's merged engine span tree when the
        client opted into tracing (docs/OBSERVABILITY.md).
        """
        record: Dict[str, Any] = {
            "kind": "server_request",
            "endpoint": endpoint,
            "t_ms": round(self._now_ms(), 4),
            "status": int(status),
            "code": code,
            "elapsed_ms": round(float(elapsed_ms), 4),
            "shed": bool(shed),
        }
        if workspace is not None:
            record["workspace"] = workspace
        if queue_ms is not None:
            record["queue_ms"] = round(float(queue_ms), 4)
        if deadline_ms is not None:
            record["deadline_ms"] = float(deadline_ms)
        if queries is not None:
            record["queries"] = int(queries)
        if completions is not None:
            record["completions"] = int(completions)
        if request_id is not None:
            record["request_id"] = request_id
        if degraded:
            record["degraded"] = sorted(degraded)
        if truncated:
            record["truncated"] = int(truncated)
        if faults:
            record["faults"] = list(faults)
        if spans is not None:
            record["spans"] = spans
        self._append(record)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """A snapshot of the records appended so far (manifest first)."""
        with self._lock:
            return list(self._records)

    def to_ndjson(self) -> str:
        """The whole log as NDJSON, one record per line."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.records()
        ) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_ndjson())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def read_run_log(text: str) -> List[Dict[str, Any]]:
    """Parse run-log NDJSON back into record dicts; raises ``ValueError``
    on malformed lines or a document whose first record is no manifest."""
    from .trace import ndjson_to_dicts

    records = ndjson_to_dicts(text)
    if not records or records[0].get("kind") != "run":
        raise ValueError("not a repro run log (no leading manifest record)")
    return records
