"""Rolling-window SLOs for the serve path: targets, burn rates, verdicts.

An *objective* names a budgeted failure mode the service must hold:

* ``p95_ms`` — 95% of completed requests answer under this latency
  (the remaining 5% is the latency error budget);
* ``error_rate`` — the allowed fraction of requests failing
  server-side, *including* requests degraded or truncated by injected
  faults (chaos-through-serve burns the same budget a real dependency
  outage would);
* ``shed_rate`` — the allowed fraction shed by admission control
  (429 ``shed`` / 504 ``deadline_exceeded``).

A *burn rate* is observed budget consumption over allowed consumption:
1.0 means exactly on budget, 2.0 means the budget burns twice as fast
as it may.  Following the multi-window convention, each objective is
evaluated over several rolling windows at once and the verdict is:

* ``breach`` — burning over budget in **both** the shortest and the
  longest window (sustained, not a blip);
* ``at_risk`` — over budget in some window but not sustained;
* ``ok`` — within budget everywhere.

:class:`SLOTracker` is the live accumulator the server feeds per
request (``/v1/healthz`` shows its verdicts); :func:`slo_from_run_log`
replays ``server_request`` run-log records through the same math for
offline reports (``repro slo <runlog>``, :func:`repro.api.slo_report`).
See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

#: rolling windows (seconds) a live tracker evaluates by default
DEFAULT_WINDOWS_S: Tuple[float, ...] = (60.0, 300.0, 1800.0)

#: offline evaluation adds a whole-log window on top of the rolling ones
OFFLINE_WINDOWS_S: Tuple[float, ...] = (60.0, 300.0, math.inf)

#: a ``p95_ms`` objective allows 5% of requests over the target
LATENCY_BUDGET = 0.05

#: objective spec applied when the caller names none
DEFAULT_SLO_SPEC = "p95_ms=50:error_rate=0.01:shed_rate=0.20"

_OBJECTIVE_KEYS = ("p95_ms", "error_rate", "shed_rate")


class SLOObjectives:
    """Configured targets; any subset of the three objectives."""

    __slots__ = ("p95_ms", "error_rate", "shed_rate")

    def __init__(
        self,
        p95_ms: Optional[float] = None,
        error_rate: Optional[float] = None,
        shed_rate: Optional[float] = None,
    ) -> None:
        if p95_ms is not None and p95_ms <= 0:
            raise ValueError("p95_ms target must be positive")
        for name, value in (("error_rate", error_rate),
                            ("shed_rate", shed_rate)):
            if value is not None and not 0 < value <= 1:
                raise ValueError(
                    "{} target must be in (0, 1]".format(name))
        self.p95_ms = float(p95_ms) if p95_ms is not None else None
        self.error_rate = float(error_rate) if error_rate is not None else None
        self.shed_rate = float(shed_rate) if shed_rate is not None else None

    @classmethod
    def from_spec(cls, spec: str) -> "SLOObjectives":
        """Parse ``"p95_ms=50:error_rate=0.01:shed_rate=0.05"`` (any
        subset, ``:``-separated) — the ``--slo`` CLI spelling."""
        values: Dict[str, float] = {}
        for part in filter(None, (p.strip() for p in spec.split(":"))):
            key, eq, raw = part.partition("=")
            key = key.strip()
            if not eq or key not in _OBJECTIVE_KEYS:
                raise ValueError(
                    "bad SLO spec part {!r}; expected key=value with key "
                    "in {}".format(part, ", ".join(_OBJECTIVE_KEYS)))
            try:
                values[key] = float(raw)
            except ValueError:
                raise ValueError(
                    "bad SLO target {!r} for {!r}".format(raw, key))
        if not values:
            raise ValueError("empty SLO spec: {!r}".format(spec))
        return cls(**values)

    def __bool__(self) -> bool:
        return any(getattr(self, key) is not None for key in _OBJECTIVE_KEYS)

    def to_dict(self) -> Dict[str, float]:
        return {key: getattr(self, key) for key in _OBJECTIVE_KEYS
                if getattr(self, key) is not None}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SLOObjectives({})".format(
            ":".join("{}={}".format(k, v)
                     for k, v in sorted(self.to_dict().items())))


def _percentile(ordered: List[float], q: float) -> Optional[float]:
    if not ordered:
        return None
    if len(ordered) == 1:
        return ordered[0]
    index = q * (len(ordered) - 1)
    low = int(index)
    high = min(low + 1, len(ordered) - 1)
    fraction = index - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class SLOTracker:
    """A thread-safe rolling record of per-request outcomes.

    ``record`` is the per-request hot path (one lock, one append);
    ``evaluate`` computes the full multi-window report.  Events older
    than the longest *finite* window are pruned, so a live tracker's
    memory is bounded; include ``math.inf`` in ``windows`` (the offline
    default) to keep everything.
    """

    def __init__(
        self,
        objectives: SLOObjectives,
        windows: Iterable[float] = DEFAULT_WINDOWS_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.objectives = objectives
        self.windows: Tuple[float, ...] = tuple(sorted(set(windows)))
        if not self.windows or any(w <= 0 for w in self.windows):
            raise ValueError("windows must be positive durations")
        self._clock = clock
        self._lock = threading.Lock()
        #: (t_s, elapsed_ms, failed, shed, degraded)
        self._events: Deque[Tuple[float, float, bool, bool, bool]] = deque()
        self._keep_s = math.inf if any(math.isinf(w) for w in self.windows) \
            else max(self.windows)

    def record(
        self,
        elapsed_ms: float,
        *,
        error: bool = False,
        shed: bool = False,
        degraded: bool = False,
        t: Optional[float] = None,
    ) -> None:
        """One finished request.  ``error`` is a server-side failure;
        ``degraded`` marks a 200 answered with degraded/truncated
        quality (injected faults, tripped budgets) — both burn the
        error budget; ``shed`` burns the shed budget only."""
        stamp = self._clock() if t is None else t
        failed = bool(error or degraded)
        with self._lock:
            self._events.append(
                (stamp, float(elapsed_ms), failed, bool(shed),
                 bool(degraded)))
            if not math.isinf(self._keep_s):
                horizon = stamp - self._keep_s
                while self._events and self._events[0][0] < horizon:
                    self._events.popleft()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def evaluate(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The multi-window burn-rate report (see module docstring)."""
        stamp = self._clock() if now is None else now
        with self._lock:
            events = list(self._events)
        configured = self.objectives.to_dict()
        windows: List[Dict[str, Any]] = []
        burns_by_objective: Dict[str, List[float]] = {
            key: [] for key in configured
        }
        for window_s in self.windows:
            horizon = stamp - window_s
            inside = [e for e in events if e[0] >= horizon]
            requests = len(inside)
            shed = sum(1 for e in inside if e[3])
            failed = sum(1 for e in inside if e[2])
            degraded = sum(1 for e in inside if e[4])
            completed = [e for e in inside if not e[3]]
            latencies = sorted(e[1] for e in completed)
            error_rate = failed / requests if requests else 0.0
            shed_rate = shed / requests if requests else 0.0
            entry: Dict[str, Any] = {
                "window_s": None if math.isinf(window_s) else window_s,
                "requests": requests,
                "errors": failed,
                "shed": shed,
                "degraded": degraded,
                "error_rate": round(error_rate, 6),
                "shed_rate": round(shed_rate, 6),
                "p95_ms": _percentile(latencies, 0.95),
            }
            burn: Dict[str, float] = {}
            if "p95_ms" in configured and completed:
                over = sum(1 for value in latencies
                           if value > configured["p95_ms"])
                burn["latency"] = (over / len(completed)) / LATENCY_BUDGET
            elif "p95_ms" in configured:
                burn["latency"] = 0.0
            if "error_rate" in configured:
                burn["errors"] = error_rate / configured["error_rate"]
            if "shed_rate" in configured:
                burn["shed"] = shed_rate / configured["shed_rate"]
            if burn:
                entry["burn"] = {k: round(v, 4) for k, v in burn.items()}
            windows.append(entry)
            for objective, key in (("p95_ms", "latency"),
                                   ("error_rate", "errors"),
                                   ("shed_rate", "shed")):
                if objective in configured:
                    burns_by_objective[objective].append(burn.get(key, 0.0))

        verdicts: Dict[str, str] = {}
        for objective, name in (("p95_ms", "latency"),
                                ("error_rate", "errors"),
                                ("shed_rate", "shed")):
            if objective not in configured:
                continue
            burns = burns_by_objective[objective]
            if burns and burns[0] > 1.0 and burns[-1] > 1.0:
                verdicts[name] = "breach"
            elif any(value > 1.0 for value in burns):
                verdicts[name] = "at_risk"
            else:
                verdicts[name] = "ok"
        return {
            "objectives": configured,
            "windows": windows,
            "verdicts": verdicts,
            "ok": all(v != "breach" for v in verdicts.values()),
        }


# ----------------------------------------------------------------------
# offline evaluation over server run logs
# ----------------------------------------------------------------------

def slo_from_run_log(
    records: Iterable[Dict[str, Any]],
    objectives: SLOObjectives,
    windows: Optional[Iterable[float]] = None,
) -> Dict[str, Any]:
    """Replay ``server_request`` run-log records through the tracker.

    Failure classification mirrors the live server: ``internal_error``
    is an error; a 200 carrying ``degraded``/``truncated`` (the chaos
    and budget paths) burns the error budget as ``degraded``; the
    ``shed`` flag burns the shed budget.  Evaluated at the last
    record's timestamp, with a whole-log window on top of the rolling
    ones unless ``windows`` overrides.
    """
    tracker = SLOTracker(
        objectives, windows=windows if windows is not None
        else OFFLINE_WINDOWS_S, clock=lambda: 0.0)
    last_t = 0.0
    served = 0
    for record in records:
        if record.get("kind") != "server_request":
            continue
        served += 1
        t = float(record.get("t_ms", 0.0)) / 1000.0
        last_t = max(last_t, t)
        tracker.record(
            float(record.get("elapsed_ms", 0.0)),
            error=record.get("code") == "internal_error",
            shed=bool(record.get("shed")),
            degraded=bool(record.get("degraded"))
            or bool(record.get("truncated")),
            t=t,
        )
    report = tracker.evaluate(now=last_t)
    report["server_requests"] = served
    return report


def render_slo_report(report: Dict[str, Any]) -> List[str]:
    """Human-readable lines for one SLO report."""
    objectives = report.get("objectives", {})
    lines = ["SLO report ({})".format(
        ":".join("{}={}".format(k, v)
                 for k, v in sorted(objectives.items())) or "no objectives")]
    if "server_requests" in report:
        lines.append("  {} server_request record(s)".format(
            report["server_requests"]))
    for window in report.get("windows", []):
        label = ("total" if window["window_s"] is None
                 else "{:g}s".format(window["window_s"]))
        burn = window.get("burn", {})
        burn_text = " ".join(
            "burn[{}]={:.2f}".format(key, burn[key]) for key in sorted(burn))
        p95 = window.get("p95_ms")
        lines.append(
            "  {:>6}: {} req, errors {:.1%}, shed {:.1%}, degraded {}, "
            "p95 {}{}".format(
                label, window["requests"], window["error_rate"],
                window["shed_rate"], window["degraded"],
                "{:.2f} ms".format(p95) if p95 is not None else "n/a",
                "  " + burn_text if burn_text else ""))
    verdicts = report.get("verdicts", {})
    for name in sorted(verdicts):
        lines.append("  {}: {}".format(name, verdicts[name]))
    lines.append("  overall: {}".format("ok" if report.get("ok") else
                                        "BREACH"))
    return lines
